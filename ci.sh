#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml (minus the fmt check, which
# needs a rustfmt matching the repo's edition settings).
set -eu

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
