#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml (minus the fmt check, which
# needs a rustfmt matching the repo's edition settings).
set -eu

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Bounded fuzz smoke: fixed seed, all dataset generators, release build
# (~seconds). The corpus is replayed separately by `cargo test` above;
# this stage runs fresh pairs and fails on any invariant violation.
cargo run --release -q -p twigbench --bin twigfuzz -- \
    --seed 0xC1 --cases 400 --profile ci-smoke

# Edit-script fuzz smoke: the edited_vs_rebuilt invariant alone over 175
# pairs per dataset (700 seeded edit scripts — the floor is 500). Each
# script chains random inserts/deletes/replaces (root-adjacent and
# empty-document edges included) and asserts the incrementally
# maintained index stays byte-equal to a rebuild after every step.
cargo run --release -q -p twigbench --bin twigfuzz -- \
    --seed 0xED17 --cases 175 --invariant edited_vs_rebuilt \
    --profile ci-edit-smoke

# Subscription fuzz smoke: the subscribed_vs_solo invariant alone over
# 200 (document, query) pairs per dataset. Each pair derives a small
# registry (the query, a wildcard sibling, a duplicate registration),
# runs one shared-automaton pass, and asserts every subscription's
# results are byte-equal to its solo run on both the DOM and streaming
# paths, duplicates agree, and matcher feeds stay within the sharing
# bound.
cargo run --release -q -p twigbench --bin twigfuzz -- \
    --seed 0x5B --cases 200 --invariant subscribed_vs_solo \
    --profile ci-sub-smoke

# Figure S smoke: every figure-16 query through every algorithm's indexed
# driver with pruning on and off; the driver asserts the result sets are
# identical per cell, so this fails on any pruning soundness regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figS \
    > /dev/null

# Figure M smoke: the mapped (v3) index vs the heap index on every
# dataset; the driver asserts per dataset that the two arms return
# identical result sets and identical stream counters (scanned, pruned,
# skips), so this fails on any zero-copy read-path divergence.
cargo run --release -q -p twigbench --bin experiments -- --quick figM \
    > /dev/null

# Serve smoke: the fixed-workload query service sweep (threads 1/2/4,
# plan cache off/on). The driver asserts per cell that concurrent cached
# results equal serial evaluation, zero requests were rejected, the
# cached arm scored hits, and it ran strictly fewer plan analyses than
# the uncached arm.
cargo run --release -q -p twigbench --bin experiments -- --quick figT \
    > /dev/null

# Figure A smoke: the cost-based planner over every figure-16 query on
# all three datasets. The driver asserts per cell that the adaptive arm
# is byte-equal to all four forced arms, that adaptive wall clock stays
# within 1.1x of the best forced arm, and that the planner disables
# pruning on XMark-Q2 (the measured pruning-hurts case) — so this fails
# on any cost-model or decision regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figA \
    > /dev/null

# Figure E smoke: the incremental edit chain vs rebuild-from-scratch on
# every dataset. The driver asserts per step that a patched apply
# reindexes no more than the document size, per cell that the
# incremental and rebuilt indexes return identical result sets, per
# dataset that total incremental reindex work stays at or below the
# rebuild arm's, and that rotation never blocked or shed a concurrent
# reader — so this fails on any edit-path correctness or cost
# regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figE \
    > /dev/null

# Figure U smoke: the sharded catalog under mixed traffic (240 fixed-
# seed documents at --quick). The driver asserts per query that
# scatter-gather results are byte-equal to serial per-document
# iteration and that no matching document was dropped by the Bloom
# router, plus the skip-rate, schema-plan-amortization, and >=2x
# 4-worker throughput contracts — so this fails on any routing,
# merge-order, or catalog performance regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figU \
    > /dev/null

# Figure V smoke: 100 standing subscriptions through one shared
# prefix-merged automaton vs per-query solo streaming runs. The driver
# asserts byte-equality for every subscription at every registry size
# before timing, then the >=4x-over-solo-at-100 and sublinear-growth
# contracts — so this fails on any shared-dispatch soundness or
# amortization regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figV \
    > /dev/null

# Docs freshness: every crates/... path ARCHITECTURE.md cites must exist
# and every workspace crate must be mentioned there.
sh scripts/check_docs.sh

# Documentation: the public API must be fully documented (the in-repo
# crates set `#![warn(missing_docs)]`; -D warnings turns that fatal) and
# every doc example must run. Third-party stubs are excluded — they are
# offline API shims, not part of the documented surface.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p xmldom -p gtpquery -p xmlindex -p xmlgen \
    -p twig2stack -p twigbaselines -p twig2stack-serve -p twig2stack-obs \
    -p twigbench -p twig2stack-fuzz
cargo test --workspace -q --doc

echo "ci.sh: all checks passed"
