#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml (minus the fmt check, which
# needs a rustfmt matching the repo's edition settings).
set -eu

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Bounded fuzz smoke: fixed seed, all dataset generators, release build
# (~seconds). The corpus is replayed separately by `cargo test` above;
# this stage runs fresh pairs and fails on any invariant violation.
cargo run --release -q -p twigbench --bin twigfuzz -- \
    --seed 0xC1 --cases 400 --profile ci-smoke

# Figure S smoke: every figure-16 query through every algorithm's indexed
# driver with pruning on and off; the driver asserts the result sets are
# identical per cell, so this fails on any pruning soundness regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figS \
    > /dev/null

# Figure M smoke: the mapped (v3) index vs the heap index on every
# dataset; the driver asserts per dataset that the two arms return
# identical result sets and identical stream counters (scanned, pruned,
# skips), so this fails on any zero-copy read-path divergence.
cargo run --release -q -p twigbench --bin experiments -- --quick figM \
    > /dev/null

# Serve smoke: the fixed-workload query service sweep (threads 1/2/4,
# plan cache off/on). The driver asserts per cell that concurrent cached
# results equal serial evaluation, zero requests were rejected, the
# cached arm scored hits, and it ran strictly fewer plan analyses than
# the uncached arm.
cargo run --release -q -p twigbench --bin experiments -- --quick figT \
    > /dev/null

# Figure A smoke: the cost-based planner over every figure-16 query on
# all three datasets. The driver asserts per cell that the adaptive arm
# is byte-equal to all four forced arms, that adaptive wall clock stays
# within 1.1x of the best forced arm, and that the planner disables
# pruning on XMark-Q2 (the measured pruning-hurts case) — so this fails
# on any cost-model or decision regression.
cargo run --release -q -p twigbench --bin experiments -- --quick figA \
    > /dev/null

# Docs freshness: every crates/... path ARCHITECTURE.md cites must exist
# and every workspace crate must be mentioned there.
sh scripts/check_docs.sh

# Documentation: the public API must be fully documented (the in-repo
# crates set `#![warn(missing_docs)]`; -D warnings turns that fatal) and
# every doc example must run. Third-party stubs are excluded — they are
# offline API shims, not part of the documented surface.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p xmldom -p gtpquery -p xmlindex -p xmlgen \
    -p twig2stack -p twigbaselines -p twig2stack-serve -p twig2stack-obs \
    -p twigbench -p twig2stack-fuzz
cargo test --workspace -q --doc

echo "ci.sh: all checks passed"
