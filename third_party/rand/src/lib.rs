//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: a seedable deterministic
//! generator ([`rngs::SmallRng`]) plus [`Rng::gen_range`] / [`Rng::gen_bool`].
//! The generator is xoshiro256++ with splitmix64 seeding — high-quality and
//! deterministic, though its output differs from upstream `SmallRng` (all
//! in-tree users only rely on determinism, never on specific sequences).

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of upstream's trait).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width fits the unsigned twin even when end - start
                // overflows the signed type.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `numerator / denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| {
                SmallRng::seed_from_u64(7);
                a.gen_range(0u32..1 << 30) == c.gen_range(0u32..1 << 30)
            })
            .count();
        assert!(same < 8, "different seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
