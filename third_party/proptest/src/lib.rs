//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests actually use: [`Strategy`]
//! with `prop_map`, integer-range and tuple strategies, `collection::vec`,
//! `sample::{select, Index}`, `bool::weighted`, `any`, `ProptestConfig`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for an offline harness:
//! * fully deterministic — each (test name, case index) pair derives a
//!   fixed RNG seed, so failures reproduce without persistence files;
//! * no shrinking — a failing case panics with the assertion message and
//!   its case index rather than a minimized input.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies. Newtype so strategy code does not depend
/// on the generator choice.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from empty range");
        self.0.gen_range(0usize..n)
    }

    fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> sample::Index {
        sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = self.size.min + if span > 1 { super::TestRng::below(rng, span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list of options.
    pub fn select<T: Clone + core::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// An opaque index into collections whose length is unknown at
    /// generation time; resolve with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a collection of length `len` (which must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// Strategy returned by [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.chance(self.p)
        }
    }
}

/// Test-runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Driver used by the `proptest!` macro expansion: runs `body` for
/// `config.cases` deterministic cases. Not part of the public upstream API.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, config: ProptestConfig, mut body: F) {
    let base = hash_name(name);
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::from_seed(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest '{name}': case {}/{} failed (deterministic; rerun reproduces it)",
                case + 1,
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property; failure reports the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps() {
        crate::run_cases("ranges_and_maps", ProptestConfig::with_cases(64), |rng| {
            let v = (1usize..10).generate(rng);
            assert!((1..10).contains(&v));
            let doubled = (1usize..10).prop_map(|x| x * 2).generate(rng);
            assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
            let (a, b, c) = (0u32..5, 0u8..3, crate::any::<bool>()).generate(rng);
            assert!(a < 5 && b < 3);
            let _ = c;
        });
    }

    #[test]
    fn collections_and_samples() {
        crate::run_cases("collections_and_samples", ProptestConfig::with_cases(64), |rng| {
            let xs = prop::collection::vec(0usize..7, 1..5).generate(rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 7));
            let exact = prop::collection::vec(any::<bool>(), 4).generate(rng);
            assert_eq!(exact.len(), 4);
            let pick = prop::sample::select(vec!["a", "b", "c"]).generate(rng);
            assert!(["a", "b", "c"].contains(&pick));
            let idx = any::<prop::sample::Index>().generate(rng);
            assert!(idx.index(13) < 13);
        });
    }

    #[test]
    fn determinism() {
        let mut first = Vec::new();
        crate::run_cases("determinism", ProptestConfig::with_cases(16), |rng| {
            first.push((0u64..=u64::MAX).generate(rng));
        });
        let mut second = Vec::new();
        crate::run_cases("determinism", ProptestConfig::with_cases(16), |rng| {
            second.push((0u64..=u64::MAX).generate(rng));
        });
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, trailing comma, weighted bools.
        #[test]
        fn macro_form_works(
            n in 1usize..20,
            flags in prop::collection::vec(prop::bool::weighted(0.5), 1..6),
            rooted in any::<bool>(),
        ) {
            prop_assert!((1..20).contains(&n), "n={}", n);
            prop_assert!(!flags.is_empty());
            prop_assert_eq!(rooted, rooted);
        }
    }
}
