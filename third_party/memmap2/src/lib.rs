//! Offline stand-in for the `memmap2` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one API it uses: read-only shared file mappings
//! (`Mmap::map`, `Deref<Target = [u8]>`), implemented directly over the
//! platform `mmap`/`munmap` calls (declared here; `std` already links
//! libc, so no external crate is needed).
//!
//! Two extensions beyond the upstream surface, used by the workspace's
//! zero-copy index experiments:
//!
//! * [`Mmap::resident_bytes`] — how many bytes of the mapping are
//!   currently in page cache (`mincore`), the "bytes-resident" gauge of
//!   the mmap-vs-heap benchmarks;
//! * [`page_size`] — the system page size.
//!
//! On non-Unix platforms the type degrades to a heap copy of the file
//! (correct, just not zero-copy); `resident_bytes` then reports the full
//! length.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file.
///
/// The mapping is private (copy-on-write semantics are irrelevant: no
/// writes happen) and lives until drop. An empty file maps to an empty
/// slice without touching `mmap`, which rejects zero-length mappings.
#[derive(Debug)]
pub struct Mmap {
    imp: imp::Map,
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        Ok(Mmap { imp: imp::Map::new(file, len as usize)? })
    }

    /// Bytes of this mapping currently resident in memory (page cache),
    /// rounded up to whole pages. Best-effort: errors degrade to 0.
    pub fn resident_bytes(&self) -> usize {
        self.imp.resident_bytes()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.imp.as_slice()
    }
}

/// The system page size in bytes.
pub fn page_size() -> usize {
    imp::page_size()
}

#[cfg(unix)]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_long, c_uchar, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const _SC_PAGESIZE: c_int = 30;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn mincore(addr: *mut c_void, len: usize, vec: *mut c_uchar) -> c_int;
        fn sysconf(name: c_int) -> c_long;
    }

    /// Raw mapping: base pointer + length. Zero length ⇒ no mapping.
    #[derive(Debug)]
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned; the aliasing rules for
    // `&[u8]` handed out by `as_slice` are upheld because nothing in this
    // process writes through the mapping.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Ok(Map { ptr: std::ptr::null_mut(), len: 0 });
            }
            // SAFETY: requests a fresh private read-only mapping of a file
            // descriptor we hold open; the kernel picks the address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in Drop, and never written.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        pub(super) fn resident_bytes(&self) -> usize {
            if self.len == 0 {
                return 0;
            }
            let page = super::page_size();
            let pages = self.len.div_ceil(page);
            let mut vec = vec![0u8; pages];
            // SAFETY: `[ptr, ptr+len)` is a live mapping and `vec` holds
            // one byte per page of it, as `mincore` requires.
            let rc = unsafe { mincore(self.ptr, self.len, vec.as_mut_ptr()) };
            if rc != 0 {
                return 0;
            }
            vec.iter().filter(|&&b| b & 1 != 0).count() * page
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: unmapping the exact region mapped in `new`; the
                // pointer is never used after drop.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }

    pub(super) fn page_size() -> usize {
        // SAFETY: sysconf is async-signal-safe and takes no pointers.
        let n = unsafe { sysconf(_SC_PAGESIZE) };
        if n <= 0 {
            4096
        } else {
            n as usize
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use std::fs::File;
    use std::io::{self, Read};

    /// Portable fallback: a heap copy of the file.
    #[derive(Debug)]
    pub(super) struct Map {
        data: Vec<u8>,
    }

    impl Map {
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            let mut data = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut data)?;
            Ok(Map { data })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            &self.data
        }

        pub(super) fn resident_bytes(&self) -> usize {
            self.data.len()
        }
    }

    pub(super) fn page_size() -> usize {
        4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("memmap2-test-{}-{name}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(bytes).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("contents", b"hello mapping");
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert_eq!(&m[..], b"hello mapping");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let p = tmp("empty", b"");
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.resident_bytes(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn resident_bytes_after_touch() {
        let p = tmp("resident", &vec![7u8; 3 * 4096]);
        let m = Mmap::map(&File::open(&p).unwrap()).unwrap();
        // Touch every page, then residency must cover the whole mapping
        // (pages were just faulted in).
        let sum: u64 = m.iter().map(|&b| b as u64).sum();
        assert_eq!(sum, 7 * 3 * 4096);
        assert!(m.resident_bytes() >= m.len());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p >= 512 && p.is_power_of_two());
    }
}
