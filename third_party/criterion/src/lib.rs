//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, group configuration knobs,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: after a warm-up, each benchmark
//! runs batches of iterations until the measurement budget elapses and the
//! best per-iteration time is reported (best-of is robust to scheduling
//! noise on a loaded machine). There is no statistical analysis, HTML
//! report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for the measurement type used in group signatures.
pub mod measurement {
    /// Wall-clock time measurement (the only kind supported).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier for `name` parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    /// Best observed per-iteration time, filled in by `iter`.
    best: Option<Duration>,
    iters_done: u64,
}

impl Bencher<'_> {
    /// Measure `routine`, keeping the best per-iteration time observed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            std::hint::black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        // Measurement: batches of `batch` iterations until the budget
        // elapses, at least `sample_size` iterations total.
        let mut best = Duration::MAX;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.config.measurement_time;
        let batch = 1u32;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let per_iter = start.elapsed() / batch;
            if per_iter < best {
                best = per_iter;
            }
            iters += batch as u64;
            if Instant::now() >= deadline && iters >= self.config.sample_size as u64 {
                break;
            }
        }
        self.best = Some(best);
        self.iters_done = iters;
    }
}

#[derive(Debug, Clone)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    _measurement: core::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Target number of iterations (floor, not exact).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        let mut b = Bencher { config: &self.config, best: None, iters_done: 0 };
        f(&mut b);
        self.criterion.report(&label, &b, self.config.throughput);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (report separator; kept for API parity).
    pub fn finish(&mut self) {
        eprintln!();
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
            _measurement: core::marker::PhantomData,
        }
    }

    /// Run a single ungrouped benchmark with default configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let config = GroupConfig::default();
        let mut b = Bencher { config: &config, best: None, iters_done: 0 };
        f(&mut b);
        let label = id.name.clone();
        self.report(&label, &b, None);
        self
    }

    fn report(&mut self, label: &str, b: &Bencher<'_>, throughput: Option<Throughput>) {
        self.benches_run += 1;
        match b.best {
            Some(best) => {
                let extra = match throughput {
                    Some(Throughput::Elements(n)) if best.as_secs_f64() > 0.0 => {
                        format!("  ({:.0} elem/s)", n as f64 / best.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if best.as_secs_f64() > 0.0 => {
                        format!("  ({:.0} B/s)", n as f64 / best.as_secs_f64())
                    }
                    _ => String::new(),
                };
                eprintln!(
                    "{label:<56} time: {:>12?}  (best of {} iters){extra}",
                    best, b.iters_done
                );
            }
            None => eprintln!("{label:<56} (no measurement: closure never called iter)"),
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {
        eprintln!("benchmarks complete: {} benches", self.benches_run);
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

/// Opaque value barrier (re-exported by upstream criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(calls >= 3);
        assert_eq!(c.benches_run, 2);
    }
}
