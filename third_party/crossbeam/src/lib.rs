//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one API it uses: scoped threads (`crossbeam::scope`,
//! `crossbeam::thread::Scope::spawn`, `ScopedJoinHandle::join`),
//! implemented over `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics match upstream where it matters: spawned closures receive the
//! scope (so they can spawn nested tasks), joins return `thread::Result`,
//! and `scope` itself returns `Err` instead of unwinding when an unjoined
//! child panics.

pub use self::thread::scope;

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a join: `Err` carries the child's panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope in which borrowed-data threads can be spawned.
    ///
    /// Thin wrapper over [`std::thread::Scope`]; `Copy` so it can be moved
    /// into spawned closures for nested spawning.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; join before the scope ends to observe
    /// the result (unjoined threads are joined implicitly at scope exit).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread; the closure receives the scope for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope; blocks until all spawned threads finish.
    ///
    /// Returns `Err` if `f` or any unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn() {
        let n = crate::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panic_becomes_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("child panic"));
        });
        assert!(r.is_err());
        let joined = crate::scope(|s| s.spawn(|_| panic!("boom")).join().is_err()).unwrap();
        assert!(joined);
    }
}
