//! Label and text vocabularies harvested from a concrete document.
//!
//! Queries built from a document's own tag names and text payloads are
//! rarely vacuously empty, which is what makes differential fuzzing
//! informative: an engine bug in, say, optional-edge handling only shows
//! up when the mandatory part of the query actually matches something.

use xmldom::Document;

/// Names and text values sampled by the query generator.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    /// Element names usable as query node tests (filtered to the
    /// parser's name charset; never empty — a placeholder is inserted
    /// for documents whose labels are all unusable).
    pub labels: Vec<String>,
    /// Trimmed direct-text payloads, usable as `TextEquals` values.
    pub texts: Vec<String>,
    /// Substrings of text payloads (whole values plus their first
    /// whitespace-delimited token), usable as `TextContains` values.
    pub contains: Vec<String>,
}

/// True iff `name` can appear verbatim in the twig syntax: parser name
/// charset, and not the bare `or` keyword (ambiguous inside OR-groups).
fn serializable_name(name: &str) -> bool {
    !name.is_empty()
        && name != "or"
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
}

/// True iff `v` can appear inside a single-quoted value literal and
/// survive `str::trim`-based equality intact.
fn serializable_value(v: &str) -> bool {
    !v.is_empty() && v.len() <= 40 && !v.contains('\'') && !v.contains('\n') && v.trim() == v
}

fn push_unique(list: &mut Vec<String>, v: &str, cap: usize) {
    if list.len() < cap && !list.iter().any(|x| x == v) {
        list.push(v.to_string());
    }
}

impl Vocabulary {
    /// Harvest `doc`'s labels and text payloads (in first-seen order, so
    /// the result is deterministic for a deterministic document).
    pub fn from_document(doc: &Document) -> Self {
        let mut labels: Vec<String> = doc
            .labels()
            .iter()
            .map(|(_, n)| n.to_string())
            .filter(|n| serializable_name(n))
            .collect();
        if labels.is_empty() {
            labels.push("x".to_string());
        }
        let mut texts = Vec::new();
        let mut contains = Vec::new();
        for n in doc.iter() {
            if let Some(t) = doc.text(n) {
                let t = t.trim();
                if serializable_value(t) {
                    push_unique(&mut texts, t, 64);
                    push_unique(&mut contains, t, 96);
                    if let Some(tok) = t.split_whitespace().next() {
                        if serializable_value(tok) {
                            push_unique(&mut contains, tok, 96);
                        }
                    }
                }
            }
        }
        Vocabulary { labels, texts, contains }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn harvests_labels_and_texts() {
        let doc = parse("<dblp><paper>Twig joins</paper><year>2006</year></dblp>").unwrap();
        let v = Vocabulary::from_document(&doc);
        assert_eq!(v.labels, ["dblp", "paper", "year"]);
        assert_eq!(v.texts, ["Twig joins", "2006"]);
        assert!(v.contains.contains(&"Twig".to_string()));
    }

    #[test]
    fn filters_unserializable_values() {
        let doc = parse("<a><b>it's quoted</b><or>kw</or></a>").unwrap();
        let v = Vocabulary::from_document(&doc);
        assert!(!v.labels.contains(&"or".to_string()));
        assert!(v.texts.iter().all(|t| !t.contains('\'')));
        assert_eq!(v.texts, ["kw"]);
    }
}
