//! Greedy minimization of failing (document, query) pairs.
//!
//! A corpus entry is only useful if a human can read it, so every
//! failure found by the session loop is shrunk before it is written
//! out: query subtrees are pruned (keeping the query enumerable) and
//! document subtrees are deleted, keeping a candidate only when the
//! *same* invariant still fails on it. Greedy first-improvement with a
//! round cap — each accepted step strictly shrinks the pair, so the
//! loop terminates.

use crate::edits::EditScript;
use crate::invariants::{check, check_script, Invariant, Outcome};
use gtpquery::{Gtp, GtpBuilder, NodeTest, QNodeId, QueryAnalysis};
use xmldom::Document;
use xmlgen::{extract_subtree, remove_subtree};

fn test_name(gtp: &Gtp, q: QNodeId) -> String {
    match gtp.test(q) {
        NodeTest::Name(n) => n.clone(),
        NodeTest::Wildcard => "*".to_string(),
    }
}

/// Rebuild `gtp` without the subtree rooted at `removed`, preserving
/// tests, roles, edges, value predicates, and OR-groups (groups with a
/// single surviving member dissolve into plain AND edges). Returns
/// `None` when `removed` is the root.
pub fn copy_without(gtp: &Gtp, removed: QNodeId) -> Option<Gtp> {
    if removed == gtp.root() {
        return None;
    }
    let in_removed = |mut q: QNodeId| loop {
        if q == removed {
            return true;
        }
        match gtp.parent(q) {
            Some(p) => q = p,
            None => return false,
        }
    };

    let root = gtp.root();
    let mut b = GtpBuilder::new(&test_name(gtp, root), gtp.is_rooted());
    let mut map: Vec<Option<QNodeId>> = vec![None; gtp.len()];
    map[root.index()] = Some(b.root());
    b.role(b.root(), gtp.role(root));
    if let Some(p) = gtp.value_pred(root) {
        b.value_pred(b.root(), p.clone());
    }
    for q in gtp.preorder().into_iter().skip(1) {
        if in_removed(q) {
            continue;
        }
        let parent = map[gtp.parent(q).expect("non-root").index()].expect("parent copied first");
        let e = gtp.edge(q).expect("non-root");
        let id = b.add(parent, &test_name(gtp, q), e.axis, e.optional, gtp.role(q));
        if let Some(p) = gtp.value_pred(q) {
            b.value_pred(id, p.clone());
        }
        map[q.index()] = Some(id);
    }
    // Re-establish OR-groups among surviving siblings.
    for q in gtp.preorder() {
        let mut runs: Vec<(u32, Vec<QNodeId>)> = Vec::new();
        for &c in gtp.children(q) {
            let Some(new) = map[c.index()] else { continue };
            let g = gtp.or_group(c);
            match runs.last_mut() {
                Some((last, members)) if *last == g => members.push(new),
                _ => runs.push((g, vec![new])),
            }
        }
        for (_, members) in runs {
            if members.len() >= 2 {
                b.same_or_group(&members);
            }
        }
    }
    Some(b.build())
}

/// Minimize a failing pair under invariant `inv`. If the pair does not
/// actually fail, it is returned unchanged.
pub fn shrink(mut doc: Document, mut gtp: Gtp, inv: Invariant) -> (Document, Gtp) {
    let still_fails =
        |d: &Document, g: &Gtp| matches!(check(d, g, inv), Outcome::Failed(_));
    if !still_fails(&doc, &gtp) {
        return (doc, gtp);
    }
    for _ in 0..400 {
        let mut progress = false;

        // 1. Prune query subtrees (preorder: larger subtrees first).
        let candidates: Vec<QNodeId> =
            gtp.preorder().into_iter().filter(|&q| q != gtp.root()).collect();
        for q in candidates {
            if let Some(cand) = copy_without(&gtp, q) {
                let a = QueryAnalysis::new(&cand);
                if a.enumerable() && !a.columns().is_empty() && still_fails(&doc, &cand) {
                    gtp = cand;
                    progress = true;
                    break;
                }
            }
        }
        if progress {
            continue;
        }

        // 2. Jump into a branch: replace the document by one root-child
        //    subtree (fast size reduction for bushy documents).
        let root = doc.iter().next().expect("documents are non-empty");
        for c in doc.children(root).collect::<Vec<_>>() {
            let cand = extract_subtree(&doc, c);
            if still_fails(&cand, &gtp) {
                doc = cand;
                progress = true;
                break;
            }
        }
        if progress {
            continue;
        }

        // 3. Delete individual document subtrees.
        for n in doc.iter().skip(1).collect::<Vec<_>>() {
            if let Some(cand) = remove_subtree(&doc, n) {
                if still_fails(&cand, &gtp) {
                    doc = cand;
                    progress = true;
                    break;
                }
            }
        }
        if !progress {
            break;
        }
    }
    (doc, gtp)
}

/// Minimize a failing edit script under the `edited_vs_rebuilt`
/// invariant by greedily dropping ops, keeping a candidate only when it
/// still *applies cleanly* and still fails [`check_script`] — dropping
/// an op can strand a later op's preorder target, and an inapplicable
/// script is a useless regression case. If the script does not actually
/// fail, it is returned unchanged.
pub fn shrink_script(doc: &Document, gtp: &Gtp, mut script: EditScript) -> EditScript {
    let fails = |s: &EditScript| {
        s.apply(doc).is_ok() && matches!(check_script(doc, gtp, s), Outcome::Failed(_))
    };
    if !fails(&script) {
        return script;
    }
    loop {
        let mut progress = false;
        for i in 0..script.ops.len() {
            if script.ops.len() == 1 {
                break;
            }
            let mut cand = script.clone();
            cand.ops.remove(i);
            if fails(&cand) {
                script = cand;
                progress = true;
                break;
            }
        }
        if !progress {
            break;
        }
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;

    #[test]
    fn copy_without_prunes_subtree_and_regroups() {
        let g = parse_twig("//a[b! or c!][d[e]]//f").unwrap();
        let d = g.iter().find(|&q| matches!(g.test(q), NodeTest::Name(n) if n == "d")).unwrap();
        let out = copy_without(&g, d).unwrap();
        assert_eq!(out.len(), 4); // a, b, c, f — d's subtree (d, e) gone
        let s = gtpquery::serialize(&out);
        assert_eq!(s, "//a[b! or c!][.//f]");
    }

    #[test]
    fn copy_without_dissolves_singleton_groups() {
        let g = parse_twig("//a[b! or c!]/d").unwrap();
        let c = g.iter().find(|&q| matches!(g.test(q), NodeTest::Name(n) if n == "c")).unwrap();
        let out = copy_without(&g, c).unwrap();
        assert!(!out.has_or_groups());
        assert_eq!(gtpquery::serialize(&out), "//a[b!][d]");
    }

    #[test]
    fn copy_without_root_is_none() {
        let g = parse_twig("//a/b").unwrap();
        assert!(copy_without(&g, g.root()).is_none());
    }

    #[test]
    fn shrink_script_returns_passing_scripts_unchanged() {
        let doc = xmldom::parse("<a><b/><c/></a>").unwrap();
        let gtp = parse_twig("//a/b").unwrap();
        let script = EditScript::parse("delete 2 ; insert 0 0 <b/>").unwrap();
        assert_eq!(shrink_script(&doc, &gtp, script.clone()), script);
    }
}
