//! The twelve metamorphic invariants checked per (document, query) pair.
//!
//! Each invariant encodes a correctness claim of the paper (references
//! per variant below; the full table lives in DESIGN.md §8). An
//! invariant either **passes**, is **skipped** (the query shape falls
//! outside the invariant's soundness conditions — e.g. TwigStack cannot
//! run optional edges), or **fails** with a human-readable message. A
//! failure means a conformance bug somewhere: either an engine, or the
//! invariant's own soundness gate, is wrong — both are worth a corpus
//! entry.

use crate::edits::{derive_script, EditScript};
use crate::gen::group_members;
use crate::shrink::copy_without;
use gtpquery::{Cell, Gtp, QueryAnalysis, ResultSet, Role};
use twig2stack::{
    count_results, enumerate, evaluate, evaluate_early, evaluate_indexed, evaluate_parallel,
    evaluate_streaming, match_document, MatchOptions,
};
use twigbaselines::{
    build_streams, naive_evaluate, naive_exists, path_stack, path_stack_indexed, tj_fast,
    tj_fast_indexed, twig_stack_indexed, DeweyResolver, PathStackStats, TJFastStats,
    TwigStackStats,
};
use xmldom::{write, Document, Indent, Label};
use xmlindex::{DeweyIndex, EditApply, ElementIndex, MappedIndex, PruningPolicy, SliceStream};

/// The metamorphic invariants, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// All engines that accept the query agree on its result
    /// (Twig²Stack §4, TwigStack/PathStack §2, TJFast — related work).
    CrossEngine,
    /// `count()` equals `enumerate().len()` without materializing rows
    /// (paper §4.3, `CountTwig²Stack`).
    CountConsistency,
    /// Boolean existence agrees with result emptiness (paper §3.5,
    /// existence-checking nodes).
    ExistenceConsistency,
    /// Early (hybrid, §4.4) and full bottom-up enumeration produce
    /// identical rows in identical order.
    EarlyVsFull,
    /// The parallel partitioned evaluator equals the serial path for
    /// every thread count.
    SerialVsParallel,
    /// Dropping a predicate (value predicate or mandatory existence
    /// leaf) yields a superset of the original rows — matching is
    /// monotone in the query (§2, GTP semantics).
    PredicateWeakening,
    /// Path-summary pruned streams produce byte-identical results to the
    /// full scans, for every engine that has an indexed driver (the
    /// pruning soundness claim; feasible sets over-approximate match
    /// projections).
    PrunedVsUnpruned,
    /// The zero-copy mapped (v3) index is indistinguishable from the
    /// heap index: byte-equal results, equal matcher work, and equal
    /// scan/skip counters, pruned and unpruned.
    MappedVsHeap,
    /// The service's cost-based adaptive planner returns the same rows
    /// as every forced-engine arm (inapplicable engines fall back to
    /// Twig²Stack) — the planner re-routes queries, it never changes
    /// their answers.
    AdaptiveVsForced,
    /// Incremental index maintenance is invisible: chaining
    /// `ElementIndex::apply_edit` across a derived random edit script
    /// yields, at every step, an index structurally identical to one
    /// rebuilt from scratch (elements, sid tags, skip blocks, path
    /// summary), and byte-equal query results on the final document.
    EditedVsRebuilt,
    /// Sharded scatter-gather over a multi-document catalog equals
    /// serial per-document evaluation concatenated in doc-id order, the
    /// Bloom router never drops a matching document, and every hit
    /// equals the single-document oracle (DESIGN.md §16: the catalog
    /// merge and zero-false-negative contracts).
    CatalogVsSerial,
    /// Registering the query into a shared prefix-merged subscription
    /// automaton (alongside a `//*` sibling and a duplicate of itself)
    /// and driving one pass over the document yields, for every
    /// subscription, matches byte-equal to running that query solo —
    /// through the DOM oracle and, for structure-only queries, through
    /// `evaluate_streaming` over the serialized stream; duplicate
    /// registrations must stay independent and identical (DESIGN.md §17:
    /// sharing never changes an answer).
    SubscribedVsSolo,
}

impl Invariant {
    /// Every invariant, in report order.
    pub const ALL: [Invariant; 12] = [
        Invariant::CrossEngine,
        Invariant::CountConsistency,
        Invariant::ExistenceConsistency,
        Invariant::EarlyVsFull,
        Invariant::SerialVsParallel,
        Invariant::PredicateWeakening,
        Invariant::PrunedVsUnpruned,
        Invariant::MappedVsHeap,
        Invariant::AdaptiveVsForced,
        Invariant::EditedVsRebuilt,
        Invariant::CatalogVsSerial,
        Invariant::SubscribedVsSolo,
    ];

    /// Stable snake_case name (used in `.t2s` corpus files and the obs
    /// sidecar).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::CrossEngine => "cross_engine",
            Invariant::CountConsistency => "count_consistency",
            Invariant::ExistenceConsistency => "existence_consistency",
            Invariant::EarlyVsFull => "early_vs_full",
            Invariant::SerialVsParallel => "serial_vs_parallel",
            Invariant::PredicateWeakening => "predicate_weakening",
            Invariant::PrunedVsUnpruned => "pruned_vs_unpruned",
            Invariant::MappedVsHeap => "mapped_vs_heap",
            Invariant::AdaptiveVsForced => "adaptive_vs_forced",
            Invariant::EditedVsRebuilt => "edited_vs_rebuilt",
            Invariant::CatalogVsSerial => "catalog_vs_serial",
            Invariant::SubscribedVsSolo => "subscribed_vs_solo",
        }
    }

    /// Inverse of [`Invariant::name`].
    pub fn from_name(name: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.name() == name)
    }
}

/// Result of checking one invariant on one pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The invariant held.
    Passed,
    /// The query shape falls outside this invariant's soundness
    /// conditions; nothing was asserted.
    Skipped(&'static str),
    /// The invariant was violated.
    Failed(String),
}

/// Aggregate outcome of running all invariants on one pair.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Invariants that held.
    pub passed: usize,
    /// Invariants skipped for shape reasons.
    pub skipped: usize,
    /// Violations: `(invariant, message)`.
    pub failures: Vec<(Invariant, String)>,
}

/// Run every invariant on the pair.
pub fn check_case(doc: &Document, gtp: &Gtp) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    for inv in Invariant::ALL {
        match check(doc, gtp, inv) {
            Outcome::Passed => out.passed += 1,
            Outcome::Skipped(_) => out.skipped += 1,
            Outcome::Failed(msg) => out.failures.push((inv, msg)),
        }
    }
    out
}

/// Guard against pathological pairs whose result sets would dominate
/// the smoke budget (6-wildcard descendant chains over deep documents).
const MAX_ROWS: usize = 50_000;

/// Check one invariant on one pair.
pub fn check(doc: &Document, gtp: &Gtp, inv: Invariant) -> Outcome {
    let analysis = QueryAnalysis::new(gtp);
    if !analysis.enumerable() {
        return Outcome::Skipped("query is not enumerable");
    }
    if analysis.columns().is_empty() {
        return Outcome::Skipped("query has no output columns");
    }
    match inv {
        Invariant::CrossEngine => cross_engine(doc, gtp),
        Invariant::CountConsistency => count_consistency(doc, gtp),
        Invariant::ExistenceConsistency => existence_consistency(doc, gtp),
        Invariant::EarlyVsFull => early_vs_full(doc, gtp),
        Invariant::SerialVsParallel => serial_vs_parallel(doc, gtp),
        Invariant::PredicateWeakening => predicate_weakening(doc, gtp, &analysis),
        Invariant::PrunedVsUnpruned => pruned_vs_unpruned(doc, gtp),
        Invariant::MappedVsHeap => mapped_vs_heap(doc, gtp),
        Invariant::AdaptiveVsForced => adaptive_vs_forced(doc, gtp),
        Invariant::EditedVsRebuilt => check_script(doc, gtp, &derive_script(doc, gtp)),
        Invariant::CatalogVsSerial => catalog_vs_serial(doc, gtp),
        Invariant::SubscribedVsSolo => subscribed_vs_solo(doc, gtp),
    }
}

fn diff(engine: &str, got: &ResultSet, expected: &ResultSet) -> Outcome {
    Outcome::Failed(format!(
        "{engine} differs from oracle: {} vs {} rows",
        got.len(),
        expected.len()
    ))
}

/// `gtp` is a "full twig": the shape the classic baselines accept.
fn is_full_twig(gtp: &Gtp) -> bool {
    gtp.iter()
        .all(|q| gtp.role(q) == Role::Return && gtp.edge(q).is_none_or(|e| !e.optional))
        && !gtp.has_or_groups()
        && !gtp.has_value_preds()
}

fn is_linear(gtp: &Gtp) -> bool {
    gtp.iter().all(|q| gtp.children(q).len() <= 1)
}

fn cross_engine(doc: &Document, gtp: &Gtp) -> Outcome {
    let expected = naive_evaluate(doc, gtp);
    if expected.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    if !expected.is_duplicate_free() {
        return Outcome::Failed("oracle produced duplicate rows".to_string());
    }
    // Twig²Stack, with the existence-checking optimization off and on.
    for existence_opt in [false, true] {
        let (tm, _) = match_document(doc, gtp, MatchOptions { existence_opt });
        let got = enumerate(&tm);
        if got != expected {
            return diff(
                if existence_opt {
                    "twig2stack(existence_opt)"
                } else {
                    "twig2stack"
                },
                &got,
                &expected,
            );
        }
    }
    // Streaming entry point (structure-only: no value predicates).
    if !gtp.has_value_preds() {
        let xml = write(doc, Indent::None);
        match evaluate_streaming(&xml, gtp, MatchOptions::default()) {
            Ok((got, _)) => {
                if got != expected {
                    return diff("streaming", &got, &expected);
                }
            }
            Err(e) => return Outcome::Failed(format!("streaming re-parse failed: {e}")),
        }
    }
    // Classic baselines on the query shapes they support. Row order is
    // not part of their contracts, so compare sorted.
    if is_full_twig(gtp) {
        let expected_sorted = expected.clone().sorted();
        let index = ElementIndex::build(doc);
        let owned = build_streams(&index, doc.labels(), gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut ts = TwigStackStats::default();
        let got = twigbaselines::twig_stack(gtp, streams, &mut ts).sorted();
        if got != expected_sorted {
            return diff("twigstack", &got, &expected_sorted);
        }
        let dewey = DeweyIndex::build(doc);
        let resolver = DeweyResolver::build(&dewey, doc.labels());
        let mut tjs = TJFastStats::default();
        let got = tj_fast(gtp, &dewey, doc.labels(), &resolver, &mut tjs).sorted();
        if got != expected_sorted {
            return diff("tjfast", &got, &expected_sorted);
        }
        if is_linear(gtp) {
            let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
            let mut ps = PathStackStats::default();
            let sols = path_stack(gtp, streams, &mut ps);
            let mut got = ResultSet::new(sols.path.clone());
            for row in sols.solutions {
                got.push(row.into_iter().map(Cell::Node).collect());
            }
            let got = got.sorted();
            if got != expected_sorted {
                return diff("pathstack", &got, &expected_sorted);
            }
        }
    }
    Outcome::Passed
}

fn count_consistency(doc: &Document, gtp: &Gtp) -> Outcome {
    for existence_opt in [false, true] {
        let (tm, _) = match_document(doc, gtp, MatchOptions { existence_opt });
        let counted = count_results(&tm);
        let rows = enumerate(&tm);
        if rows.len() > MAX_ROWS {
            return Outcome::Skipped("result set too large for the smoke budget");
        }
        if counted != rows.len() as u64 {
            return Outcome::Failed(format!(
                "count()={counted} but enumerate() produced {} rows (existence_opt={existence_opt})",
                rows.len()
            ));
        }
    }
    Outcome::Passed
}

fn existence_consistency(doc: &Document, gtp: &Gtp) -> Outcome {
    let exists = naive_exists(doc, gtp);
    let rows = evaluate(doc, gtp);
    if rows.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    if exists == rows.is_empty() {
        return Outcome::Failed(format!(
            "exists()={exists} but enumeration produced {} rows",
            rows.len()
        ));
    }
    Outcome::Passed
}

fn early_vs_full(doc: &Document, gtp: &Gtp) -> Outcome {
    let expected = naive_evaluate(doc, gtp);
    if expected.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    for existence_opt in [false, true] {
        match evaluate_early(doc, gtp, MatchOptions { existence_opt }) {
            Ok((got, _)) => {
                if got != expected {
                    return diff("early enumeration", &got, &expected);
                }
            }
            Err(_) => return Outcome::Skipped("query shape unsupported by the early mode"),
        }
    }
    Outcome::Passed
}

fn serial_vs_parallel(doc: &Document, gtp: &Gtp) -> Outcome {
    let serial = evaluate(doc, gtp);
    if serial.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    for threads in [2, 4] {
        let got = evaluate_parallel(doc, gtp, threads);
        if got != serial {
            return Outcome::Failed(format!(
                "parallel({threads} threads) produced {} rows, serial {}",
                got.len(),
                serial.len()
            ));
        }
    }
    Outcome::Passed
}

/// Weakening is only row-wise monotone when every output cell is a
/// plain node: group cells aggregate (a weaker query yields *longer*
/// lists, not more rows) and optional edges introduce nulls that can
/// *replace* rows. Within those gates, removing a conjunct can only
/// grow the set of satisfying assignments.
fn predicate_weakening(doc: &Document, gtp: &Gtp, analysis: &QueryAnalysis) -> Outcome {
    if gtp.iter().any(|q| gtp.role(q) == Role::GroupReturn) {
        return Outcome::Skipped("group cells are not row-wise monotone");
    }
    if gtp.iter().any(|q| gtp.edge(q).is_some_and(|e| e.optional)) {
        return Outcome::Skipped("optional edges are not row-wise monotone");
    }
    let weaker = if let Some(q) = gtp.iter().find(|&q| gtp.value_pred(q).is_some()) {
        let mut w = gtp.clone();
        w.set_value_pred(q, None);
        Some(w)
    } else {
        // Drop a mandatory, non-output leaf that is not part of a
        // multi-member OR-group (removing an OR alternative would
        // *strengthen* the disjunction).
        gtp.iter()
            .find(|&q| {
                q != gtp.root()
                    && gtp.is_leaf(q)
                    && gtp.role(q) == Role::NonReturn
                    && group_members(gtp, q).len() == 1
            })
            .and_then(|q| copy_without(gtp, q))
    };
    let Some(weak) = weaker else {
        return Outcome::Skipped("no removable predicate");
    };
    let wa = QueryAnalysis::new(&weak);
    if !wa.enumerable() || wa.columns().len() != analysis.columns().len() {
        return Outcome::Skipped("weakened query changed the output schema");
    }
    let strong_rows = evaluate(doc, gtp);
    let weak_rows = evaluate(doc, &weak);
    if weak_rows.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    // Within the gates above every cell is a plain node, so rows can be
    // compared as `Vec<NodeId>` keys.
    let key = |row: &Vec<Cell>| -> Option<Vec<xmldom::NodeId>> {
        row.iter()
            .map(|c| match c {
                Cell::Node(n) => Some(*n),
                _ => None,
            })
            .collect()
    };
    let mut weak_sorted = Vec::with_capacity(weak_rows.len());
    for row in &weak_rows.rows {
        let Some(k) = key(row) else {
            return Outcome::Skipped("non-node cell under the weakening gates");
        };
        weak_sorted.push(k);
    }
    weak_sorted.sort();
    for row in &strong_rows.rows {
        let Some(k) = key(row) else {
            return Outcome::Skipped("non-node cell under the weakening gates");
        };
        if weak_sorted.binary_search(&k).is_err() {
            return Outcome::Failed(format!(
                "row present under the stronger query but missing after weakening \
                 ({} strong rows, {} weak rows)",
                strong_rows.len(),
                weak_rows.len()
            ));
        }
    }
    Outcome::Passed
}

/// Pruning soundness: the path-summary filtered, skip-scanning pipelines
/// must equal the full-scan pipelines exactly — on the core engine for
/// every GTP shape, and on each classic baseline's indexed driver for the
/// shapes it accepts (sorted there: row order is not part of their
/// contracts).
fn pruned_vs_unpruned(doc: &Document, gtp: &Gtp) -> Outcome {
    let expected = evaluate(doc, gtp);
    if expected.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    let index = ElementIndex::build(doc);
    let pruned = evaluate_indexed(doc, &index, gtp, PruningPolicy::Enabled);
    if pruned != expected {
        return diff("twig2stack(pruned)", &pruned, &expected);
    }
    let unpruned = evaluate_indexed(doc, &index, gtp, PruningPolicy::Disabled);
    if unpruned != expected {
        return diff("twig2stack(indexed, full-scan)", &unpruned, &expected);
    }
    if is_full_twig(gtp) {
        let expected_sorted = expected.clone().sorted();
        let mut ts = TwigStackStats::default();
        let got =
            twig_stack_indexed(&index, doc.labels(), gtp, PruningPolicy::Enabled, &mut ts).sorted();
        if got != expected_sorted {
            return diff("twigstack(pruned)", &got, &expected_sorted);
        }
        let dewey = DeweyIndex::build(doc);
        let resolver = DeweyResolver::build(&dewey, doc.labels());
        let mut tjs = TJFastStats::default();
        let got = tj_fast_indexed(
            gtp,
            &dewey,
            index.summary(),
            doc.labels(),
            &resolver,
            PruningPolicy::Enabled,
            &mut tjs,
        )
        .sorted();
        if got != expected_sorted {
            return diff("tjfast(pruned)", &got, &expected_sorted);
        }
        if is_linear(gtp) {
            let mut ps = PathStackStats::default();
            let sols =
                path_stack_indexed(&index, doc.labels(), gtp, PruningPolicy::Enabled, &mut ps);
            let mut got = ResultSet::new(sols.path.clone());
            for row in sols.solutions {
                got.push(row.into_iter().map(Cell::Node).collect());
            }
            let got = got.sorted();
            if got != expected_sorted {
                return diff("pathstack(pruned)", &got, &expected_sorted);
            }
        }
    }
    Outcome::Passed
}

/// Zero-copy equivalence: round-trip the document through the v3 mapped
/// format and re-evaluate — results must be byte-identical to the heap
/// index's, the matcher must do identical work, and (when the obs layer
/// is compiled in) the streams must scan and skip exactly the same
/// element counts. Catches any divergence between the two backends'
/// postings, block-max tables, or summaries.
fn mapped_vs_heap(doc: &Document, gtp: &Gtp) -> Outcome {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);

    let expected = evaluate(doc, gtp);
    if expected.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    let path = std::env::temp_dir().join(format!(
        "t2s-fuzz-mapped-{}-{}.t2sidx",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = xmlindex::write_mapped_index(doc, &path) {
        return Outcome::Failed(format!("v3 write failed: {e}"));
    }
    let mapped = match MappedIndex::open(&path) {
        Ok(m) => m,
        Err(e) => {
            std::fs::remove_file(&path).ok();
            return Outcome::Failed(format!("v3 open failed: {e}"));
        }
    };
    let index = ElementIndex::build(doc);
    // Bracket each arm's counters with take(), accumulating into a local
    // carry that is re-absorbed once at the end — absorbing between
    // iterations would leak one arm's counts into the next comparison.
    let mut carried = twigobs::take();
    let mut failure = None;
    for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
        let (tm, hs) = twig2stack::match_indexed(doc, &index, gtp, MatchOptions::default(), policy);
        let heap_rs = enumerate(&tm);
        let heap_obs = twigobs::take();
        let (tm, ms) =
            twig2stack::match_indexed(doc, &mapped, gtp, MatchOptions::default(), policy);
        let mapped_rs = enumerate(&tm);
        let mapped_obs = twigobs::take();
        carried.merge(&heap_obs);
        carried.merge(&mapped_obs);
        if mapped_rs != heap_rs {
            failure = Some(format!(
                "mapped != heap results under {policy:?}: {} vs {} rows",
                mapped_rs.len(),
                heap_rs.len()
            ));
            break;
        }
        if mapped_rs != expected {
            failure = Some(format!(
                "mapped != oracle under {policy:?}: {} vs {} rows",
                mapped_rs.len(),
                expected.len()
            ));
            break;
        }
        if ms != hs {
            failure = Some(format!(
                "matcher work differs under {policy:?}: {ms:?} vs {hs:?}"
            ));
            break;
        }
        for c in [
            twigobs::Counter::ElementsScanned,
            twigobs::Counter::ElementsPruned,
            twigobs::Counter::StreamSkips,
        ] {
            if mapped_obs.get(c) != heap_obs.get(c) {
                failure = Some(format!(
                    "counter {c:?} differs under {policy:?}: {} vs {}",
                    mapped_obs.get(c),
                    heap_obs.get(c)
                ));
                break;
            }
        }
        if failure.is_some() {
            break;
        }
    }
    twigobs::absorb(&carried);
    std::fs::remove_file(&path).ok();
    match failure {
        Some(msg) => Outcome::Failed(msg),
        None => Outcome::Passed,
    }
}

/// Planner soundness end to end: the same query answered through a
/// [`twigserve::QueryService`] in adaptive mode and in every forced-arm
/// mode must produce the same rows (sorted — the baseline engines'
/// document-order canonicalization is part of the service contract).
/// This also exercises the forced-mode fallback: a GTP-extension query
/// forced onto a decomposition baseline must still be answered (by
/// Twig²Stack), never rejected or miscomputed.
fn adaptive_vs_forced(doc: &Document, gtp: &Gtp) -> Outcome {
    use twigserve::{PlanEngine, PlannerMode, QueryService, ServiceConfig};

    // The service takes query *text*; the canonical serialization
    // round-trips every generated GTP, but re-parsing renumbers query
    // nodes (and with them the result schema), so the oracle must
    // evaluate the round-tripped form, not the original.
    let query = gtpquery::serialize(gtp);
    let canonical = match gtpquery::parse_twig(&query) {
        Ok(g) => g,
        Err(e) => {
            return Outcome::Failed(format!(
                "canonical serialization failed to re-parse ({query}): {e}"
            ))
        }
    };
    let expected = evaluate(doc, &canonical);
    if expected.len() > MAX_ROWS {
        return Outcome::Skipped("result set too large for the smoke budget");
    }
    let expected = expected.sorted();
    let index = ElementIndex::build(doc);
    let modes = [
        ("adaptive", PlannerMode::Adaptive),
        (
            "forced(twig2stack)",
            PlannerMode::Forced(PlanEngine::Twig2Stack),
        ),
        (
            "forced(twigstack)",
            PlannerMode::Forced(PlanEngine::TwigStack),
        ),
        (
            "forced(pathstack)",
            PlannerMode::Forced(PlanEngine::PathStack),
        ),
        ("forced(tjfast)", PlannerMode::Forced(PlanEngine::TJFast)),
    ];
    for (label, mode) in modes {
        let svc = QueryService::new(
            doc.clone(),
            index.clone(),
            ServiceConfig {
                planner: mode,
                ..ServiceConfig::default()
            },
        );
        match svc.execute(&query) {
            Ok(rs) => {
                let got = rs.sorted();
                if got != expected {
                    return Outcome::Failed(format!(
                        "service({label}) differs from oracle: {} vs {} rows",
                        got.len(),
                        expected.len()
                    ));
                }
            }
            Err(e) => {
                return Outcome::Failed(format!("service({label}) failed: {e}"));
            }
        }
    }
    Outcome::Passed
}

/// Derive a three-member catalog from the fuzzed pair — the document
/// twice (identical summary fingerprint, so the shards must share one
/// schema plan) around a label-disjoint decoy the Bloom router should
/// skip whenever the query names any required label — and hand it to
/// [`check_catalog`].
fn catalog_vs_serial(doc: &Document, gtp: &Gtp) -> Outcome {
    let decoy = xmldom::parse("<zq9><zq9/></zq9>").expect("static decoy parses");
    check_catalog(&[doc.clone(), decoy, doc.clone()], gtp)
}

/// The harness behind [`Invariant::CatalogVsSerial`], shared with corpus
/// replay (a `.t2s` file's `docs =` key routes here with the stored
/// member list instead of the derived three-member catalog).
///
/// Asserts, for 1-shard and 3-shard partitionings of `members`:
/// * serial catalog iteration equals the per-member naive-order oracle
///   (one [`evaluate`] per member, empty members dropped, doc-id order);
/// * the Bloom router routes every member that has at least one hit
///   (zero false negatives);
/// * async scatter-gather over the shard pool returns exactly the
///   serial hits — same doc ids, same rows, same order.
pub fn check_catalog(members: &[Document], gtp: &Gtp) -> Outcome {
    use twigserve::{CatalogConfig, CatalogService};

    if members.is_empty() {
        return Outcome::Skipped("empty catalog");
    }
    // Same round-trip caveat as `adaptive_vs_forced`: the catalog takes
    // query *text*, and re-parsing the canonical serialization renumbers
    // query nodes, so the oracle must evaluate the round-tripped form.
    let query = gtpquery::serialize(gtp);
    let canonical = match gtpquery::parse_twig(&query) {
        Ok(g) => g,
        Err(e) => {
            return Outcome::Failed(format!(
                "canonical serialization failed to re-parse ({query}): {e}"
            ))
        }
    };
    let mut expected: Vec<(u32, ResultSet)> = Vec::new();
    let mut total_rows = 0usize;
    for (id, member) in members.iter().enumerate() {
        let rows = evaluate(member, &canonical);
        total_rows += rows.len();
        if total_rows > MAX_ROWS {
            return Outcome::Skipped("result set too large for the smoke budget");
        }
        if !rows.is_empty() {
            expected.push((id as u32, rows));
        }
    }
    for shards in [1, 3] {
        let cat = CatalogService::build_heap(
            members.to_vec(),
            CatalogConfig {
                shards,
                ..CatalogConfig::default()
            },
        );
        let routed = match cat.routed_docs(&query) {
            Ok(ids) => ids,
            Err(e) => return Outcome::Failed(format!("routing failed ({shards} shards): {e}")),
        };
        for (id, _) in &expected {
            if !routed.contains(id) {
                return Outcome::Failed(format!(
                    "routing false negative: doc {id} has matches but was not \
                     routed ({shards} shards)"
                ));
            }
        }
        let serial = match cat.execute_serial(&query) {
            Ok(hits) => hits,
            Err(e) => {
                return Outcome::Failed(format!("serial iteration failed ({shards} shards): {e}"))
            }
        };
        let serial_pairs: Vec<(u32, &ResultSet)> =
            serial.iter().map(|h| (h.doc, &h.rows)).collect();
        let expected_pairs: Vec<(u32, &ResultSet)> =
            expected.iter().map(|(id, rows)| (*id, rows)).collect();
        if serial_pairs != expected_pairs {
            return Outcome::Failed(format!(
                "serial catalog iteration differs from the per-member oracle: \
                 {} vs {} hits ({shards} shards)",
                serial.len(),
                expected.len()
            ));
        }
        let scattered = match cat.execute(&query) {
            Ok(hits) => hits,
            Err(e) => {
                return Outcome::Failed(format!("scatter-gather failed ({shards} shards): {e}"))
            }
        };
        if scattered != serial {
            return Outcome::Failed(format!(
                "scatter-gather differs from serial iteration: {} vs {} hits \
                 ({shards} shards)",
                scattered.len(),
                serial.len()
            ));
        }
    }
    Outcome::Passed
}

/// Derive a three-member subscription set from the fuzzed pair — the
/// query itself, a `//*` sibling that keeps every automaton state busy,
/// and a duplicate of the query (duplicate registrations must stay
/// independent) — and hand it to [`check_subscriptions`].
fn subscribed_vs_solo(doc: &Document, gtp: &Gtp) -> Outcome {
    let wild = gtpquery::parse_twig("//*").expect("static wildcard parses");
    check_subscriptions(doc, &[gtp.clone(), wild, gtp.clone()])
}

/// The harness behind [`Invariant::SubscribedVsSolo`], shared with
/// corpus replay (a `.t2s` file's `subs =` key routes here with the
/// stored query list instead of the derived three-member set).
///
/// Registers `subs` into one shared prefix-merged automaton
/// (`twig2stack::subscribe`) and asserts:
/// * **DOM path** — one `run_subscriptions_doc` pass over `doc` yields,
///   per subscription, rows byte-equal to that query's solo
///   [`evaluate`] (value predicates included: the document is the text
///   source);
/// * **stream path** (only when no subscription has a value predicate —
///   the structure-only stream drops text) — one `run_subscriptions`
///   pass over the serialized document equals each query's solo
///   [`evaluate_streaming`] run, byte for byte;
/// * **duplicate independence** — subscriptions with identical
///   canonical serializations produce identical results;
/// * the NFA's relevance filter never feeds a matcher more closes than
///   the stream has elements per subscription.
pub fn check_subscriptions(doc: &Document, subs: &[Gtp]) -> Outcome {
    use twig2stack::{run_subscriptions, run_subscriptions_doc, SharedAutomaton};

    if subs.is_empty() {
        return Outcome::Skipped("no subscriptions");
    }
    if doc.is_empty() {
        return Outcome::Skipped("empty document has no event stream");
    }
    for (i, sub) in subs.iter().enumerate() {
        let a = QueryAnalysis::new(sub);
        if !a.enumerable() || a.columns().is_empty() {
            return Outcome::Skipped(if i == 0 {
                "query is not enumerable"
            } else {
                "a sibling subscription is not enumerable"
            });
        }
    }
    let mut total_rows = 0usize;
    let mut expected = Vec::with_capacity(subs.len());
    for sub in subs {
        let rows = evaluate(doc, sub);
        total_rows += rows.len();
        if total_rows > MAX_ROWS {
            return Outcome::Skipped("result set too large for the smoke budget");
        }
        expected.push(rows);
    }

    let auto = SharedAutomaton::build(subs.to_vec());
    let (dom_results, stats) = run_subscriptions_doc(doc, &auto, MatchOptions::default());
    for (i, (got, want)) in dom_results.iter().zip(&expected).enumerate() {
        if got != want {
            return Outcome::Failed(format!(
                "subscription {i} diverged from its solo DOM run: {} vs {} rows",
                got.len(),
                want.len()
            ));
        }
    }
    if stats.matcher_feeds > stats.elements * subs.len() as u64 {
        return Outcome::Failed(format!(
            "relevance filter fed {} matcher closes for {} elements x {} \
             subscriptions",
            stats.matcher_feeds,
            stats.elements,
            subs.len()
        ));
    }
    // Duplicate independence: equal canonical forms, equal results.
    for i in 0..subs.len() {
        for j in i + 1..subs.len() {
            if gtpquery::serialize(&subs[i]) == gtpquery::serialize(&subs[j])
                && dom_results[i] != dom_results[j]
            {
                return Outcome::Failed(format!(
                    "duplicate registrations {i} and {j} diverged: {} vs {} rows",
                    dom_results[i].len(),
                    dom_results[j].len()
                ));
            }
        }
    }

    if subs.iter().any(Gtp::has_value_preds) {
        return Outcome::Passed; // stream path cannot see text
    }
    let xml = write(doc, Indent::None);
    let (stream_results, _) = match run_subscriptions(&xml, &auto, MatchOptions::default()) {
        Ok(out) => out,
        Err(e) => return Outcome::Failed(format!("shared stream pass failed: {e}")),
    };
    for (i, (sub, got)) in subs.iter().zip(&stream_results).enumerate() {
        match evaluate_streaming(&xml, sub, MatchOptions::default()) {
            Ok((want, _)) => {
                if *got != want {
                    return Outcome::Failed(format!(
                        "subscription {i} diverged from its solo evaluate_streaming \
                         run: {} vs {} rows",
                        got.len(),
                        want.len()
                    ));
                }
            }
            Err(e) => return Outcome::Failed(format!("solo stream re-parse failed: {e}")),
        }
    }
    Outcome::Passed
}

/// The harness behind [`Invariant::EditedVsRebuilt`], shared with corpus
/// replay (a `.t2s` file's `edits =` key routes here with the stored
/// script instead of the derived one).
///
/// Replays `script` against `doc`, maintaining **one** index
/// incrementally across the whole chain while rebuilding a fresh index
/// at every step, and demands the two be structurally identical —
/// element partitions, sid tags, skip-block tables, and the path
/// summary — whether the step was patched in place or fell back to a
/// rebuild. On the final document the incrementally-maintained index
/// must also produce byte-equal query results to the rebuilt one and to
/// the naive oracle, pruned and unpruned: structural equality proves
/// the encoding, the query pass proves the index is actually usable.
pub fn check_script(doc: &Document, gtp: &Gtp, script: &EditScript) -> Outcome {
    let steps = match script.apply(doc) {
        Ok(s) => s,
        Err(e) => return Outcome::Failed(format!("edit script is not applicable: {e}")),
    };
    if steps.is_empty() {
        return Outcome::Skipped("empty edit script");
    }
    let mut patched = ElementIndex::build(doc);
    for (step, (edited, delta)) in steps.iter().enumerate() {
        let (next, how) = patched.apply_edit(edited, delta);
        patched = next;
        let rebuilt = ElementIndex::build(edited);
        if let Some(msg) = index_diff(&patched, &rebuilt, edited) {
            let how = match how {
                EditApply::Patched => "patched",
                EditApply::Rebuilt => "rebuilt",
            };
            return Outcome::Failed(format!("step {step} ({how}): {msg}"));
        }
    }
    let (last, _) = steps.last().expect("non-empty steps");
    let analysis = QueryAnalysis::new(gtp);
    if !last.is_empty() && analysis.enumerable() && !analysis.columns().is_empty() {
        let expected = naive_evaluate(last, gtp);
        if expected.len() > MAX_ROWS {
            return Outcome::Skipped("result set too large for the smoke budget");
        }
        let rebuilt = ElementIndex::build(last);
        for policy in [PruningPolicy::Enabled, PruningPolicy::Disabled] {
            let inc = evaluate_indexed(last, &patched, gtp, policy);
            let fresh = evaluate_indexed(last, &rebuilt, gtp, policy);
            if inc != fresh {
                return diff("edited index", &inc, &fresh);
            }
            if inc != expected {
                return diff("edited index vs naive oracle", &inc, &expected);
            }
        }
    }
    Outcome::Passed
}

/// First structural difference between an incrementally-patched index
/// and a rebuilt one, or `None` when they are identical.
fn index_diff(patched: &ElementIndex, rebuilt: &ElementIndex, doc: &Document) -> Option<String> {
    if patched.label_count() != rebuilt.label_count() {
        return Some(format!(
            "label_count {} vs rebuilt {}",
            patched.label_count(),
            rebuilt.label_count()
        ));
    }
    for ix in 0..doc.labels().len() {
        let l = Label::from_index(ix);
        if patched.elements(l) != rebuilt.elements(l) {
            return Some(format!("label {ix}: element partition differs"));
        }
        if patched.sids(l) != rebuilt.sids(l) {
            return Some(format!("label {ix}: sid tags differ"));
        }
        if patched.blocks(l) != rebuilt.blocks(l) {
            return Some(format!("label {ix}: skip-block table differs"));
        }
    }
    if patched.path_summary() != rebuilt.path_summary() {
        return Some("path summary differs".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use xmldom::parse;

    fn all_pass(xml: &str, query: &str) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let out = check_case(&doc, &gtp);
        assert!(out.failures.is_empty(), "{query}: {:?}", out.failures);
        assert!(out.passed >= 1, "{query}: everything skipped");
    }

    #[test]
    fn known_good_pairs_pass() {
        all_pass("<a><b><c/></b><b/></a>", "//a/b//c");
        all_pass("<a><b><c/></b><b/></a>", "//a[b]/b!");
        all_pass("<a><b>x</b><b>y</b></a>", "//a/b='x'");
        all_pass("<a><b/><c/></a>", "//a[b! or d!]");
        all_pass("<a><b/><c/></a>", "//a/?d");
        all_pass("<a><b/><b><c/></b></a>", "//a/b@[.//c!]");
    }

    #[test]
    fn boolean_queries_are_skipped() {
        let doc = parse("<a><b/></a>").unwrap();
        let gtp = parse_twig("//a!/b!").unwrap();
        for inv in Invariant::ALL {
            assert!(
                matches!(check(&doc, &gtp, inv), Outcome::Skipped(_)),
                "{}",
                inv.name()
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_name(inv.name()), Some(inv));
        }
        assert_eq!(Invariant::from_name("nope"), None);
    }

    #[test]
    fn pruned_vs_unpruned_covers_gtp_extensions() {
        // Shapes the classic baselines reject still exercise the core
        // engine's pruned path: optional edges, OR-groups, value
        // predicates, wildcards.
        let doc = parse("<a><b>x</b><b><c/></b><d><b/></d></a>").unwrap();
        for q in ["//a/b[?c@]", "//a[b! or d!]/b", "//a/b='x'", "//*/b[c]"] {
            let gtp = parse_twig(q).unwrap();
            assert_eq!(
                check(&doc, &gtp, Invariant::PrunedVsUnpruned),
                Outcome::Passed,
                "{q}"
            );
        }
    }

    #[test]
    fn edited_vs_rebuilt_passes_on_known_pairs() {
        for (xml, q) in [
            ("<a><b><c/></b><b/></a>", "//a/b//c"),
            ("<a><b>x</b><b>y</b></a>", "//a/b='x'"),
            ("<a><b/><c/></a>", "//a[b! or d!]"),
        ] {
            let doc = parse(xml).unwrap();
            let gtp = parse_twig(q).unwrap();
            assert_eq!(
                check(&doc, &gtp, Invariant::EditedVsRebuilt),
                Outcome::Passed,
                "{q}"
            );
        }
    }

    #[test]
    fn check_script_covers_root_delete_and_revive() {
        let doc = parse("<a><b/><c/></a>").unwrap();
        let gtp = parse_twig("//a/b").unwrap();
        let script =
            EditScript::parse("delete 0 ; insert - 0 <a><b/></a> ; insert 0 1 <c><b/></c>")
                .unwrap();
        assert_eq!(check_script(&doc, &gtp, &script), Outcome::Passed);
    }

    #[test]
    fn check_script_fails_on_inapplicable_scripts() {
        let doc = parse("<a/>").unwrap();
        let gtp = parse_twig("//a").unwrap();
        let script = EditScript::parse("delete 99").unwrap();
        assert!(matches!(
            check_script(&doc, &gtp, &script),
            Outcome::Failed(_)
        ));
    }

    #[test]
    fn catalog_vs_serial_passes_on_known_pairs() {
        for (xml, q) in [
            ("<a><b><c/></b><b/></a>", "//a/b//c"),
            ("<a><b>x</b><b>y</b></a>", "//a/b='x'"),
            ("<a><b/><c/></a>", "//a[b! or d!]"),
            ("<a><b/></a>", "//q/z"), // no member matches anywhere
        ] {
            let doc = parse(xml).unwrap();
            let gtp = parse_twig(q).unwrap();
            assert_eq!(
                check(&doc, &gtp, Invariant::CatalogVsSerial),
                Outcome::Passed,
                "{q}"
            );
        }
    }

    #[test]
    fn check_catalog_accepts_heterogeneous_member_lists() {
        let members: Vec<_> = ["<a><b/></a>", "<x><y/></x>", "<a><b><b/></b></a>", "<a/>"]
            .iter()
            .map(|x| parse(x).unwrap())
            .collect();
        let gtp = parse_twig("//a/b").unwrap();
        assert_eq!(check_catalog(&members, &gtp), Outcome::Passed);
        assert!(matches!(check_catalog(&[], &gtp), Outcome::Skipped(_)));
    }

    #[test]
    fn subscribed_vs_solo_passes_on_known_pairs() {
        for (xml, q) in [
            ("<a><b><c/></b><b/></a>", "//a/b//c"),
            ("<a><b>x</b><b>y</b></a>", "//a/b='x'"), // DOM path only
            ("<a><b/><c/></a>", "//a[b! or d!]"),
            ("<a><b/><b><c/></b></a>", "//a/b[?c@]"),
            ("<a><b/></a>", "//q/z"), // matches nothing anywhere
        ] {
            let doc = parse(xml).unwrap();
            let gtp = parse_twig(q).unwrap();
            assert_eq!(
                check(&doc, &gtp, Invariant::SubscribedVsSolo),
                Outcome::Passed,
                "{q}"
            );
        }
    }

    #[test]
    fn check_subscriptions_accepts_explicit_query_lists() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let subs: Vec<_> = ["//a/b", "//b//c", "//*[b]", "//a/b"]
            .iter()
            .map(|q| parse_twig(q).unwrap())
            .collect();
        assert_eq!(check_subscriptions(&doc, &subs), Outcome::Passed);
        assert!(matches!(
            check_subscriptions(&doc, &[]),
            Outcome::Skipped(_)
        ));
    }

    #[test]
    fn weakening_gates_on_groups_and_optional() {
        let doc = parse("<a><b/></a>").unwrap();
        let g = parse_twig("//a/b@").unwrap();
        assert!(matches!(
            check(&doc, &g, Invariant::PredicateWeakening),
            Outcome::Skipped(_)
        ));
        let g = parse_twig("//a/?b").unwrap();
        assert!(matches!(
            check(&doc, &g, Invariant::PredicateWeakening),
            Outcome::Skipped(_)
        ));
    }
}
