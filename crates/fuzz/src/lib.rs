//! # twigfuzz — conformance fuzzing for the Twig²Stack workspace
//!
//! The differential test suites draw queries from small hand-written
//! pools, so whole regions of the GTP grammar are never exercised against
//! the naive oracle. This crate closes that gap with structured fuzzing:
//!
//! * [`gen`] — a seeded random GTP generator that samples labels and text
//!   values from an actual document (so queries are rarely vacuously
//!   empty) and covers the full grammar: both axes, wildcards, all three
//!   roles, optional edges, OR-groups, and value predicates. Every
//!   generated query round-trips `gtpquery::serialize` ∘
//!   `gtpquery::parse_twig` losslessly.
//! * [`invariants`] — eleven metamorphic invariants checked per
//!   (document, query) pair: cross-engine agreement, count/enumerate
//!   consistency, existence consistency, early-vs-full equality,
//!   serial-vs-parallel equality, predicate-weakening monotonicity,
//!   pruned-vs-unpruned and mapped-vs-heap equivalence,
//!   adaptive-vs-forced planning, edited-vs-rebuilt index maintenance,
//!   and catalog-vs-serial scatter-gather equivalence. See DESIGN.md §8
//!   for the mapping to paper sections.
//! * [`edits`] — seeded random edit scripts (insert/delete/replace
//!   subtrees, including root deletion and empty-document revival) that
//!   drive the `edited_vs_rebuilt` invariant and ride in the `edits =`
//!   key of corpus files.
//! * [`mod@shrink`] — greedy minimization of failing pairs (prune query
//!   nodes, delete document subtrees, drop edit-script ops) so
//!   regressions are readable.
//! * [`corpus`] — self-contained `.t2s` case files under `corpus/`,
//!   replayed by `tests/corpus_replay.rs` on every build.
//! * [`session`] — the seeded fuzzing loop used by both the
//!   `cargo test` smoke suites and the long-running `twigfuzz` binary
//!   (`crates/bench/src/bin/twigfuzz.rs`), reporting per-invariant
//!   counters through `twigobs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod edits;
pub mod gen;
pub mod invariants;
pub mod session;
pub mod shrink;
pub mod vocab;

pub use corpus::{write_case, CaseFile};
pub use edits::{derive_script, EditScript, ScriptOp, DERIVED_STEPS};
pub use gen::{generate_query, GenConfig};
pub use invariants::{
    check, check_case, check_catalog, check_script, CaseOutcome, Invariant, Outcome,
};
pub use session::{run_session, Dataset, FailureCase, SessionConfig, SessionReport};
pub use shrink::{copy_without, shrink, shrink_script};
pub use vocab::Vocabulary;
