//! Self-contained `.t2s` regression case files.
//!
//! A case file captures one (document, query, invariant) triple in a
//! line-oriented `key = value` format that needs no external tooling to
//! read or write:
//!
//! ```text
//! # optional comment
//! invariant = cross_engine
//! query = //a[b! or c!]/d
//! xml = <a><b/><d/></a>
//! edits = delete 1 ; insert 0 0 <b/> (optional)
//! note = found by twigfuzz --seed 42 (optional)
//! ```
//!
//! `invariant = all` (or omitting the key) replays every invariant.
//! The optional `edits` key carries a serialized
//! [`EditScript`]; when present, the `edited_vs_rebuilt` invariant
//! replays that exact script (via [`check_script`]) instead of
//! deriving one from the pair — other invariants ignore the key.
//! The optional `docs` key carries a `|`-separated list of single-line
//! member XMLs; when present, the `catalog_vs_serial` invariant checks
//! exactly that catalog (via [`check_catalog`]) instead of the derived
//! three-member one — other invariants ignore the key, and member XML
//! must not contain a literal `|`.
//! The optional `subs` key carries a `|`-separated list of query texts;
//! when present, the `subscribed_vs_solo` invariant registers exactly
//! that subscription set (via [`check_subscriptions`]) instead of the
//! derived three-member one — other invariants ignore the key, and
//! query text must not contain a literal `|`.
//! The XML value is a single line (`xmldom::write` with
//! [`Indent::None`]); keys may appear in any order; `#` starts a
//! comment line. Files live under `corpus/` at the workspace root and
//! are replayed by `tests/corpus_replay.rs` on every `cargo test` run.
//! The convention is also documented in DESIGN.md §8.

use crate::edits::EditScript;
use crate::invariants::{
    check, check_catalog, check_script, check_subscriptions, Invariant, Outcome,
};
use gtpquery::parse_twig;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use xmldom::{parse, write, Document, Indent};

/// One parsed `.t2s` case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFile {
    /// The invariant to replay; `None` replays every invariant.
    pub invariant: Option<Invariant>,
    /// The query, in `gtpquery::parse_twig` syntax.
    pub query: String,
    /// The document, as single-line XML.
    pub xml: String,
    /// A serialized edit script replayed by the `edited_vs_rebuilt`
    /// invariant (other invariants ignore it).
    pub edits: Option<String>,
    /// `|`-separated single-line member XMLs replayed as the exact
    /// catalog by the `catalog_vs_serial` invariant (other invariants
    /// ignore it).
    pub docs: Option<String>,
    /// `|`-separated query texts registered as the exact subscription
    /// set by the `subscribed_vs_solo` invariant (other invariants
    /// ignore it).
    pub subs: Option<String>,
    /// Free-form provenance note.
    pub note: Option<String>,
}

impl CaseFile {
    /// Build a case from a failing pair.
    pub fn from_failure(doc: &Document, gtp: &gtpquery::Gtp, inv: Invariant, note: &str) -> Self {
        CaseFile {
            invariant: Some(inv),
            query: gtpquery::serialize(gtp),
            xml: write(doc, Indent::None),
            edits: None,
            docs: None,
            subs: None,
            note: if note.is_empty() {
                None
            } else {
                Some(note.to_string())
            },
        }
    }

    /// Parse the `.t2s` text format.
    pub fn parse(input: &str) -> Result<CaseFile, String> {
        let mut invariant = None;
        let mut query = None;
        let mut xml = None;
        let mut edits = None;
        let mut docs = None;
        let mut subs = None;
        let mut note = None;
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "invariant" => {
                    invariant = if value == "all" {
                        None
                    } else {
                        Some(Invariant::from_name(value).ok_or_else(|| {
                            format!("line {}: unknown invariant `{value}`", lineno + 1)
                        })?)
                    };
                }
                "query" => query = Some(value.to_string()),
                "xml" => xml = Some(value.to_string()),
                "edits" => {
                    EditScript::parse(value).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    edits = Some(value.to_string());
                }
                "docs" => {
                    for member in value.split('|') {
                        parse(member.trim()).map_err(|e| {
                            format!("line {}: catalog member does not parse: {e}", lineno + 1)
                        })?;
                    }
                    docs = Some(value.to_string());
                }
                "subs" => {
                    for sub in value.split('|') {
                        parse_twig(sub.trim()).map_err(|e| {
                            format!("line {}: subscription does not parse: {e}", lineno + 1)
                        })?;
                    }
                    subs = Some(value.to_string());
                }
                "note" => note = Some(value.to_string()),
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        Ok(CaseFile {
            invariant,
            query: query.ok_or("missing `query` line")?,
            xml: xml.ok_or("missing `xml` line")?,
            edits,
            docs,
            subs,
            note,
        })
    }

    /// Serialize back to the `.t2s` text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("invariant = ");
        out.push_str(self.invariant.map_or("all", Invariant::name));
        out.push('\n');
        out.push_str("query = ");
        out.push_str(&self.query);
        out.push('\n');
        out.push_str("xml = ");
        out.push_str(&self.xml);
        out.push('\n');
        if let Some(e) = &self.edits {
            out.push_str("edits = ");
            out.push_str(e);
            out.push('\n');
        }
        if let Some(d) = &self.docs {
            out.push_str("docs = ");
            out.push_str(d);
            out.push('\n');
        }
        if let Some(q) = &self.subs {
            out.push_str("subs = ");
            out.push_str(q);
            out.push('\n');
        }
        if let Some(n) = &self.note {
            out.push_str("note = ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Re-run the case. Returns the failures (empty = the case passes).
    /// Errors if the XML or query no longer parses.
    pub fn replay(&self) -> Result<Vec<(Invariant, String)>, String> {
        let doc = parse(&self.xml).map_err(|e| format!("xml does not parse: {e}"))?;
        let gtp = parse_twig(&self.query).map_err(|e| format!("query does not parse: {e}"))?;
        let invariants: &[Invariant] = match self.invariant {
            Some(inv) => &[inv],
            None => &Invariant::ALL,
        };
        let mut failures = Vec::new();
        for &inv in invariants {
            let outcome = match inv {
                Invariant::EditedVsRebuilt if self.edits.is_some() => {
                    let text = self.edits.as_deref().expect("checked above");
                    let script = EditScript::parse(text)
                        .map_err(|e| format!("edit script does not parse: {e}"))?;
                    check_script(&doc, &gtp, &script)
                }
                Invariant::CatalogVsSerial if self.docs.is_some() => {
                    let text = self.docs.as_deref().expect("checked above");
                    let members = text
                        .split('|')
                        .map(|m| parse(m.trim()))
                        .collect::<Result<Vec<Document>, _>>()
                        .map_err(|e| format!("catalog member does not parse: {e}"))?;
                    check_catalog(&members, &gtp)
                }
                Invariant::SubscribedVsSolo if self.subs.is_some() => {
                    let text = self.subs.as_deref().expect("checked above");
                    let members = text
                        .split('|')
                        .map(|q| parse_twig(q.trim()))
                        .collect::<Result<Vec<gtpquery::Gtp>, _>>()
                        .map_err(|e| format!("subscription does not parse: {e}"))?;
                    check_subscriptions(&doc, &members)
                }
                _ => check(&doc, &gtp, inv),
            };
            if let Outcome::Failed(msg) = outcome {
                failures.push((inv, msg));
            }
        }
        Ok(failures)
    }

    /// Stable file name: `<invariant>-<content hash>.t2s`.
    pub fn file_name(&self) -> String {
        let tag = self.invariant.map_or("all", Invariant::name);
        format!(
            "{tag}-{:08x}.t2s",
            fnv1a(self.serialize().as_bytes()) as u32
        )
    }
}

/// FNV-1a — tiny, dependency-free content hash for file naming.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Write `case` into `dir` (created if absent) under its stable name.
pub fn write_case(dir: &Path, case: &CaseFile) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(case.file_name());
    fs::write(&path, case.serialize())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_serialize_round_trip() {
        let text = "# a comment\n\ninvariant = cross_engine\nquery = //a[b! or c!]\n\
                    xml = <a x='1'><b/></a>\nnote = hand-written\n";
        let case = CaseFile::parse(text).unwrap();
        assert_eq!(case.invariant, Some(Invariant::CrossEngine));
        assert_eq!(case.query, "//a[b! or c!]");
        assert_eq!(case.xml, "<a x='1'><b/></a>");
        assert_eq!(CaseFile::parse(&case.serialize()).unwrap(), case);
    }

    #[test]
    fn xml_values_may_contain_equals_signs() {
        let case = CaseFile::parse("query = //a\nxml = <a k=\"v=w\"/>\n").unwrap();
        assert_eq!(case.xml, "<a k=\"v=w\"/>");
        assert_eq!(case.invariant, None);
    }

    #[test]
    fn parse_errors() {
        assert!(CaseFile::parse("query = //a\n").is_err()); // missing xml
        assert!(CaseFile::parse("xml = <a/>\n").is_err()); // missing query
        assert!(CaseFile::parse("query = //a\nxml = <a/>\nbogus = 1\n").is_err());
        assert!(CaseFile::parse("query = //a\nxml = <a/>\ninvariant = nope\n").is_err());
        assert!(CaseFile::parse("query = //a\nxml = <a/>\nedits = explode 3\n").is_err());
        assert!(CaseFile::parse("query = //a\nxml = <a/>\ndocs = <a/>|<b\n").is_err());
        assert!(CaseFile::parse("query = //a\nxml = <a/>\nsubs = //a | //\n").is_err());
    }

    #[test]
    fn docs_key_round_trips_and_replays_the_stored_catalog() {
        let text = "invariant = catalog_vs_serial\nquery = //a/b\nxml = <a><b/></a>\n\
                    docs = <a><b/></a> | <x><y/></x> | <a><b/><b/></a>\n";
        let case = CaseFile::parse(text).unwrap();
        assert_eq!(
            case.docs.as_deref(),
            Some("<a><b/></a> | <x><y/></x> | <a><b/><b/></a>")
        );
        assert_eq!(CaseFile::parse(&case.serialize()).unwrap(), case);
        assert_eq!(case.replay().unwrap(), vec![]);
    }

    #[test]
    fn subs_key_round_trips_and_replays_the_stored_subscriptions() {
        let text = "invariant = subscribed_vs_solo\nquery = //a/b\nxml = <a><b><c/></b><b/></a>\n\
                    subs = //a/b | //* | //b[c] | //a/b\n";
        let case = CaseFile::parse(text).unwrap();
        assert_eq!(case.subs.as_deref(), Some("//a/b | //* | //b[c] | //a/b"));
        assert_eq!(CaseFile::parse(&case.serialize()).unwrap(), case);
        assert_eq!(case.replay().unwrap(), vec![]);
    }

    #[test]
    fn edits_key_round_trips_and_replays_the_stored_script() {
        let text = "invariant = edited_vs_rebuilt\nquery = //a/b\nxml = <a><b/><c/></a>\n\
                    edits = delete 0 ; insert - 0 <a><b/></a>\n";
        let case = CaseFile::parse(text).unwrap();
        assert_eq!(
            case.edits.as_deref(),
            Some("delete 0 ; insert - 0 <a><b/></a>")
        );
        assert_eq!(CaseFile::parse(&case.serialize()).unwrap(), case);
        assert_eq!(case.replay().unwrap(), vec![]);
        // A stored script that no longer applies is a replay error, not
        // a silent pass.
        let broken = CaseFile {
            edits: Some("delete 99".to_string()),
            ..case
        };
        let failures = broken.replay().unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].1.contains("not applicable"), "{failures:?}");
    }

    #[test]
    fn replay_passes_on_a_healthy_case() {
        let case = CaseFile::parse("query = //a/b\nxml = <a><b/></a>\n").unwrap();
        assert_eq!(case.replay().unwrap(), vec![]);
    }

    #[test]
    fn file_name_is_stable_and_tagged() {
        let case = CaseFile::parse("invariant = early_vs_full\nquery = //a\nxml = <a/>\n").unwrap();
        let n1 = case.file_name();
        assert!(
            n1.starts_with("early_vs_full-") && n1.ends_with(".t2s"),
            "{n1}"
        );
        assert_eq!(n1, case.file_name());
    }
}
