//! Seeded random edit scripts for the `edited_vs_rebuilt` invariant.
//!
//! An [`EditScript`] is a replayable sequence of subtree edits against a
//! document, with nodes addressed by **preorder index** — well-defined
//! because `xmldom` keeps node ids dense and in preorder after every
//! edit, so "node 3 of the document as it stands" survives serialization
//! without carrying the intermediate documents along.
//!
//! Scripts serialize to a single line (they ride in the `edits =` key of
//! a `.t2s` corpus file), ops joined by `" ; "`:
//!
//! ```text
//! insert 0 1 <x><y/></x> ; delete 3 ; replace 1 <z/> ; insert - 0 <r/>
//! ```
//!
//! `insert <parent> <position> <xml>` grafts a subtree (`-` as the
//! parent targets the empty document — the revive edge), `delete
//! <target>` removes a subtree (target `0` empties the document), and
//! `replace <target> <xml>` swaps one. Subtree XML must not contain the
//! `" ; "` separator; the generator only emits labels and text tokens
//! that cannot.
//!
//! [`generate`] draws a script from a seeded RNG by *simulating* it on a
//! clone of the document, so every emitted op is applicable at its step.
//! It deliberately steers into the edges the incremental index
//! maintenance has to survive: root-adjacent targets, deleting the root
//! (and reviving the empty document), repeated same-gap inserts that
//! exhaust the stride budget and force a renumber, and occasional
//! fresh labels that force the index's rebuild fallback. [`derive_script`]
//! fixes the seed as a hash of the (document, query) pair, making the
//! `edited_vs_rebuilt` invariant deterministic per pair with no extra
//! state in the fuzzing session.

use crate::corpus::fnv1a;
use crate::vocab::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmldom::{apply_op, parse, write, Document, EditDelta, EditOp, Indent, NodeId};

/// One step of an [`EditScript`]. Node references are preorder indices
/// into the document *as it stands when the step runs*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// Graft `xml` as child `position` of node `parent`; `parent: None`
    /// roots it in an empty document.
    Insert {
        /// Preorder index of the parent, or `None` for the empty
        /// document itself.
        parent: Option<usize>,
        /// Child slot the subtree root takes.
        position: usize,
        /// The grafted subtree, as XML.
        xml: String,
    },
    /// Remove the subtree rooted at preorder index `target`.
    Delete {
        /// Preorder index of the removed subtree's root.
        target: usize,
    },
    /// Replace the subtree rooted at `target` with `xml`.
    Replace {
        /// Preorder index of the replaced subtree's root.
        target: usize,
        /// The replacement subtree, as XML.
        xml: String,
    },
}

impl ScriptOp {
    /// Lower to an [`EditOp`] against `doc` (parses the subtree XML and
    /// resolves preorder indices to node ids). Index validity is left to
    /// `apply_op`, which rejects out-of-range nodes with a typed error.
    pub fn to_edit_op(&self, _doc: &Document) -> Result<EditOp, String> {
        let subtree = |xml: &str| {
            parse(xml).map_err(|e| format!("edit subtree does not parse ({xml}): {e}"))
        };
        Ok(match self {
            ScriptOp::Insert { parent, position, xml } => EditOp::InsertSubtree {
                parent: parent.map(NodeId::from_index),
                position: *position,
                subtree: subtree(xml)?,
            },
            ScriptOp::Delete { target } => {
                EditOp::DeleteSubtree { target: NodeId::from_index(*target) }
            }
            ScriptOp::Replace { target, xml } => EditOp::ReplaceSubtree {
                target: NodeId::from_index(*target),
                subtree: subtree(xml)?,
            },
        })
    }

    fn serialize(&self) -> String {
        match self {
            ScriptOp::Insert { parent, position, xml } => {
                let p = parent.map_or("-".to_string(), |p| p.to_string());
                format!("insert {p} {position} {xml}")
            }
            ScriptOp::Delete { target } => format!("delete {target}"),
            ScriptOp::Replace { target, xml } => format!("replace {target} {xml}"),
        }
    }

    fn parse(op: &str) -> Result<ScriptOp, String> {
        let bad = || format!("malformed edit op `{op}`");
        let index = |tok: &str| tok.parse::<usize>().map_err(|_| bad());
        if let Some(rest) = op.strip_prefix("insert ") {
            let (parent, rest) = rest.split_once(' ').ok_or_else(bad)?;
            let (position, xml) = rest.split_once(' ').ok_or_else(bad)?;
            let parent = if parent == "-" { None } else { Some(index(parent)?) };
            if xml.trim().is_empty() {
                return Err(bad());
            }
            Ok(ScriptOp::Insert { parent, position: index(position)?, xml: xml.to_string() })
        } else if let Some(rest) = op.strip_prefix("delete ") {
            Ok(ScriptOp::Delete { target: index(rest.trim())? })
        } else if let Some(rest) = op.strip_prefix("replace ") {
            let (target, xml) = rest.split_once(' ').ok_or_else(bad)?;
            if xml.trim().is_empty() {
                return Err(bad());
            }
            Ok(ScriptOp::Replace { target: index(target)?, xml: xml.to_string() })
        } else {
            Err(bad())
        }
    }
}

/// A replayable sequence of subtree edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditScript {
    /// The steps, in application order.
    pub ops: Vec<ScriptOp>,
}

impl EditScript {
    /// Parse the single-line `" ; "`-joined form.
    pub fn parse(input: &str) -> Result<EditScript, String> {
        let input = input.trim();
        if input.is_empty() {
            return Err("empty edit script".to_string());
        }
        let ops = input.split(" ; ").map(ScriptOp::parse).collect::<Result<_, _>>()?;
        Ok(EditScript { ops })
    }

    /// Serialize to the single-line `" ; "`-joined form.
    pub fn serialize(&self) -> String {
        self.ops.iter().map(ScriptOp::serialize).collect::<Vec<_>>().join(" ; ")
    }

    /// Apply every step in order, returning the chain of `(edited
    /// document, delta)` states — exactly what incremental index
    /// maintenance consumes. Fails on the first inapplicable step.
    pub fn apply(&self, doc: &Document) -> Result<Vec<(Document, EditDelta)>, String> {
        let mut cur = doc.clone();
        let mut steps = Vec::with_capacity(self.ops.len());
        for (i, sop) in self.ops.iter().enumerate() {
            let op = sop.to_edit_op(&cur).map_err(|e| format!("step {i}: {e}"))?;
            let (next, delta) =
                apply_op(&cur, &op).map_err(|e| format!("step {i}: edit rejected: {e}"))?;
            cur = next.clone();
            steps.push((next, delta));
        }
        Ok(steps)
    }
}

/// Steps per derived script — enough to chain patches across a renumber
/// and a rebuild fallback, small enough that the per-case cost stays
/// within the smoke budget.
pub const DERIVED_STEPS: usize = 6;

/// The deterministic script the `edited_vs_rebuilt` invariant checks for
/// a (document, query) pair: seeded by a content hash of both, so the
/// same pair always replays the same edits — shrinking a failure
/// re-derives the same script at every candidate.
pub fn derive_script(doc: &Document, gtp: &gtpquery::Gtp) -> EditScript {
    let seed = fnv1a(gtpquery::serialize(gtp).as_bytes())
        ^ fnv1a(write(doc, Indent::None).as_bytes());
    let mut rng = SmallRng::seed_from_u64(seed);
    generate(&mut rng, doc, DERIVED_STEPS)
}

/// Draw a `steps`-step script applicable to `doc`, simulating each step
/// so later ops address the document the earlier ones produced.
pub fn generate(rng: &mut SmallRng, doc: &Document, steps: usize) -> EditScript {
    let vocab = Vocabulary::from_document(doc);
    let mut fresh = 0u32;
    let mut cur = doc.clone();
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let sop = if cur.is_empty() {
            ScriptOp::Insert {
                parent: None,
                position: 0,
                xml: gen_subtree(rng, &vocab, &mut fresh),
            }
        } else {
            // Bias targets toward the root: edits adjacent to node 0 hit
            // the splice paths with no left neighbour, and deleting or
            // replacing the root itself exercises the whole-document
            // edges.
            let pick = |rng: &mut SmallRng, cur: &Document| {
                if rng.gen_bool(0.15) {
                    0
                } else {
                    rng.gen_range(0..cur.len())
                }
            };
            match rng.gen_range(0..100u32) {
                0..45 => {
                    let parent = pick(rng, &cur);
                    let arity = cur.children(NodeId::from_index(parent)).count();
                    ScriptOp::Insert {
                        parent: Some(parent),
                        position: rng.gen_range(0..=arity),
                        xml: gen_subtree(rng, &vocab, &mut fresh),
                    }
                }
                45..75 => ScriptOp::Delete { target: pick(rng, &cur) },
                _ => ScriptOp::Replace {
                    target: pick(rng, &cur),
                    xml: gen_subtree(rng, &vocab, &mut fresh),
                },
            }
        };
        match sop.to_edit_op(&cur).ok().and_then(|op| apply_op(&cur, &op).ok()) {
            Some((next, _)) => {
                cur = next;
                ops.push(sop);
            }
            None => continue,
        }
    }
    EditScript { ops }
}

/// A small random subtree (1–3 nodes) over the document's own labels —
/// plus, occasionally, a label the document has never seen, which forces
/// the path-summary edge-map miss and with it the index's rebuild
/// fallback.
fn gen_subtree(rng: &mut SmallRng, vocab: &Vocabulary, fresh: &mut u32) -> String {
    let mut name = |rng: &mut SmallRng| {
        if rng.gen_bool(1.0 / 6.0) {
            *fresh += 1;
            format!("zz{fresh}")
        } else {
            vocab.labels[rng.gen_range(0..vocab.labels.len())].clone()
        }
    };
    let l = name(rng);
    match rng.gen_range(0..100u32) {
        0..40 => format!("<{l}/>"),
        40..60 => format!("<{l}>t{}</{l}>", rng.gen_range(0..9u32)),
        60..85 => format!("<{l}><{}/></{l}>", name(rng)),
        _ => format!("<{l}><{}/><{}/></{l}>", name(rng), name(rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_serialize_round_trip() {
        let text = "insert 0 1 <x><y/></x> ; delete 3 ; replace 1 <z>t</z> ; insert - 0 <r/>";
        let script = EditScript::parse(text).unwrap();
        assert_eq!(script.ops.len(), 4);
        assert_eq!(script.ops[3], ScriptOp::Insert { parent: None, position: 0, xml: "<r/>".into() });
        assert_eq!(script.serialize(), text);
        assert_eq!(EditScript::parse(&script.serialize()).unwrap(), script);
    }

    #[test]
    fn parse_rejects_malformed_ops() {
        for bad in [
            "",
            "explode 3",
            "insert 0 1",
            "insert x 0 <a/>",
            "delete -",
            "replace 1",
            "delete 1 ; ",
        ] {
            assert!(EditScript::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn apply_chains_edits_and_reports_rejections() {
        let doc = parse("<a><b/><c/></a>").unwrap();
        let script = EditScript::parse("delete 0 ; insert - 0 <r><s/></r> ; replace 1 <t/>").unwrap();
        let steps = script.apply(&doc).unwrap();
        assert_eq!(steps.len(), 3);
        assert!(steps[0].0.is_empty(), "deleting the root empties the document");
        assert_eq!(steps[2].0.len(), 2);
        let bogus = EditScript::parse("delete 99").unwrap();
        let err = bogus.apply(&doc).unwrap_err();
        assert!(err.contains("step 0"), "{err}");
    }

    #[test]
    fn generated_scripts_apply_cleanly_and_are_deterministic() {
        let doc = parse("<a><b><c/></b><b/><d>t</d></a>").unwrap();
        for seed in 0..40 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let script = generate(&mut rng, &doc, 8);
            assert!(!script.ops.is_empty(), "seed {seed}");
            script.apply(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut rng = SmallRng::seed_from_u64(seed);
            assert_eq!(generate(&mut rng, &doc, 8), script, "seed {seed}");
            let round = EditScript::parse(&script.serialize()).unwrap();
            assert_eq!(round, script, "seed {seed}: serialization is lossless");
        }
    }

    #[test]
    fn generator_reaches_the_empty_document_edge() {
        // Long scripts over a tiny document delete the root sooner or
        // later; the step after that must be the revive insert.
        let doc = parse("<a><b/></a>").unwrap();
        let mut revived = false;
        for seed in 0..30 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let script = generate(&mut rng, &doc, 30);
            script.apply(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            revived |= script
                .ops
                .iter()
                .any(|op| matches!(op, ScriptOp::Insert { parent: None, .. }));
        }
        assert!(revived, "no script revived an empty document");
    }

    #[test]
    fn derived_scripts_depend_on_both_document_and_query() {
        let d1 = parse("<a><b/><c/></a>").unwrap();
        let d2 = parse("<a><c/><b/></a>").unwrap();
        let q1 = gtpquery::parse_twig("//a/b").unwrap();
        let q2 = gtpquery::parse_twig("//a/c").unwrap();
        let s = derive_script(&d1, &q1);
        assert_eq!(derive_script(&d1, &q1), s, "derivation is deterministic");
        assert!(derive_script(&d2, &q1) != s || derive_script(&d1, &q2) != s);
    }
}
