//! Seeded random GTP generation over a document vocabulary.
//!
//! The generator covers the full grammar of `gtpquery::parse_twig` —
//! `/` and `//` axes, wildcards, `?` optional edges, `!` non-return and
//! `@` group-return roles, OR-groups, and both value-predicate forms —
//! while guaranteeing two properties the harness depends on:
//!
//! 1. **Enumerability.** Every query passes
//!    [`QueryAnalysis::enumerable`] with at least one output column, so
//!    the naive oracle accepts it. Invalid role combinations produced by
//!    random assignment are repaired by monotonically promoting the
//!    offending nodes to [`Role::Return`] (a fixpoint; each step strictly
//!    grows the set of return nodes).
//! 2. **Lossless round-trip.** OR-groups are emitted as *adjacent*
//!    non-return leaf siblings, the one shape `gtpquery::serialize`
//!    round-trips exactly (see its module docs); members are excluded
//!    from the parent pool so they stay leaves.

use crate::vocab::Vocabulary;
use gtpquery::{Axis, Gtp, GtpBuilder, QNodeId, QueryAnalysis, Role, ValidationIssue, ValuePred};
use rand::rngs::SmallRng;
use rand::Rng;

/// Probabilities and bounds for [`generate_query`].
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Upper bound on query size (nodes); sizes are drawn uniformly from
    /// `1..=max_nodes`.
    pub max_nodes: usize,
    /// Probability the query is rooted (`/a…` instead of `//a…`).
    pub rooted_prob: f64,
    /// Probability a node test is `*` instead of a document label.
    pub wildcard_prob: f64,
    /// Probability an edge uses the `//` axis.
    pub descendant_prob: f64,
    /// Probability a non-root edge is optional (`?`).
    pub optional_prob: f64,
    /// Probability a node is assigned [`Role::NonReturn`].
    pub non_return_prob: f64,
    /// Probability a node is assigned [`Role::GroupReturn`] (when it was
    /// not already made non-return).
    pub group_return_prob: f64,
    /// Probability of emitting an OR-group pair instead of a single node
    /// (when at least two nodes of budget remain).
    pub or_pair_prob: f64,
    /// Probability a node receives a value predicate (requires the
    /// vocabulary to carry text values).
    pub value_pred_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nodes: 7,
            rooted_prob: 0.25,
            wildcard_prob: 0.15,
            descendant_prob: 0.55,
            optional_prob: 0.2,
            non_return_prob: 0.25,
            group_return_prob: 0.12,
            or_pair_prob: 0.18,
            value_pred_prob: 0.2,
        }
    }
}

fn sample_name(rng: &mut SmallRng, vocab: &Vocabulary, cfg: &GenConfig) -> String {
    if rng.gen_bool(cfg.wildcard_prob) {
        "*".to_string()
    } else {
        vocab.labels[rng.gen_range(0..vocab.labels.len())].clone()
    }
}

fn sample_role(rng: &mut SmallRng, cfg: &GenConfig) -> Role {
    if rng.gen_bool(cfg.non_return_prob) {
        Role::NonReturn
    } else if rng.gen_bool(cfg.group_return_prob) {
        Role::GroupReturn
    } else {
        Role::Return
    }
}

fn sample_axis(rng: &mut SmallRng, cfg: &GenConfig) -> Axis {
    if rng.gen_bool(cfg.descendant_prob) {
        Axis::Descendant
    } else {
        Axis::Child
    }
}

fn sample_value_pred(rng: &mut SmallRng, vocab: &Vocabulary) -> Option<ValuePred> {
    let equals = rng.gen_bool(0.5);
    if equals && !vocab.texts.is_empty() {
        Some(ValuePred::TextEquals(
            vocab.texts[rng.gen_range(0..vocab.texts.len())].clone(),
        ))
    } else if !vocab.contains.is_empty() {
        Some(ValuePred::TextContains(
            vocab.contains[rng.gen_range(0..vocab.contains.len())].clone(),
        ))
    } else {
        None
    }
}

/// Generate one random, enumerable, round-trippable GTP.
pub fn generate_query(rng: &mut SmallRng, vocab: &Vocabulary, cfg: &GenConfig) -> Gtp {
    assert!(cfg.max_nodes >= 1);
    let target = rng.gen_range(1..=cfg.max_nodes);
    let rooted = rng.gen_bool(cfg.rooted_prob);
    let mut b = GtpBuilder::new(&sample_name(rng, vocab, cfg), rooted);
    let root = b.root();
    b.role(root, sample_role(rng, cfg));

    // Nodes eligible to receive children. OR-group members are excluded
    // so they remain leaves (existence checks with adjacent siblings —
    // the serializer-safe shape).
    let mut pool = vec![root];
    let mut added = 1usize;
    while added < target {
        let parent = pool[rng.gen_range(0..pool.len())];
        if added + 2 <= target && rng.gen_bool(cfg.or_pair_prob) {
            let m1 = b.add(parent, &sample_name(rng, vocab, cfg), sample_axis(rng, cfg), false, Role::NonReturn);
            let m2 = b.add(parent, &sample_name(rng, vocab, cfg), sample_axis(rng, cfg), false, Role::NonReturn);
            b.same_or_group(&[m1, m2]);
            added += 2;
        } else {
            let id = b.add(
                parent,
                &sample_name(rng, vocab, cfg),
                sample_axis(rng, cfg),
                rng.gen_bool(cfg.optional_prob),
                sample_role(rng, cfg),
            );
            pool.push(id);
            added += 1;
        }
    }

    let mut gtp = b.build();
    // Value predicates, drawn from the document's own text payloads.
    for q in gtp.preorder() {
        if rng.gen_bool(cfg.value_pred_prob) {
            if let Some(p) = sample_value_pred(rng, vocab) {
                gtp.set_value_pred(q, Some(p));
            }
        }
    }
    repair(&mut gtp);
    gtp
}

/// Adjust roles until the query is enumerable with ≥ 1 output column.
///
/// Three fixes, applied one at a time to a fixpoint: output inside an
/// OR-group member is demoted (disjunctive branches are existence
/// checks); a non-return node with multiple output branches or a
/// group-return node with output below is promoted to [`Role::Return`];
/// a query with no output columns gets a return root. The generator
/// itself only ever needs the promotions (its OR members are born as
/// non-return leaves), but the demotion makes `repair` total over
/// arbitrary role assignments.
fn repair(gtp: &mut Gtp) {
    for _ in 0..=4 * gtp.len() + 4 {
        let analysis = QueryAnalysis::new(gtp);
        if let Some(m) = analysis.issues().iter().find_map(|i| match i {
            ValidationIssue::OrBranchWithOutput(q) => Some(*q),
            _ => None,
        }) {
            let mut stack = vec![m];
            while let Some(q) = stack.pop() {
                gtp.set_role(q, Role::NonReturn);
                stack.extend(gtp.children(q).iter().copied());
            }
            continue;
        }
        let offending = analysis.issues().iter().find_map(|i| match i {
            ValidationIssue::NonReturnWithMultipleOutputBranches(q)
            | ValidationIssue::GroupWithOutputBelow(q) => Some(*q),
            _ => None,
        });
        if let Some(q) = offending {
            gtp.set_role(q, Role::Return);
            continue;
        }
        if analysis.columns().is_empty() {
            gtp.set_role(gtp.root(), Role::Return);
            continue;
        }
        return;
    }
    unreachable!("role repair did not converge: {gtp}");
}

/// All siblings sharing `q`'s OR-group (including `q`).
pub(crate) fn group_members(gtp: &Gtp, q: QNodeId) -> Vec<QNodeId> {
    match gtp.parent(q) {
        None => vec![q],
        Some(p) => gtp
            .children(p)
            .iter()
            .copied()
            .filter(|&c| gtp.or_group(c) == gtp.or_group(q))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xmldom::parse;

    fn vocab() -> Vocabulary {
        let doc = parse("<dblp><paper>twig joins</paper><year>2006</year><a><b/></a></dblp>")
            .unwrap();
        Vocabulary::from_document(&doc)
    }

    #[test]
    fn queries_are_enumerable_and_round_trip() {
        let v = vocab();
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..300 {
            let g = generate_query(&mut rng, &v, &cfg);
            let a = QueryAnalysis::new(&g);
            assert!(a.enumerable() && !a.columns().is_empty(), "{g}");
            let s = gtpquery::serialize(&g);
            let re = gtpquery::parse_twig(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(gtpquery::structurally_equal(&g, &re), "{s}");
        }
    }

    #[test]
    fn or_members_stay_non_return_leaves() {
        let v = vocab();
        let cfg = GenConfig { or_pair_prob: 0.9, max_nodes: 8, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut saw_group = false;
        for _ in 0..100 {
            let g = generate_query(&mut rng, &v, &cfg);
            for q in g.preorder() {
                if group_members(&g, q).len() > 1 {
                    saw_group = true;
                    assert!(g.is_leaf(q));
                    assert_eq!(g.role(q), Role::NonReturn);
                    assert!(!g.edge(q).unwrap().optional);
                }
            }
        }
        assert!(saw_group);
    }

    #[test]
    fn deterministic_per_seed() {
        let v = vocab();
        let cfg = GenConfig::default();
        let a: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..20).map(|_| gtpquery::serialize(&generate_query(&mut rng, &v, &cfg))).collect()
        };
        let b: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..20).map(|_| gtpquery::serialize(&generate_query(&mut rng, &v, &cfg))).collect()
        };
        assert_eq!(a, b);
    }
}
