//! The seeded fuzzing loop shared by the smoke tests and the
//! `twigfuzz` binary.
//!
//! A session walks a set of dataset generators, derives a fresh small
//! document every few cases, generates queries over the document's own
//! vocabulary, and runs every metamorphic invariant on each pair.
//! Failures are shrunk and packaged as [`CaseFile`]s ready to drop into
//! `corpus/`. Progress is reported through `twigobs`
//! ([`twigobs::Counter::FuzzCases`] / `FuzzChecks` / `FuzzFailures`),
//! so a binary run produces the same JSON sidecar shape as an
//! experiment run.

use crate::corpus::{fnv1a, CaseFile};
use crate::edits::derive_script;
use crate::gen::{generate_query, GenConfig};
use crate::invariants::{check, check_case, CaseOutcome, Invariant};
use crate::shrink::{shrink, shrink_script};
use crate::vocab::Vocabulary;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use xmldom::Document;
use xmlgen::{
    generate_dblp, generate_random_tree, generate_treebank, generate_xmark, DblpConfig,
    RandomTreeConfig, TreebankConfig, XmarkConfig,
};

/// The document generators a session can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Unstructured random labelled trees (with text payloads).
    Random,
    /// Wide, shallow bibliography records.
    Dblp,
    /// Deep recursive parse trees.
    Treebank,
    /// The XMark auction-site schema subset.
    Xmark,
}

impl Dataset {
    /// Every dataset, in report order.
    pub const ALL: [Dataset; 4] = [Dataset::Random, Dataset::Dblp, Dataset::Treebank, Dataset::Xmark];

    /// Stable lowercase name (CLI argument and report key).
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Random => "random",
            Dataset::Dblp => "dblp",
            Dataset::Treebank => "treebank",
            Dataset::Xmark => "xmark",
        }
    }

    /// Inverse of [`Dataset::name`].
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Generate a fuzz-sized document (≈ 60–200 elements: large enough
    /// for recursive nestings, small enough that the naive oracle stays
    /// cheap in debug builds).
    pub fn generate(self, seed: u64) -> Document {
        match self {
            Dataset::Random => generate_random_tree(&RandomTreeConfig {
                nodes: 90,
                alphabet: 3,
                max_depth: 9,
                depth_bias: 55,
                seed,
                text_vocab: 3,
            }),
            Dataset::Dblp => generate_dblp(&DblpConfig { inproceedings: 5, articles: 4, seed }),
            Dataset::Treebank => {
                generate_treebank(&TreebankConfig { sentences: 6, max_depth: 9, seed })
            }
            Dataset::Xmark => generate_xmark(&XmarkConfig {
                scale: 1,
                base_persons: 5,
                base_open_auctions: 3,
                base_closed_auctions: 2,
                base_items_per_region: 1,
                seed,
            }),
        }
    }
}

/// Configuration for [`run_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Master seed; every document and query derives from it.
    pub seed: u64,
    /// Number of (document, query) pairs per dataset.
    pub cases_per_dataset: usize,
    /// Datasets to draw documents from.
    pub datasets: Vec<Dataset>,
    /// Query-generator tuning.
    pub gen: GenConfig,
    /// Minimize failing pairs before reporting them.
    pub shrink_failures: bool,
    /// Restrict the session to one invariant (`None` runs all eleven).
    /// Used by the dedicated CI edit-script smoke, which needs a
    /// guaranteed count of `edited_vs_rebuilt` checks without paying
    /// for the other ten on every pair.
    pub only: Option<Invariant>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            seed: 0,
            cases_per_dataset: 100,
            datasets: Dataset::ALL.to_vec(),
            gen: GenConfig::default(),
            shrink_failures: true,
            only: None,
        }
    }
}

/// One invariant violation found by a session.
#[derive(Debug, Clone)]
pub struct FailureCase {
    /// Dataset whose document triggered the failure.
    pub dataset: Dataset,
    /// The violated invariant.
    pub invariant: Invariant,
    /// The failure message from the harness.
    pub message: String,
    /// The (shrunk) pair, ready to write into `corpus/`.
    pub case: CaseFile,
}

/// Aggregate results of a session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Pairs exercised.
    pub cases: usize,
    /// Invariant checks that passed.
    pub passed: usize,
    /// Invariant checks skipped for shape reasons.
    pub skipped: usize,
    /// Violations, shrunk and packaged.
    pub failures: Vec<FailureCase>,
}

/// How many cases share one generated document before a fresh one is
/// derived (amortizes generation without starving shape diversity).
const CASES_PER_DOC: usize = 8;

/// Run a fuzzing session. Deterministic for a given configuration.
pub fn run_session(cfg: &SessionConfig) -> SessionReport {
    let mut report = SessionReport::default();
    for &dataset in &cfg.datasets {
        let ds_salt = fnv1a(dataset.name().as_bytes());
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ ds_salt);
        let mut doc: Option<(Document, Vocabulary)> = None;
        for i in 0..cfg.cases_per_dataset {
            if i % CASES_PER_DOC == 0 || doc.is_none() {
                let d = dataset.generate(
                    cfg.seed ^ ds_salt.wrapping_add((i / CASES_PER_DOC) as u64 + 1),
                );
                let v = Vocabulary::from_document(&d);
                doc = Some((d, v));
            }
            let (d, v) = doc.as_ref().expect("document generated above");
            let gtp = generate_query(&mut rng, v, &cfg.gen);

            twigobs::bump(twigobs::Counter::FuzzCases);
            report.cases += 1;
            let out = match cfg.only {
                None => check_case(d, &gtp),
                Some(inv) => {
                    let mut out = CaseOutcome::default();
                    match check(d, &gtp, inv) {
                        crate::invariants::Outcome::Passed => out.passed += 1,
                        crate::invariants::Outcome::Skipped(_) => out.skipped += 1,
                        crate::invariants::Outcome::Failed(msg) => {
                            out.failures.push((inv, msg))
                        }
                    }
                    out
                }
            };
            report.passed += out.passed;
            report.skipped += out.skipped;
            twigobs::add(
                twigobs::Counter::FuzzChecks,
                (out.passed + out.failures.len()) as u64,
            );
            for (inv, message) in out.failures {
                twigobs::bump(twigobs::Counter::FuzzFailures);
                let (sdoc, sgtp) = if cfg.shrink_failures {
                    shrink(d.clone(), gtp.clone(), inv)
                } else {
                    (d.clone(), gtp.clone())
                };
                let note = format!(
                    "found by twigfuzz: dataset={} seed={:#x} case={}",
                    dataset.name(),
                    cfg.seed,
                    i
                );
                let mut case = CaseFile::from_failure(&sdoc, &sgtp, inv, &note);
                if inv == Invariant::EditedVsRebuilt {
                    // Pin the exact script: replay must not depend on
                    // the derivation staying stable across releases.
                    let script = derive_script(&sdoc, &sgtp);
                    let script = if cfg.shrink_failures {
                        shrink_script(&sdoc, &sgtp, script)
                    } else {
                        script
                    };
                    case.edits = Some(script.serialize());
                }
                report.failures.push(FailureCase {
                    dataset,
                    invariant: inv,
                    message,
                    case,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_round_trip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn documents_are_fuzz_sized() {
        for d in Dataset::ALL {
            let doc = d.generate(3);
            assert!(
                (20..=400).contains(&doc.len()),
                "{}: {} elements",
                d.name(),
                doc.len()
            );
        }
    }

    #[test]
    fn only_filter_runs_exactly_one_invariant_per_pair() {
        let cfg = SessionConfig {
            cases_per_dataset: 8,
            datasets: vec![Dataset::Dblp],
            only: Some(Invariant::EditedVsRebuilt),
            ..Default::default()
        };
        let r = run_session(&cfg);
        assert_eq!(r.cases, 8);
        assert_eq!(r.passed + r.skipped, 8, "one check per pair, no more");
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.passed > 0, "at least one pair must exercise an edit script");
    }

    #[test]
    fn tiny_session_is_clean_and_deterministic() {
        let cfg = SessionConfig {
            cases_per_dataset: 10,
            datasets: vec![Dataset::Random, Dataset::Dblp],
            ..Default::default()
        };
        let a = run_session(&cfg);
        assert_eq!(a.cases, 20);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert!(a.passed > 0);
        let b = run_session(&cfg);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.skipped, b.skipped);
    }
}
