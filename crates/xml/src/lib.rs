//! # xmldom — XML substrate for the Twig²Stack reproduction
//!
//! This crate provides everything the twig-join algorithms consume:
//!
//! * [`label`] — interned element labels;
//! * [`region`] — the `[left, right], level` region encoding (paper §2) with
//!   O(1) ancestor/parent predicates;
//! * [`document`] — an arena DOM assigned region encodings at build time;
//! * [`parser`] / [`writer`] — a from-scratch XML parser and serializer;
//! * [`event`] — SAX-style event streams from a DOM or from raw text
//!   (pre-order starts / post-order ends — the paper's streaming model, §7);
//! * [`stats`] — document statistics (paper Figure 14).
//!
//! No external dependencies.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod edit;
pub mod event;
pub mod label;
pub mod parser;
pub mod region;
pub mod stats;
pub mod writer;

pub use document::{BuildError, Document, DocumentBuilder, NodeId};
pub use edit::{apply_op, EditDelta, EditError, EditOp, RENUMBER_STRIDE};
pub use event::{DocEvents, Event, EventParser};
pub use label::{Label, LabelTable};
pub use parser::{parse, ParseError, ParseErrorKind};
pub use region::Region;
pub use stats::DocStats;
pub use writer::{write, Indent};
