//! Document statistics — the quantities reported in the paper's Figure 14.

use crate::document::Document;
use crate::writer::{write, Indent};

/// Summary statistics of one document, as in paper Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    /// Number of element nodes.
    pub nodes: usize,
    /// Number of distinct element labels.
    pub distinct_labels: usize,
    /// Maximum element depth (root = 1).
    pub max_depth: u32,
    /// Mean element depth.
    pub avg_depth: f64,
    /// Serialized size in bytes (compact form).
    pub serialized_bytes: usize,
    /// `(label name, occurrence count)` sorted by descending count.
    pub label_histogram: Vec<(String, usize)>,
}

impl DocStats {
    /// Compute statistics for `doc`. Serializes the document once to obtain
    /// its byte size; for very large documents prefer
    /// [`DocStats::compute_without_size`].
    pub fn compute(doc: &Document) -> Self {
        let mut s = Self::compute_without_size(doc);
        s.serialized_bytes = write(doc, Indent::None).len();
        s
    }

    /// Compute all statistics except `serialized_bytes` (left as 0).
    pub fn compute_without_size(doc: &Document) -> Self {
        let (max_depth, avg_depth) = doc.depth_stats();
        let mut counts = vec![0usize; doc.labels().len()];
        for n in doc.iter() {
            counts[doc.label(n).index()] += 1;
        }
        let mut label_histogram: Vec<(String, usize)> = doc
            .labels()
            .iter()
            .map(|(l, name)| (name.to_string(), counts[l.index()]))
            .collect();
        label_histogram.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        DocStats {
            nodes: doc.len(),
            distinct_labels: doc.labels().len(),
            max_depth,
            avg_depth,
            serialized_bytes: 0,
            label_histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn stats_of_small_document() {
        let doc = parse("<a><b><c/><c/></b><b/></a>").unwrap();
        let s = DocStats::compute(&doc);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.distinct_labels, 3);
        assert_eq!(s.max_depth, 3);
        assert!((s.avg_depth - (1 + 2 + 3 + 3 + 2) as f64 / 5.0).abs() < 1e-9);
        assert_eq!(s.serialized_bytes, "<a><b><c/><c/></b><b/></a>".len());
        assert_eq!(s.label_histogram[0], ("b".to_string(), 2));
    }

    #[test]
    fn histogram_sorted_desc_then_name() {
        let doc = parse("<r><x/><y/><x/><y/></r>").unwrap();
        let s = DocStats::compute_without_size(&doc);
        let names: Vec<&str> = s.label_histogram.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "r"]);
        assert_eq!(s.serialized_bytes, 0);
    }
}
