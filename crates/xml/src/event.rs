//! SAX-style event streams.
//!
//! Both bottom-up matching (Twig²Stack, which acts on element *closes*) and
//! top-down matching (PathStack, which acts on element *opens*) can be driven
//! by one linear pass of [`Event`]s. Events can come from an in-memory
//! [`Document`] or directly from raw XML text that is never materialized as
//! a DOM — the paper's streaming scenario (§7): start tags arrive in
//! pre-order, end tags in post-order.
//!
//! A [`Event::Start`] cannot carry the element's `right` endpoint (it is not
//! known yet in a stream); the full [`Region`] is available on
//! [`Event::End`].

use crate::document::{Document, NodeId};
use crate::label::{Label, LabelTable};
use crate::parser::{ParseError, ParseErrorKind, Scanner, Token};
use crate::region::Region;

/// One parse event. The `elem` ids are pre-order ordinals: for events
/// generated from a [`Document`] they coincide with its [`NodeId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An element opened. `left` and `level` are final; `right` is unknown.
    Start {
        /// Pre-order ordinal of the element.
        elem: NodeId,
        /// Interned tag name.
        label: Label,
        /// Start position in the global tag counter.
        left: u32,
        /// Depth (root element = 1).
        level: u32,
    },
    /// An element closed; its complete region encoding is now known.
    End {
        /// Pre-order ordinal of the element.
        elem: NodeId,
        /// Interned tag name.
        label: Label,
        /// Complete region encoding.
        region: Region,
    },
}

impl Event {
    /// The element this event belongs to.
    pub fn elem(&self) -> NodeId {
        match *self {
            Event::Start { elem, .. } | Event::End { elem, .. } => elem,
        }
    }

    /// The element's label.
    pub fn label(&self) -> Label {
        match *self {
            Event::Start { label, .. } | Event::End { label, .. } => label,
        }
    }
}

/// Iterator of [`Event`]s over an in-memory [`Document`].
///
/// Emits `Start` in pre-order and `End` in post-order, exactly as a SAX
/// parse of the serialized document would. Allocation-free: the walk uses
/// the document's child/sibling/parent links directly.
pub struct DocEvents<'a> {
    doc: &'a Document,
    /// The next event to emit: `(node, is_end)`, or `None` when done.
    next: Option<(NodeId, bool)>,
    /// Subtree scope: the walk ends after emitting this node's `End`
    /// (`None` = whole document).
    scope: Option<NodeId>,
}

impl<'a> DocEvents<'a> {
    /// Events for the whole document.
    pub fn new(doc: &'a Document) -> Self {
        let next = if doc.is_empty() {
            None
        } else {
            Some((doc.root(), false))
        };
        DocEvents { doc, next, scope: None }
    }

    /// Events for the subtree rooted at `root` only: its `Start` first,
    /// its `End` last, nothing outside. Used by the parallel evaluator to
    /// feed one document chunk to a worker.
    pub fn subtree(doc: &'a Document, root: NodeId) -> Self {
        DocEvents { doc, next: Some((root, false)), scope: Some(root) }
    }
}

impl Iterator for DocEvents<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        let (node, closing) = self.next?;
        // Compute the successor: after a Start, descend to the first
        // child (or close this node); after an End, move to the next
        // sibling (or close the parent).
        self.next = if !closing {
            match self.doc.first_child(node) {
                Some(c) => Some((c, false)),
                None => Some((node, true)),
            }
        } else if self.scope == Some(node) {
            None
        } else {
            match self.doc.next_sibling(node) {
                Some(s) => Some((s, false)),
                None => self.doc.parent(node).map(|p| (p, true)),
            }
        };
        Some(if closing {
            // One element fully delivered to the consumer: this is the
            // "elements scanned" unit of the paper's evaluation.
            twigobs::bump(twigobs::Counter::ElementsScanned);
            Event::End {
                elem: node,
                label: self.doc.label(node),
                region: self.doc.region(node),
            }
        } else {
            let r = self.doc.region(node);
            Event::Start {
                elem: node,
                label: self.doc.label(node),
                left: r.left,
                level: r.level,
            }
        })
    }
}

/// Streaming event parser over raw XML text: produces [`Event`]s without
/// ever building a DOM, interning labels into its own [`LabelTable`].
pub struct EventParser<'a> {
    scanner: Scanner<'a>,
    labels: LabelTable,
    /// Open elements: (ordinal, label, left, level).
    open: Vec<(u32, Label, u32)>,
    counter: u32,
    next_ordinal: u32,
    /// A self-closing tag produces a Start immediately and queues its End.
    pending_end: Option<Event>,
    done: bool,
}

impl<'a> EventParser<'a> {
    /// Start streaming over `input`.
    pub fn new(input: &'a str) -> Self {
        EventParser {
            scanner: Scanner::new(input.as_bytes()),
            labels: LabelTable::new(),
            open: Vec::new(),
            counter: 0,
            next_ordinal: 0,
            pending_end: None,
            done: false,
        }
    }

    /// The labels interned so far (complete once the stream is exhausted).
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Consume the parser, returning its label table.
    pub fn into_labels(self) -> LabelTable {
        self.labels
    }

    /// Pull the next event.
    #[allow(clippy::should_implement_trait)] // fallible iterator
    pub fn next_event(&mut self) -> Result<Option<Event>, ParseError> {
        if let Some(e) = self.pending_end.take() {
            twigobs::bump(twigobs::Counter::ElementsScanned);
            return Ok(Some(e));
        }
        if self.done {
            return Ok(None);
        }
        loop {
            let Some(tok) = self.scanner.next_token()? else {
                if !self.open.is_empty() {
                    return Err(ParseError {
                        offset: self.scanner.pos,
                        kind: ParseErrorKind::UnexpectedEof,
                    });
                }
                self.done = true;
                return Ok(None);
            };
            match tok {
                Token::StartTag { name, self_closing, .. } => {
                    let label = self.labels.intern(&name);
                    self.counter += 1;
                    let left = self.counter;
                    let level = self.open.len() as u32 + 1;
                    let elem = NodeId::from_index(self.next_ordinal as usize);
                    self.next_ordinal += 1;
                    let start = Event::Start { elem, label, left, level };
                    if self_closing {
                        self.counter += 1;
                        self.pending_end = Some(Event::End {
                            elem,
                            label,
                            region: Region::new(left, self.counter, level),
                        });
                    } else {
                        self.open.push((elem.index() as u32, label, left));
                    }
                    return Ok(Some(start));
                }
                Token::EndTag { name } => {
                    let (ord, label, left) = self.open.pop().ok_or(ParseError {
                        offset: self.scanner.pos,
                        kind: ParseErrorKind::Malformed("unmatched end tag".into()),
                    })?;
                    if self.labels.name(label) != name {
                        return Err(ParseError {
                            offset: self.scanner.pos,
                            kind: ParseErrorKind::MismatchedTag {
                                expected: self.labels.name(label).to_string(),
                                found: name,
                            },
                        });
                    }
                    self.counter += 1;
                    let level = self.open.len() as u32 + 1;
                    twigobs::bump(twigobs::Counter::ElementsScanned);
                    return Ok(Some(Event::End {
                        elem: NodeId::from_index(ord as usize),
                        label,
                        region: Region::new(left, self.counter, level),
                    }));
                }
                Token::Text(_) => continue, // structure-only stream
            }
        }
    }

    /// Drain the stream into a vector (convenience for tests/tools).
    pub fn collect_events(mut self) -> Result<(Vec<Event>, LabelTable), ParseError> {
        let mut events = Vec::new();
        while let Some(e) = self.next_event()? {
            events.push(e);
        }
        Ok((events, self.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "<a><b><c/></b><d/></a>";

    #[test]
    fn doc_events_are_balanced_and_ordered() {
        let doc = parse(SRC).unwrap();
        let events: Vec<Event> = DocEvents::new(&doc).collect();
        assert_eq!(events.len(), 2 * doc.len());
        let mut depth = 0i32;
        let mut last_left = 0;
        for e in &events {
            match e {
                Event::Start { left, .. } => {
                    depth += 1;
                    assert!(*left > last_left);
                    last_left = *left;
                }
                Event::End { .. } => depth -= 1,
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn subtree_events_cover_exactly_the_subtree() {
        let doc = parse(SRC).unwrap();
        // The <b> subtree: b, c.
        let b = doc.first_child(doc.root()).unwrap();
        let events: Vec<Event> = DocEvents::subtree(&doc, b).collect();
        let names: Vec<(&str, bool)> = events
            .iter()
            .map(|e| {
                (doc.labels().name(e.label()), matches!(e, Event::End { .. }))
            })
            .collect();
        assert_eq!(
            names,
            vec![("b", false), ("c", false), ("c", true), ("b", true)]
        );
        // A leaf subtree emits exactly its own Start/End pair.
        let d = doc.next_sibling(b).unwrap();
        let leaf: Vec<Event> = DocEvents::subtree(&doc, d).collect();
        assert_eq!(leaf.len(), 2);
        assert_eq!(leaf[0].elem(), d);
        assert_eq!(leaf[1].elem(), d);
        // The root subtree equals the whole document stream.
        let whole: Vec<Event> = DocEvents::new(&doc).collect();
        let rooted: Vec<Event> = DocEvents::subtree(&doc, doc.root()).collect();
        assert_eq!(whole, rooted);
    }

    #[test]
    fn streaming_matches_dom_events() {
        let doc = parse(SRC).unwrap();
        let dom_events: Vec<Event> = DocEvents::new(&doc).collect();
        let (stream_events, labels) = EventParser::new(SRC).collect_events().unwrap();
        assert_eq!(dom_events.len(), stream_events.len());
        for (d, s) in dom_events.iter().zip(&stream_events) {
            // Label tables may intern in different orders; compare by name.
            match (d, s) {
                (
                    Event::Start { elem: e1, left: l1, level: v1, label: la1 },
                    Event::Start { elem: e2, left: l2, level: v2, label: la2 },
                ) => {
                    assert_eq!(e1, e2);
                    assert_eq!(l1, l2);
                    assert_eq!(v1, v2);
                    assert_eq!(doc.labels().name(*la1), labels.name(*la2));
                }
                (
                    Event::End { elem: e1, region: r1, .. },
                    Event::End { elem: e2, region: r2, .. },
                ) => {
                    assert_eq!(e1, e2);
                    assert_eq!(r1, r2);
                }
                _ => panic!("event kind mismatch"),
            }
        }
    }

    #[test]
    fn end_events_arrive_in_postorder() {
        let doc = parse(SRC).unwrap();
        let ends: Vec<NodeId> = DocEvents::new(&doc)
            .filter_map(|e| match e {
                Event::End { elem, .. } => Some(elem),
                _ => None,
            })
            .collect();
        // Post-order of <a><b><c/></b><d/></a> = c, b, d, a.
        let names: Vec<&str> = ends.iter().map(|&n| doc.tag_name(n)).collect();
        assert_eq!(names, vec!["c", "b", "d", "a"]);
    }

    #[test]
    fn streaming_rejects_mismatched_tags() {
        let mut p = EventParser::new("<a><b></a></b>");
        let mut err = None;
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err.unwrap().kind,
            ParseErrorKind::MismatchedTag { .. }
        ));
    }

    #[test]
    fn streaming_rejects_truncated_document() {
        let mut p = EventParser::new("<a><b>");
        let mut err = None;
        loop {
            match p.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err.unwrap().kind, ParseErrorKind::UnexpectedEof));
    }
}
