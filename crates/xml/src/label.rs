//! Interned element labels.
//!
//! Twig matching never compares label *strings* on the hot path: every tag
//! name is interned once into a dense `u32` id when the document (or query)
//! is built, and all subsequent comparisons are integer equality. A
//! [`LabelTable`] owns the mapping in both directions.

use std::collections::HashMap;
use std::fmt;

/// A dense, interned identifier for an element tag name.
///
/// `Label`s are only meaningful relative to the [`LabelTable`] that produced
/// them. Two labels from the same table are equal iff their tag names are
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)] // a bare u32: castable inside `#[repr(C)]` index records
pub struct Label(u32);

impl Label {
    /// Raw index into the owning [`LabelTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a label from a raw index.
    ///
    /// Only indices previously returned by [`Label::index`] on labels from
    /// the same table are valid.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        Label(index as u32)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional string ↔ [`Label`] interner.
///
/// Lookup by name is hash-based; lookup by label is a direct vector index.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    names: Vec<Box<str>>,
    by_name: HashMap<Box<str>, Label>,
}

impl LabelTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its label. Idempotent: the same name always
    /// maps to the same label.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let label = Label(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, label);
        label
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// The tag name behind `label`.
    ///
    /// # Panics
    /// Panics if `label` did not originate from this table.
    pub fn name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(label, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("author");
        let b = t.intern("title");
        assert_ne!(a, b);
        assert_eq!(t.intern("author"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = LabelTable::new();
        assert_eq!(t.get("x"), None);
        let x = t.intern("x");
        assert_eq!(t.get("x"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn name_round_trips() {
        let mut t = LabelTable::new();
        let labels: Vec<Label> = ["a", "b", "c", "dblp"].iter().map(|n| t.intern(n)).collect();
        for (l, n) in labels.iter().zip(["a", "b", "c", "dblp"]) {
            assert_eq!(t.name(*l), n);
        }
    }

    #[test]
    fn iter_preserves_interning_order() {
        let mut t = LabelTable::new();
        t.intern("z");
        t.intern("y");
        t.intern("x");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["z", "y", "x"]);
    }

    #[test]
    fn index_round_trips() {
        let mut t = LabelTable::new();
        let l = t.intern("site");
        assert_eq!(Label::from_index(l.index()), l);
    }

    #[test]
    fn empty_table() {
        let t = LabelTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
