//! Region encoding of document elements.
//!
//! Each element is identified by a `[left, right], level` triple (paper §2):
//! `left` is assigned when the element's start tag is seen, `right` when its
//! end tag is seen, from one global counter that increments on every tag.
//! Consequently for elements `a`, `d`:
//!
//! * `a` is an **ancestor** of `d` iff `a.left < d.left && d.right < a.right`;
//! * `a` is the **parent** of `d` iff additionally `a.level + 1 == d.level`.
//!
//! These two O(1) predicates are the only structural tests any of the join
//! algorithms in this workspace perform.

use std::cmp::Ordering;
use std::fmt;

/// Region encoding `[left, right], level` of one document element.
///
/// Ordering is by `left` (document order of start tags), which for regions
/// from a single document is a total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)] // three little u32 fields in declaration order: castable from index bytes
pub struct Region {
    /// Position of the start tag in the global tag sequence.
    pub left: u32,
    /// Position of the end tag in the global tag sequence. Always `> left`.
    pub right: u32,
    /// Depth in the document tree; the document root element has level 1.
    pub level: u32,
}

impl Region {
    /// Construct a region. Debug-asserts `left < right` and `level >= 1`.
    #[inline]
    pub fn new(left: u32, right: u32, level: u32) -> Self {
        debug_assert!(left < right, "region must have left < right");
        debug_assert!(level >= 1, "document elements start at level 1");
        Region { left, right, level }
    }

    /// True iff `self` is a proper ancestor of `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Region) -> bool {
        self.left < other.left && other.right < self.right
    }

    /// True iff `self` is the parent of `other`.
    #[inline]
    pub fn is_parent_of(&self, other: &Region) -> bool {
        self.is_ancestor_of(other) && self.level + 1 == other.level
    }

    /// True iff `self` is `other` or a proper ancestor of it.
    #[inline]
    pub fn is_ancestor_or_self(&self, other: &Region) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// True iff the two elements are on a common root-to-leaf path.
    #[inline]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.is_ancestor_or_self(other) || other.is_ancestor_of(self)
    }

    /// True iff `self` starts (and therefore also ends) strictly before
    /// `other` without containing it — i.e. it precedes `other` in document
    /// order and is structurally unrelated.
    #[inline]
    pub fn precedes(&self, other: &Region) -> bool {
        self.right < other.left
    }

    /// True iff an axis requirement holds from `self` (the upper element)
    /// to `other` (the lower element).
    #[inline]
    pub fn satisfies_axis(&self, other: &Region, parent_child: bool) -> bool {
        if parent_child {
            self.is_parent_of(other)
        } else {
            self.is_ancestor_of(other)
        }
    }
}

impl PartialOrd for Region {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Region {
    /// Document order of start tags; ties broken by `right` so that the
    /// order is total even across regions of distinct documents.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        (self.left, self.right).cmp(&(other.left, other.right))
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}],{}", self.left, self.right, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The running example of paper Figure 1 (a fragment): a1=[1,30],1 with
    // children; numbers here are illustrative but preserve the invariants.
    fn r(l: u32, rr: u32, lev: u32) -> Region {
        Region::new(l, rr, lev)
    }

    #[test]
    fn ancestor_descendant() {
        let a = r(1, 30, 1);
        let b = r(2, 9, 2);
        let d = r(3, 4, 3);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&d));
        assert!(b.is_ancestor_of(&d));
        assert!(!d.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        // not an ancestor of itself
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_ancestor_or_self(&a));
    }

    #[test]
    fn parent_requires_level_gap_of_one() {
        let a = r(1, 30, 1);
        let b = r(2, 9, 2);
        let d = r(3, 4, 3);
        assert!(a.is_parent_of(&b));
        assert!(!a.is_parent_of(&d)); // grandchild
        assert!(b.is_parent_of(&d));
    }

    #[test]
    fn siblings_are_unrelated() {
        let b1 = r(2, 9, 2);
        let b2 = r(10, 17, 2);
        assert!(!b1.is_ancestor_of(&b2));
        assert!(!b2.is_ancestor_of(&b1));
        assert!(!b1.overlaps(&b2));
        assert!(b1.precedes(&b2));
        assert!(!b2.precedes(&b1));
    }

    #[test]
    fn document_order() {
        let mut v = [r(10, 17, 2), r(1, 30, 1), r(2, 9, 2)];
        v.sort();
        assert_eq!(v[0].left, 1);
        assert_eq!(v[1].left, 2);
        assert_eq!(v[2].left, 10);
    }

    #[test]
    fn satisfies_axis_dispatch() {
        let a = r(1, 30, 1);
        let b = r(2, 9, 2);
        let d = r(3, 4, 3);
        assert!(a.satisfies_axis(&b, true));
        assert!(a.satisfies_axis(&d, false));
        assert!(!a.satisfies_axis(&d, true));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn invalid_region_panics_in_debug() {
        let _ = Region::new(5, 5, 1);
    }
}
