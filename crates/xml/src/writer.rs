//! XML serialization — the inverse of [`crate::parser::parse`].

use crate::document::{Document, NodeId};
use std::fmt::Write as _;

/// Serialization style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Indent {
    /// Everything on one line, no inter-element whitespace.
    None,
    /// Newline per element, indented by this many spaces per level.
    Spaces(usize),
}

/// Serialize `doc` to an XML string.
///
/// Round-trips with [`crate::parser::parse`] for documents whose text
/// contains no leading/trailing whitespace runs (the parser drops
/// whitespace-only text).
pub fn write(doc: &Document, indent: Indent) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_node(doc, doc.root(), indent, 0, &mut out);
    out
}

fn write_node(doc: &Document, node: NodeId, indent: Indent, depth: usize, out: &mut String) {
    if let Indent::Spaces(n) = indent {
        if depth > 0 {
            out.push('\n');
        }
        for _ in 0..depth * n {
            out.push(' ');
        }
    }
    let name = doc.tag_name(node);
    out.push('<');
    out.push_str(name);
    for (k, v) in doc.attributes(node) {
        let _ = write!(out, " {}=\"{}\"", k, escape_attr(v));
    }
    let text = doc.text(node);
    let has_children = doc.first_child(node).is_some();
    if text.is_none() && !has_children {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(t) = text {
        out.push_str(&escape_text(t));
    }
    for child in doc.children(node) {
        write_node(doc, child, indent, depth + 1, out);
    }
    if has_children {
        if let Indent::Spaces(n) = indent {
            out.push('\n');
            for _ in 0..depth * n {
                out.push(' ');
            }
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// Escape character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quote context).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;
    use crate::parser::parse;

    #[test]
    fn writes_compact() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(write(&doc, Indent::None), "<a><b><c/></b><b/></a>");
    }

    #[test]
    fn round_trip_with_attrs_and_text() {
        let src = r#"<book year="2006"><title>T &amp; S</title><author>x</author></book>"#;
        let doc = parse(src).unwrap();
        let emitted = write(&doc, Indent::None);
        let doc2 = parse(&emitted).unwrap();
        assert_eq!(doc2.len(), doc.len());
        assert_eq!(doc2.attribute(doc2.root(), "year"), Some("2006"));
        let title = doc2.first_child(doc2.root()).unwrap();
        assert_eq!(doc2.text(title), Some("T & S"));
    }

    #[test]
    fn indented_output_parses_back() {
        let mut b = DocumentBuilder::new();
        b.element("a", |b| {
            b.element("b", |b| b.leaf("c", "hi"))?;
            b.leaf("d", "")
        })
        .unwrap();
        let doc = b.finish().unwrap();
        let pretty = write(&doc, Indent::Spaces(2));
        assert!(pretty.contains('\n'));
        let doc2 = parse(&pretty).unwrap();
        assert_eq!(doc2.len(), 4);
    }

    #[test]
    fn attr_escaping() {
        let mut b = DocumentBuilder::new();
        b.start_element("a").unwrap();
        b.attr("v", "a\"b<c&d").unwrap();
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        let s = write(&doc, Indent::None);
        assert_eq!(s, r#"<a v="a&quot;b&lt;c&amp;d"/>"#);
        let doc2 = parse(&s).unwrap();
        assert_eq!(doc2.attribute(doc2.root(), "v"), Some("a\"b<c&d"));
    }
}
