//! A from-scratch, dependency-free XML parser.
//!
//! Supports the subset of XML needed for the datasets in this workspace:
//! elements, attributes (single or double quoted), character data, CDATA
//! sections, comments, processing instructions, an XML declaration, a
//! DOCTYPE (skipped, without internal subset), and the five predefined
//! entities plus decimal/hex character references.
//!
//! The parser is a hand-rolled recursive scanner over bytes; it produces
//! either a [`Document`] (via [`parse`]) or a stream of
//! [`crate::event::Event`]s (via [`crate::event::EventParser`]).

use crate::document::{BuildError, Document, DocumentBuilder};
use std::fmt;

/// Position-annotated parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// Categories of XML syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A tag or construct was malformed; message describes it.
    Malformed(String),
    /// `</b>` closed `<a>`.
    MismatchedTag {
        /// Name of the element that was open.
        expected: String,
        /// Name in the offending end tag.
        found: String,
    },
    /// Structural error from the document builder.
    Build(BuildError),
    /// An unknown `&entity;`.
    UnknownEntity(String),
    /// Bytes were not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: ", self.offset)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::Malformed(m) => write!(f, "malformed construct: {m}"),
            ParseErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            ParseErrorKind::Build(e) => write!(f, "document structure error: {e}"),
            ParseErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            ParseErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XML document into a [`Document`].
///
/// The whole parse is timed as an observability span
/// ([`twigobs::Phase::Parse`]) — a no-op unless the workspace is built
/// with the `obs` feature.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let _span = twigobs::span(twigobs::Phase::Parse);
    let mut builder = DocumentBuilder::new();
    let mut open: Vec<String> = Vec::new();
    let mut scanner = Scanner::new(input.as_bytes());
    while let Some(tok) = scanner.next_token()? {
        match tok {
            Token::StartTag { name, attrs, self_closing } => {
                builder
                    .start_element(&name)
                    .map_err(|e| scanner.err_build(e))?;
                for (k, v) in &attrs {
                    builder.attr(k, v).map_err(|e| scanner.err_build(e))?;
                }
                if self_closing {
                    builder.end_element().map_err(|e| scanner.err_build(e))?;
                } else {
                    open.push(name);
                }
            }
            Token::EndTag { name } => {
                let expected = open.pop().ok_or_else(|| ParseError {
                    offset: scanner.pos,
                    kind: ParseErrorKind::Malformed("end tag with no open element".into()),
                })?;
                if expected != name {
                    return Err(ParseError {
                        offset: scanner.pos,
                        kind: ParseErrorKind::MismatchedTag { expected, found: name },
                    });
                }
                builder.end_element().map_err(|e| scanner.err_build(e))?;
            }
            Token::Text(t) => {
                if !open.is_empty() && !t.trim().is_empty() {
                    builder.text(&t).map_err(|e| scanner.err_build(e))?;
                }
            }
        }
    }
    if !open.is_empty() {
        return Err(ParseError {
            offset: scanner.pos,
            kind: ParseErrorKind::UnexpectedEof,
        });
    }
    builder.finish().map_err(|e| ParseError {
        offset: input.len(),
        kind: ParseErrorKind::Build(e),
    })
}

/// One markup token produced by the [`Scanner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    StartTag {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    EndTag {
        name: String,
    },
    Text(String),
}

/// Low-level tokenizer shared by the DOM parser and the event parser.
pub(crate) struct Scanner<'a> {
    input: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(input: &'a [u8]) -> Self {
        Scanner { input, pos: 0 }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError { offset: self.pos, kind }
    }

    fn err_build(&self, e: BuildError) -> ParseError {
        self.err(ParseErrorKind::Build(e))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, s: &[u8]) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, s: &[u8]) -> Result<(), ParseError> {
        while self.pos < self.input.len() {
            if self.eat(s) {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(ParseErrorKind::UnexpectedEof))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(ParseErrorKind::Malformed("expected a name".into())));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(|s| s.to_string())
            .map_err(|_| self.err(ParseErrorKind::InvalidUtf8))
    }

    /// Next markup/text token, or `None` at end of input.
    pub(crate) fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                if self.eat(b"<!--") {
                    self.skip_until(b"-->")?;
                    continue;
                }
                if self.eat(b"<![CDATA[") {
                    let start = self.pos;
                    self.skip_until(b"]]>")?;
                    let raw = &self.input[start..self.pos - 3];
                    let text = std::str::from_utf8(raw)
                        .map_err(|_| self.err(ParseErrorKind::InvalidUtf8))?;
                    return Ok(Some(Token::Text(text.to_string())));
                }
                if self.eat(b"<!DOCTYPE") || self.eat(b"<!doctype") {
                    // Skip to the matching '>' (no internal-subset support).
                    self.skip_until(b">")?;
                    continue;
                }
                if self.eat(b"<?") {
                    self.skip_until(b"?>")?;
                    continue;
                }
                if self.eat(b"</") {
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'>') {
                        return Err(self.err(ParseErrorKind::Malformed(
                            "end tag not terminated by '>'".into(),
                        )));
                    }
                    return Ok(Some(Token::EndTag { name }));
                }
                // Ordinary start tag.
                self.pos += 1; // consume '<'
                let name = self.read_name()?;
                let mut attrs = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'>') => {
                            self.pos += 1;
                            return Ok(Some(Token::StartTag { name, attrs, self_closing: false }));
                        }
                        Some(b'/') => {
                            self.pos += 1;
                            if self.bump() != Some(b'>') {
                                return Err(self.err(ParseErrorKind::Malformed(
                                    "expected '>' after '/'".into(),
                                )));
                            }
                            return Ok(Some(Token::StartTag { name, attrs, self_closing: true }));
                        }
                        Some(_) => {
                            let aname = self.read_name()?;
                            self.skip_ws();
                            if self.bump() != Some(b'=') {
                                return Err(self.err(ParseErrorKind::Malformed(
                                    format!("attribute '{aname}' missing '='"),
                                )));
                            }
                            self.skip_ws();
                            let quote = self.bump().ok_or_else(|| {
                                self.err(ParseErrorKind::UnexpectedEof)
                            })?;
                            if quote != b'"' && quote != b'\'' {
                                return Err(self.err(ParseErrorKind::Malformed(
                                    "attribute value must be quoted".into(),
                                )));
                            }
                            let start = self.pos;
                            while self.peek().is_some_and(|b| b != quote) {
                                self.pos += 1;
                            }
                            if self.peek().is_none() {
                                return Err(self.err(ParseErrorKind::UnexpectedEof));
                            }
                            let raw = std::str::from_utf8(&self.input[start..self.pos])
                                .map_err(|_| self.err(ParseErrorKind::InvalidUtf8))?;
                            let value = self.decode_entities(raw)?;
                            self.pos += 1; // closing quote
                            attrs.push((aname, value));
                        }
                        None => return Err(self.err(ParseErrorKind::UnexpectedEof)),
                    }
                }
            }
            // Character data run, up to the next '<'.
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'<') {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.input[start..self.pos])
                .map_err(|_| self.err(ParseErrorKind::InvalidUtf8))?;
            let decoded = self.decode_entities(raw)?;
            return Ok(Some(Token::Text(decoded)));
        }
    }

    /// Replace the predefined entities and character references in `s`.
    fn decode_entities(&self, s: &str) -> Result<String, ParseError> {
        if !s.contains('&') {
            return Ok(s.to_string());
        }
        let mut out = String::with_capacity(s.len());
        let mut rest = s;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp + 1..];
            let semi = rest.find(';').ok_or_else(|| {
                self.err(ParseErrorKind::Malformed("unterminated entity".into()))
            })?;
            let ent = &rest[..semi];
            match ent {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let cp = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                        self.err(ParseErrorKind::UnknownEntity(ent.to_string()))
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        self.err(ParseErrorKind::UnknownEntity(ent.to_string()))
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let cp: u32 = ent[1..].parse().map_err(|_| {
                        self.err(ParseErrorKind::UnknownEntity(ent.to_string()))
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        self.err(ParseErrorKind::UnknownEntity(ent.to_string()))
                    })?);
                }
                _ => return Err(self.err(ParseErrorKind::UnknownEntity(ent.to_string()))),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.len(), 4);
        let root = doc.root();
        assert_eq!(doc.tag_name(root), "a");
        let kids: Vec<&str> = doc.children(root).map(|c| doc.tag_name(c)).collect();
        assert_eq!(kids, vec!["b", "b"]);
    }

    #[test]
    fn parses_attributes_and_text() {
        let doc = parse(r#"<book year="2006" lang='en'><title>Twig &amp; Stack</title></book>"#)
            .unwrap();
        let root = doc.root();
        assert_eq!(doc.attribute(root, "year"), Some("2006"));
        assert_eq!(doc.attribute(root, "lang"), Some("en"));
        let title = doc.first_child(root).unwrap();
        assert_eq!(doc.text(title), Some("Twig & Stack"));
    }

    #[test]
    fn skips_prolog_comments_pis_doctype() {
        let doc = parse(
            "<?xml version=\"1.0\"?><!DOCTYPE dblp>\n<!-- c --><dblp><?pi data?><x/><!-- d --></dblp>",
        )
        .unwrap();
        assert_eq!(doc.tag_name(doc.root()), "dblp");
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<a><![CDATA[<not-a-tag> & raw]]></a>").unwrap();
        assert_eq!(doc.text(doc.root()), Some("<not-a-tag> & raw"));
    }

    #[test]
    fn char_references() {
        let doc = parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.text(doc.root()), Some("AB"));
    }

    #[test]
    fn mismatched_tag_is_an_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn truncated_input_is_an_error() {
        assert!(matches!(
            parse("<a><b>").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            parse("<a").unwrap_err().kind,
            ParseErrorKind::Malformed(_) | ParseErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownEntity(e) if e == "nope"));
    }

    #[test]
    fn regions_match_tag_positions() {
        // <a>(1 <b>(2 </b>3) <b>(4 </b>5) </a>6)
        let doc = parse("<a><b/><b/></a>").unwrap();
        let root = doc.root();
        assert_eq!(doc.region(root).left, 1);
        assert_eq!(doc.region(root).right, 6);
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(doc.region(kids[0]).left, 2);
        assert_eq!(doc.region(kids[0]).right, 3);
        assert_eq!(doc.region(kids[1]).left, 4);
        assert_eq!(doc.region(kids[1]).right, 5);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.text(doc.root()), None);
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }
}
