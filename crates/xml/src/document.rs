//! Arena-based XML document tree.
//!
//! Nodes live in a single `Vec` and are addressed by dense [`NodeId`]s;
//! sibling/child links are `u32` indices, which keeps the per-node footprint
//! small and traversal cache-friendly. Region encodings (see
//! [`crate::region`]) are assigned at build time from one global tag counter,
//! so `NodeId` order equals document (pre)order of start tags.

use crate::label::{Label, LabelTable};
use crate::region::Region;
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an element node within one [`Document`].
///
/// Ids are assigned in document order: `a.index() < b.index()` iff `a`'s
/// start tag precedes `b`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)] // a bare u32: castable inside `#[repr(C)]` index records
pub struct NodeId(u32);

impl NodeId {
    /// Raw index into the document's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`NodeId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize);
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

pub(crate) const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) label: Label,
    pub(crate) region: Region,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) last_child: u32,
    pub(crate) next_sibling: u32,
}

/// An immutable XML document: element tree + interned labels + optional
/// text/attribute payload.
///
/// Construct one with [`DocumentBuilder`] or by parsing
/// (see [`crate::parser::parse`]).
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) labels: LabelTable,
    /// Concatenated character data per node, only for nodes that have any.
    pub(crate) text: HashMap<u32, String>,
    /// Attributes per node, only for nodes that have any.
    pub(crate) attrs: HashMap<u32, Vec<(String, String)>>,
}

impl Document {
    /// The root element. XML documents have exactly one.
    ///
    /// # Panics
    /// Panics on an empty document (builders refuse to produce one).
    pub fn root(&self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty document has no root");
        NodeId(0)
    }

    /// Number of element nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the document holds no elements (only possible for
    /// `Document::default()`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label (interned tag name) of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.nodes[node.index()].label
    }

    /// The tag name of `node`.
    pub fn tag_name(&self, node: NodeId) -> &str {
        self.labels.name(self.label(node))
    }

    /// The region encoding of `node`.
    #[inline]
    pub fn region(&self, node: NodeId) -> Region {
        self.nodes[node.index()].region
    }

    /// Parent element, `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        opt(self.nodes[node.index()].parent)
    }

    /// First child element, if any.
    #[inline]
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        opt(self.nodes[node.index()].first_child)
    }

    /// Next sibling element, if any.
    #[inline]
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        opt(self.nodes[node.index()].next_sibling)
    }

    /// Iterate over the children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: opt(self.nodes[node.index()].first_child),
        }
    }

    /// Iterate over all nodes in document (pre)order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over the subtree rooted at `node` (inclusive) in preorder.
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![node],
        }
    }

    /// Concatenated character data directly inside `node` (not descendants).
    pub fn text(&self, node: NodeId) -> Option<&str> {
        self.text.get(&(node.index() as u32)).map(String::as_str)
    }

    /// Attributes of `node` in source order.
    pub fn attributes(&self, node: NodeId) -> &[(String, String)] {
        self.attrs
            .get(&(node.index() as u32))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Value of the attribute `name` on `node`, if present.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attributes(node)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The label interner of this document.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// All nodes carrying `label`, in document order.
    pub fn nodes_with_label(&self, label: Label) -> Vec<NodeId> {
        self.iter().filter(|&n| self.label(n) == label).collect()
    }

    /// True iff `anc` is a proper ancestor of `desc` (region test).
    #[inline]
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.region(anc).is_ancestor_of(&self.region(desc))
    }

    /// Depth of the deepest element and average element depth.
    pub fn depth_stats(&self) -> (u32, f64) {
        if self.nodes.is_empty() {
            return (0, 0.0);
        }
        let mut max = 0u32;
        let mut sum = 0u64;
        for n in &self.nodes {
            max = max.max(n.region.level);
            sum += n.region.level as u64;
        }
        (max, sum as f64 / self.nodes.len() as f64)
    }
}

#[inline]
fn opt(v: u32) -> Option<NodeId> {
    if v == NONE {
        None
    } else {
        Some(NodeId(v))
    }
}

/// Iterator over the children of a node. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Preorder iterator over a subtree. See [`Document::descendants_or_self`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        // Push children in reverse so the leftmost child pops first.
        let children: Vec<NodeId> = self.doc.children(cur).collect();
        self.stack.extend(children.into_iter().rev());
        Some(cur)
    }
}

/// Incremental constructor for [`Document`].
///
/// Call [`start_element`](DocumentBuilder::start_element) /
/// [`end_element`](DocumentBuilder::end_element) in well-nested order;
/// region encodings and sibling links are maintained automatically.
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    doc: Document,
    /// Stack of open element indices.
    open: Vec<u32>,
    /// Global tag counter: incremented at every start and end tag.
    counter: u32,
    finished_root: bool,
}

/// Errors produced by [`DocumentBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `end_element` with no open element.
    UnbalancedEnd,
    /// A second root element was started after the first was closed.
    MultipleRoots,
    /// `finish` called while elements are still open, or on no elements.
    Unfinished,
    /// `text`/`attr` with no open element.
    NoOpenElement,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnbalancedEnd => write!(f, "end_element without matching start_element"),
            BuildError::MultipleRoots => write!(f, "document must have exactly one root element"),
            BuildError::Unfinished => write!(f, "document incomplete: unclosed elements or no root"),
            BuildError::NoOpenElement => write!(f, "no element is open"),
        }
    }
}

impl std::error::Error for BuildError {}

impl DocumentBuilder {
    /// Start building an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new element with tag `name`.
    pub fn start_element(&mut self, name: &str) -> Result<NodeId, BuildError> {
        if self.open.is_empty() && self.finished_root {
            return Err(BuildError::MultipleRoots);
        }
        let label = self.doc.labels.intern(name);
        self.counter += 1;
        let idx = self.doc.nodes.len() as u32;
        let level = self.open.len() as u32 + 1;
        let parent = self.open.last().copied().unwrap_or(NONE);
        self.doc.nodes.push(NodeData {
            label,
            // `right` is a placeholder patched at end_element; keep the
            // invariant left < right so debug asserts hold meanwhile.
            region: Region::new(self.counter, u32::MAX, level),
            parent,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
        });
        if parent != NONE {
            let p = &mut self.doc.nodes[parent as usize];
            if p.first_child == NONE {
                p.first_child = idx;
                p.last_child = idx;
            } else {
                let last = p.last_child;
                self.doc.nodes[last as usize].next_sibling = idx;
                self.doc.nodes[parent as usize].last_child = idx;
            }
        }
        self.open.push(idx);
        Ok(NodeId(idx))
    }

    /// Close the most recently opened element.
    pub fn end_element(&mut self) -> Result<NodeId, BuildError> {
        let idx = self.open.pop().ok_or(BuildError::UnbalancedEnd)?;
        self.counter += 1;
        self.doc.nodes[idx as usize].region.right = self.counter;
        if self.open.is_empty() {
            self.finished_root = true;
        }
        Ok(NodeId(idx))
    }

    /// Append character data to the currently open element.
    pub fn text(&mut self, data: &str) -> Result<(), BuildError> {
        let &idx = self.open.last().ok_or(BuildError::NoOpenElement)?;
        self.doc.text.entry(idx).or_default().push_str(data);
        Ok(())
    }

    /// Attach an attribute to the currently open element.
    pub fn attr(&mut self, name: &str, value: &str) -> Result<(), BuildError> {
        let &idx = self.open.last().ok_or(BuildError::NoOpenElement)?;
        self.doc
            .attrs
            .entry(idx)
            .or_default()
            .push((name.to_string(), value.to_string()));
        Ok(())
    }

    /// Convenience: open an element, run `f` to fill it, close it.
    pub fn element(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Self) -> Result<(), BuildError>,
    ) -> Result<(), BuildError> {
        self.start_element(name)?;
        f(self)?;
        self.end_element()?;
        Ok(())
    }

    /// Convenience: `<name>text</name>`.
    pub fn leaf(&mut self, name: &str, text: &str) -> Result<(), BuildError> {
        self.start_element(name)?;
        if !text.is_empty() {
            self.text(text)?;
        }
        self.end_element()?;
        Ok(())
    }

    /// Finish building. Fails if elements remain open or nothing was built.
    pub fn finish(self) -> Result<Document, BuildError> {
        if !self.open.is_empty() || self.doc.nodes.is_empty() {
            return Err(BuildError::Unfinished);
        }
        Ok(self.doc)
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    /// Build the document of paper Figure 1, reconstructed from the paper's
    /// worked examples (§2 example matches, §3 merge order, §4 pointPC /
    /// pointAD values):
    ///
    /// ```text
    /// a1( a2( a3( b1(c1 d1) )  b2( a4( b3(c2 d2(d3)) ) c3 ) )  b4(d4) )
    /// ```
    pub(crate) fn figure1() -> Document {
        let mut b = DocumentBuilder::new();
        b.start_element("a").unwrap(); // a1
        b.start_element("a").unwrap(); // a2
        b.start_element("a").unwrap(); // a3
        b.start_element("b").unwrap(); // b1
        b.leaf("c", "").unwrap(); // c1
        b.leaf("d", "").unwrap(); // d1
        b.end_element().unwrap(); // /b1
        b.end_element().unwrap(); // /a3
        b.start_element("b").unwrap(); // b2
        b.start_element("a").unwrap(); // a4
        b.start_element("b").unwrap(); // b3
        b.leaf("c", "").unwrap(); // c2
        b.start_element("d").unwrap(); // d2
        b.leaf("d", "").unwrap(); // d3
        b.end_element().unwrap(); // /d2
        b.end_element().unwrap(); // /b3
        b.end_element().unwrap(); // /a4
        b.leaf("c", "").unwrap(); // c3
        b.end_element().unwrap(); // /b2
        b.end_element().unwrap(); // /a2
        b.start_element("b").unwrap(); // b4
        b.leaf("d", "").unwrap(); // d4
        b.end_element().unwrap(); // /b4
        b.end_element().unwrap(); // /a1
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_well_formed_regions() {
        let doc = figure1();
        assert_eq!(doc.len(), 15);
        let root = doc.root();
        assert_eq!(doc.tag_name(root), "a");
        let rr = doc.region(root);
        assert_eq!(rr.left, 1);
        assert_eq!(rr.level, 1);
        // Every non-root node is inside the root region.
        for n in doc.iter().skip(1) {
            assert!(rr.is_ancestor_of(&doc.region(n)), "{n}");
        }
        // Regions nest exactly like parent links.
        for n in doc.iter() {
            if let Some(p) = doc.parent(n) {
                assert!(doc.region(p).is_parent_of(&doc.region(n)));
            }
        }
    }

    #[test]
    fn node_ids_are_preorder() {
        let doc = figure1();
        let pre: Vec<NodeId> = doc.descendants_or_self(doc.root()).collect();
        let seq: Vec<NodeId> = doc.iter().collect();
        assert_eq!(pre, seq);
    }

    #[test]
    fn children_iteration() {
        let doc = figure1();
        let root = doc.root();
        let kids: Vec<&str> = doc.children(root).map(|c| doc.tag_name(c)).collect();
        assert_eq!(kids, vec!["a", "b"]); // a2, b4
        let a2 = doc.first_child(root).unwrap();
        let kids: Vec<&str> = doc.children(a2).map(|c| doc.tag_name(c)).collect();
        assert_eq!(kids, vec!["a", "b"]); // a3, b2
    }

    #[test]
    fn text_and_attributes() {
        let mut b = DocumentBuilder::new();
        b.start_element("book").unwrap();
        b.attr("year", "2006").unwrap();
        b.leaf("title", "Twig2Stack").unwrap();
        b.text("tail").unwrap();
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        let root = doc.root();
        assert_eq!(doc.attribute(root, "year"), Some("2006"));
        assert_eq!(doc.attribute(root, "missing"), None);
        assert_eq!(doc.text(root), Some("tail"));
        let title = doc.first_child(root).unwrap();
        assert_eq!(doc.text(title), Some("Twig2Stack"));
    }

    #[test]
    fn build_errors() {
        let mut b = DocumentBuilder::new();
        assert_eq!(b.end_element(), Err(BuildError::UnbalancedEnd));
        assert_eq!(b.text("x"), Err(BuildError::NoOpenElement));
        b.leaf("a", "").unwrap();
        assert_eq!(
            b.start_element("b").unwrap_err(),
            BuildError::MultipleRoots
        );

        let mut b2 = DocumentBuilder::new();
        b2.start_element("a").unwrap();
        assert!(matches!(b2.finish(), Err(BuildError::Unfinished)));

        let b3 = DocumentBuilder::new();
        assert!(matches!(b3.finish(), Err(BuildError::Unfinished)));
    }

    #[test]
    fn nodes_with_label() {
        let doc = figure1();
        let d = doc.labels().get("d").unwrap();
        assert_eq!(doc.nodes_with_label(d).len(), 4);
        let a = doc.labels().get("a").unwrap();
        assert_eq!(doc.nodes_with_label(a).len(), 4);
    }

    #[test]
    fn depth_stats() {
        let doc = figure1();
        let (max, avg) = doc.depth_stats();
        assert_eq!(max, 7); // a1/a2/b2/a4/b3/d2/d3
        assert!(avg > 1.0 && avg < 7.0);
    }
}
