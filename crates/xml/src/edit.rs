//! Subtree edit operations over immutable [`Document`]s.
//!
//! A document in this workspace is immutable once built: every index,
//! plan, and in-flight query reads it without synchronization. Edits
//! therefore never mutate in place — [`apply_op`] is a pure function
//! from `(document, op)` to a **new** document plus an [`EditDelta`]
//! describing exactly what changed, the contract the incremental index
//! maintenance in `xmlindex` patches from (DESIGN.md §15).
//!
//! ## Region encodings under edits
//!
//! Fresh builds number regions densely from one global tag counter
//! (`[1,2], [3,8], …`), which leaves **no** spare positions between
//! neighbouring tags. An inserted subtree needs `2·k` unused positions
//! strictly between its left and right neighbour boundaries, so the
//! first insert into a dense document — and any insert into an
//! exhausted gap — triggers a whole-document **renumber** with stride
//! [`RENUMBER_STRIDE`]: every tag position is re-assigned `16, 32, 48,
//! …`, buying 15 spare slots inside every gap while preserving all
//! nesting relations (the renumbering is monotone in tag order).
//! Renumbers are counted (`renumber_events`) and flagged on the delta,
//! because they invalidate every region an index has stored; gap-fitting
//! edits touch **only** the spliced subtree's regions, which is what
//! makes incremental index maintenance cheap. Deletes never renumber.
//!
//! Node ids stay dense and in preorder after every edit (the arena is
//! compacted in one pass), so a subtree edit shifts the ids of every
//! node at or after the splice point by `inserted − removed` — the
//! id-shift recorded in the delta.
//!
//! ```
//! use xmldom::edit::{apply_op, EditOp};
//!
//! let doc = xmldom::parse("<a><b/><c/></a>").unwrap();
//! let sub = xmldom::parse("<x><y/></x>").unwrap();
//! let op = EditOp::InsertSubtree {
//!     parent: Some(doc.root()),
//!     position: 1,
//!     subtree: sub,
//! };
//! let (edited, delta) = apply_op(&doc, &op).unwrap();
//! assert_eq!(edited.len(), 5);
//! assert_eq!(delta.inserted, 2);
//! assert!(delta.renumbered, "a dense document has no gaps to fit into");
//! ```

use crate::document::{Document, NodeData, NodeId, NONE};
use crate::label::Label;
use crate::region::Region;

/// Tag-position stride used when a document is renumbered: every start
/// and end tag lands on a multiple of this, leaving `RENUMBER_STRIDE - 1`
/// spare positions inside every gap for future inserts.
pub const RENUMBER_STRIDE: u32 = 16;

/// One subtree edit against a [`Document`]. Node ids refer to the
/// document the op is applied to; subtrees are standalone documents
/// (their labels are re-interned into the edited document's table).
#[derive(Debug, Clone)]
pub enum EditOp {
    /// Graft `subtree` as child number `position` (0-based, `0 ..=
    /// child count`) of `parent`. `parent: None` roots the subtree in an
    /// empty document (the only way to revive one).
    InsertSubtree {
        /// Parent under which the subtree is grafted; `None` targets the
        /// (empty) document itself.
        parent: Option<NodeId>,
        /// Child slot the subtree root takes; existing children at or
        /// after it shift right.
        position: usize,
        /// The grafted tree (must be non-empty).
        subtree: Document,
    },
    /// Remove `target` and everything below it. Deleting the root
    /// produces the empty document.
    DeleteSubtree {
        /// Root of the removed subtree.
        target: NodeId,
    },
    /// Replace the subtree rooted at `target` with `subtree` (at the
    /// same child slot).
    ReplaceSubtree {
        /// Root of the replaced subtree.
        target: NodeId,
        /// The replacement tree (must be non-empty).
        subtree: Document,
    },
}

/// A rejected [`EditOp`]. Every failure is a value; [`apply_op`] never
/// panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The op names a node the document does not have.
    InvalidNode(NodeId),
    /// Insert position past the parent's child count.
    PositionOutOfRange {
        /// The requested child slot.
        position: usize,
        /// Children the parent actually has.
        arity: usize,
    },
    /// The inserted/replacement subtree has no elements.
    EmptySubtree,
    /// `InsertSubtree { parent: None }` on a non-empty document — XML
    /// documents have exactly one root.
    SecondRoot,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::InvalidNode(n) => write!(f, "edit names nonexistent node {n}"),
            EditError::PositionOutOfRange { position, arity } => {
                write!(f, "insert position {position} exceeds child count {arity}")
            }
            EditError::EmptySubtree => write!(f, "inserted subtree is empty"),
            EditError::SecondRoot => {
                write!(f, "cannot insert a second root into a non-empty document")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// What one applied [`EditOp`] changed, in terms an index can patch
/// from: a single contiguous preorder splice plus the set of labels
/// whose element partitions it touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditDelta {
    /// Arena index where the splice starts — the first removed node's
    /// old id, and equally the first inserted node's new id.
    pub at: u32,
    /// Nodes removed at `at` (a whole subtree, contiguous in preorder).
    pub removed: u32,
    /// Nodes inserted at `at` (ditto).
    pub inserted: u32,
    /// Labels of every removed and inserted node, deduplicated and
    /// sorted — the plan-cache invalidation key.
    pub changed_labels: Vec<Label>,
    /// True iff the whole document was renumbered: every region changed,
    /// not just the spliced subtree's. Deletes never set this.
    pub renumbered: bool,
}

impl EditDelta {
    /// Signed id shift for surviving nodes at or after the splice end:
    /// old id `i ≥ at + removed` becomes `i + id_shift()`.
    pub fn id_shift(&self) -> i64 {
        self.inserted as i64 - self.removed as i64
    }

    /// Where a pre-edit node id lands after this edit: ids before the
    /// splice are unchanged, ids inside the removed range are gone
    /// (`None` — the node no longer exists), ids at or after the splice
    /// end shift by [`id_shift`](EditDelta::id_shift). Composing
    /// `map_id` across a sequence of deltas carries an id through a
    /// whole edit chain — note this tracks *ids*, which renumbering
    /// never touches, so it stays exact across a whole-document
    /// renumber (the subscription layer's cross-snapshot row identity
    /// is built on it).
    pub fn map_id(&self, id: u32) -> Option<u32> {
        if id < self.at {
            Some(id)
        } else if id < self.at + self.removed {
            None
        } else {
            Some((i64::from(id) + self.id_shift()) as u32)
        }
    }
}

/// First arena index past the subtree rooted at `n` (subtrees are
/// contiguous in preorder).
fn subtree_end(doc: &Document, n: NodeId) -> usize {
    let right = doc.region(n).right;
    let mut j = n.index() + 1;
    while j < doc.len() && doc.region(NodeId::from_index(j)).left < right {
        j += 1;
    }
    j
}

/// How the rebuilt arena assigns regions.
enum Numbering {
    /// Surviving nodes keep their regions; spliced-in nodes consume the
    /// pre-allocated tag positions (2 per node, in tag order).
    Keep(Vec<u32>),
    /// Every tag position is re-assigned on a [`RENUMBER_STRIDE`] grid.
    Renumber,
}

/// Where a node of the logical edited tree comes from.
#[derive(Clone, Copy)]
enum Src {
    /// Survivor: this node of the input document.
    Old(NodeId),
    /// Spliced in: this node of the op's subtree document.
    Sub(NodeId),
}

/// Apply one edit, returning the edited document and its delta.
///
/// The returned document is rebuilt into dense preorder ids (an O(n)
/// compaction) with the input's label table carried over — labels keep
/// their ids across edits, which is what lets `xmlindex` patch per-label
/// partitions instead of rebuilding them. Regions of surviving nodes are
/// preserved verbatim unless the delta says `renumbered`.
pub fn apply_op(doc: &Document, op: &EditOp) -> Result<(Document, EditDelta), EditError> {
    let valid = |n: NodeId| {
        if n.index() < doc.len() {
            Ok(n)
        } else {
            Err(EditError::InvalidNode(n))
        }
    };

    // Normalize the op into one contiguous preorder splice:
    // `at .. at + removed` (old ids) replaced by `subtree` (if any),
    // grafted under `splice_parent` in place of/next to `anchor`.
    let (at, removed, subtree, numbering) = match op {
        EditOp::InsertSubtree { parent: None, subtree, .. } => {
            if !doc.is_empty() {
                return Err(EditError::SecondRoot);
            }
            if subtree.is_empty() {
                return Err(EditError::EmptySubtree);
            }
            (0usize, 0usize, Some(subtree), fresh_numbering(subtree.len()))
        }
        EditOp::InsertSubtree { parent: Some(p), position, subtree } => {
            let p = valid(*p)?;
            if subtree.is_empty() {
                return Err(EditError::EmptySubtree);
            }
            let children: Vec<NodeId> = doc.children(p).collect();
            if *position > children.len() {
                return Err(EditError::PositionOutOfRange {
                    position: *position,
                    arity: children.len(),
                });
            }
            let at = if *position < children.len() {
                children[*position].index()
            } else {
                subtree_end(doc, p)
            };
            let lo = if *position > 0 {
                doc.region(children[*position - 1]).right
            } else {
                doc.region(p).left
            };
            let hi = if *position < children.len() {
                doc.region(children[*position]).left
            } else {
                doc.region(p).right
            };
            (at, 0, Some(subtree), gap_numbering(lo, hi, subtree.len()))
        }
        EditOp::DeleteSubtree { target } => {
            let t = valid(*target)?;
            (t.index(), subtree_end(doc, t) - t.index(), None, Numbering::Keep(Vec::new()))
        }
        EditOp::ReplaceSubtree { target, subtree } => {
            let t = valid(*target)?;
            if subtree.is_empty() {
                return Err(EditError::EmptySubtree);
            }
            let at = t.index();
            let removed = subtree_end(doc, t) - at;
            let numbering = match doc.parent(t) {
                None => fresh_numbering(subtree.len()),
                Some(p) => {
                    let mut prev: Option<NodeId> = None;
                    let mut next: Option<NodeId> = None;
                    let mut seen = false;
                    for c in doc.children(p) {
                        if c == t {
                            seen = true;
                        } else if seen {
                            next = Some(c);
                            break;
                        } else {
                            prev = Some(c);
                        }
                    }
                    let lo = prev.map(|c| doc.region(c).right).unwrap_or(doc.region(p).left);
                    let hi = next.map(|c| doc.region(c).left).unwrap_or(doc.region(p).right);
                    gap_numbering(lo, hi, subtree.len())
                }
            };
            (at, removed, Some(subtree), numbering)
        }
    };

    if matches!(numbering, Numbering::Renumber) {
        twigobs::bump(twigobs::Counter::RenumberEvents);
    }
    let renumbered = matches!(numbering, Numbering::Renumber);
    let inserted = subtree.map_or(0, Document::len);

    // The op the splice came from pins where the subtree grafts.
    let splice = Splice { removed, subtree, op };
    let out = rebuild(doc, &splice, numbering);

    let mut changed_labels: Vec<Label> = (at..at + removed)
        .map(|i| doc.label(NodeId::from_index(i)))
        .chain((at..at + inserted).map(|i| out.label(NodeId::from_index(i))))
        .collect();
    changed_labels.sort_unstable();
    changed_labels.dedup();

    twigobs::bump(twigobs::Counter::EditsApplied);
    let delta = EditDelta {
        at: at as u32,
        removed: removed as u32,
        inserted: inserted as u32,
        changed_labels,
        renumbered,
    };
    Ok((out, delta))
}

/// Numbering for a splice with no surviving neighbours (empty document
/// or root replacement): a fresh [`RENUMBER_STRIDE`] grid, not counted
/// as a renumber event because no pre-existing region moves.
fn fresh_numbering(nodes: usize) -> Numbering {
    Numbering::Keep((0..2 * nodes as u32).map(|j| (j + 1) * RENUMBER_STRIDE).collect())
}

/// Allocate `2·nodes` tag positions strictly inside `(lo, hi)`, evenly
/// spread when the gap is roomy (leaving space for future inserts),
/// packed when tight, renumbering when the gap budget is exhausted.
fn gap_numbering(lo: u32, hi: u32, nodes: usize) -> Numbering {
    debug_assert!(lo < hi, "neighbour boundaries are distinct tag positions");
    let need = 2 * nodes as u64;
    let gap = (hi - lo) as u64 - 1;
    if gap < need {
        return Numbering::Renumber;
    }
    let step = ((hi - lo) as u64 / (need + 1)) as u32;
    let positions = if step >= 1 {
        (0..need as u32).map(|j| lo + (j + 1) * step).collect()
    } else {
        (0..need as u32).map(|j| lo + 1 + j).collect()
    };
    Numbering::Keep(positions)
}

struct Splice<'a> {
    removed: usize,
    subtree: Option<&'a Document>,
    op: &'a EditOp,
}

/// One-pass preorder rebuild of the logical edited tree: arena links are
/// reconstructed from scratch (so ids are dense preorder again), regions
/// come from the numbering mode, labels are carried over or re-interned,
/// and text/attrs are remapped onto the new ids.
fn rebuild(doc: &Document, splice: &Splice<'_>, numbering: Numbering) -> Document {
    let mut out = Document {
        nodes: Vec::with_capacity(doc.len() - splice.removed + splice.subtree.map_or(0, |s| s.len())),
        labels: doc.labels.clone(),
        text: Default::default(),
        attrs: Default::default(),
    };
    let (mut alloc, mut counter, renumber) = match numbering {
        Numbering::Keep(positions) => (positions.into_iter(), 0u32, false),
        Numbering::Renumber => (Vec::new().into_iter(), 0u32, true),
    };
    let mut next_pos = move || {
        if renumber {
            counter += RENUMBER_STRIDE;
            counter
        } else {
            alloc.next().expect("allocation covers every spliced tag")
        }
    };

    // The roots of the logical edited tree.
    let roots: Vec<Src> = match (doc.is_empty(), splice.op) {
        (true, _) => vec![Src::Sub(splice.subtree.expect("validated non-empty").root())],
        (false, EditOp::ReplaceSubtree { target, .. }) if target.index() == 0 => {
            vec![Src::Sub(splice.subtree.expect("validated non-empty").root())]
        }
        (false, EditOp::DeleteSubtree { target }) if target.index() == 0 => Vec::new(),
        (false, _) => vec![Src::Old(doc.root())],
    };

    // Children of a logical node, with the splice applied at its anchor.
    let children_of = |src: Src| -> Vec<Src> {
        match src {
            Src::Sub(m) => splice
                .subtree
                .expect("Sub nodes only exist when a subtree is spliced")
                .children(m)
                .map(Src::Sub)
                .collect(),
            Src::Old(n) => {
                let mut kids: Vec<Src> = Vec::new();
                match splice.op {
                    EditOp::InsertSubtree { parent: Some(p), position, subtree } if *p == n => {
                        for (i, c) in doc.children(n).enumerate() {
                            if i == *position {
                                kids.push(Src::Sub(subtree.root()));
                            }
                            kids.push(Src::Old(c));
                        }
                        if *position == kids.len() {
                            kids.push(Src::Sub(subtree.root()));
                        }
                    }
                    EditOp::DeleteSubtree { target } if doc.parent(*target) == Some(n) => {
                        kids.extend(doc.children(n).filter(|c| c != target).map(Src::Old));
                    }
                    EditOp::ReplaceSubtree { target, subtree }
                        if doc.parent(*target) == Some(n) =>
                    {
                        for c in doc.children(n) {
                            if c == *target {
                                kids.push(Src::Sub(subtree.root()));
                            } else {
                                kids.push(Src::Old(c));
                            }
                        }
                    }
                    _ => kids.extend(doc.children(n).map(Src::Old)),
                }
                kids
            }
        }
    };

    // Iterative preorder walk emitting start/end events, maintaining
    // arena links exactly like `DocumentBuilder`.
    let mut open: Vec<u32> = Vec::new();
    let mut iters: Vec<std::vec::IntoIter<Src>> = vec![roots.into_iter()];
    while let Some(it) = iters.last_mut() {
        if let Some(src) = it.next() {
            // Start event.
            let idx = out.nodes.len() as u32;
            let level = open.len() as u32 + 1;
            let parent = open.last().copied().unwrap_or(NONE);
            let (label, region, src_doc, src_id) = match src {
                Src::Old(n) => {
                    let region = if renumber {
                        Region::new(next_pos(), u32::MAX, level)
                    } else {
                        doc.region(n)
                    };
                    (doc.label(n), region, doc, n)
                }
                Src::Sub(m) => {
                    let sub = splice.subtree.expect("spliced");
                    let label = out.labels.intern(sub.tag_name(m));
                    (label, Region::new(next_pos(), u32::MAX, level), sub, m)
                }
            };
            if let Some(t) = src_doc.text(src_id) {
                out.text.insert(idx, t.to_string());
            }
            let attrs = src_doc.attributes(src_id);
            if !attrs.is_empty() {
                out.attrs.insert(idx, attrs.to_vec());
            }
            out.nodes.push(NodeData {
                label,
                region,
                parent,
                first_child: NONE,
                last_child: NONE,
                next_sibling: NONE,
            });
            if parent != NONE {
                let p = &mut out.nodes[parent as usize];
                if p.first_child == NONE {
                    p.first_child = idx;
                    p.last_child = idx;
                } else {
                    let last = p.last_child;
                    out.nodes[last as usize].next_sibling = idx;
                    out.nodes[parent as usize].last_child = idx;
                }
            }
            open.push(idx);
            // Needs a closing event even when childless.
            let kids = children_of(src);
            iters.push(kids.into_iter());
        } else {
            iters.pop();
            if let Some(idx) = open.pop() {
                // End event: patch `right` for nodes that got a fresh
                // left (spliced or renumbered); survivors already carry
                // their full region.
                if out.nodes[idx as usize].region.right == u32::MAX {
                    out.nodes[idx as usize].region.right = next_pos();
                }
            }
        }
    }
    debug_assert!(open.is_empty(), "walk closes every node it opens");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn doc(xml: &str) -> Document {
        parse(xml).unwrap()
    }

    /// Edited documents must be indistinguishable (modulo label-table
    /// ordering and exact region values) from a fresh parse: same shape,
    /// same tags, same text/attrs, dense preorder ids, well-nested
    /// regions.
    fn assert_well_formed(d: &Document) {
        for n in d.iter() {
            let r = d.region(n);
            assert!(r.left < r.right, "{n}: {r:?}");
            if let Some(p) = d.parent(n) {
                assert!(d.region(p).is_parent_of(&r), "{n} under {p}");
                assert!(p.index() < n.index(), "parent precedes child in preorder");
            } else {
                assert_eq!(n.index(), 0, "only the root lacks a parent");
                assert_eq!(r.level, 1);
            }
        }
        if !d.is_empty() {
            let pre: Vec<NodeId> = d.descendants_or_self(d.root()).collect();
            let seq: Vec<NodeId> = d.iter().collect();
            assert_eq!(pre, seq, "ids are dense preorder");
        }
        // Document order of start tags follows id order.
        for w in d.iter().collect::<Vec<_>>().windows(2) {
            assert!(d.region(w[0]).left < d.region(w[1]).left);
        }
    }

    fn shape(d: &Document) -> String {
        fn rec(d: &Document, n: NodeId, out: &mut String) {
            out.push_str(d.tag_name(n));
            out.push('(');
            for c in d.children(n) {
                rec(d, c, out);
            }
            out.push(')');
        }
        let mut s = String::new();
        if !d.is_empty() {
            rec(d, d.root(), &mut s);
        }
        s
    }

    #[test]
    fn first_insert_into_dense_document_renumbers() {
        let base = doc("<a><b/><c/></a>");
        let (edited, delta) = apply_op(
            &base,
            &EditOp::InsertSubtree {
                parent: Some(base.root()),
                position: 1,
                subtree: doc("<x><y/></x>"),
            },
        )
        .unwrap();
        assert!(delta.renumbered, "dense regions leave no gap");
        assert_eq!((delta.at, delta.removed, delta.inserted), (2, 0, 2));
        assert_eq!(shape(&edited), "a(b()x(y())c())");
        assert_well_formed(&edited);
        // Renumbered regions sit on the stride grid.
        for n in edited.iter() {
            assert_eq!(edited.region(n).left % RENUMBER_STRIDE, 0);
        }
    }

    #[test]
    fn second_insert_fits_the_gap() {
        let base = doc("<a><b/><c/></a>");
        let sub = || doc("<x/>");
        let (once, d1) = apply_op(
            &base,
            &EditOp::InsertSubtree { parent: Some(base.root()), position: 2, subtree: sub() },
        )
        .unwrap();
        assert!(d1.renumbered);
        let before: Vec<Region> = once.iter().map(|n| once.region(n)).collect();
        let (twice, d2) = apply_op(
            &once,
            &EditOp::InsertSubtree { parent: Some(once.root()), position: 3, subtree: sub() },
        )
        .unwrap();
        assert!(!d2.renumbered, "the renumbered document has gaps");
        assert_eq!(shape(&twice), "a(b()c()x()x())");
        assert_well_formed(&twice);
        // Every surviving node kept its region verbatim.
        for (i, r) in before.iter().enumerate() {
            assert_eq!(twice.region(NodeId::from_index(i)), *r, "survivor {i}");
        }
    }

    #[test]
    fn exhausting_the_gap_between_two_siblings_renumbers_again() {
        // Keep inserting single nodes between the first two children:
        // each insert subdivides the same sibling gap until the budget
        // (RENUMBER_STRIDE - 1 spare positions after a renumber) runs
        // out and a second renumber fires.
        let mut d = doc("<a><b/><c/></a>");
        let mut renumbers = 0;
        for _ in 0..12 {
            let (next, delta) = apply_op(
                &d,
                &EditOp::InsertSubtree {
                    parent: Some(d.root()),
                    position: 1,
                    subtree: doc("<x/>"),
                },
            )
            .unwrap();
            if delta.renumbered {
                renumbers += 1;
            }
            assert_well_formed(&next);
            d = next;
        }
        assert_eq!(d.len(), 15);
        assert!(
            renumbers >= 2,
            "the first insert renumbers, and repeated same-gap inserts \
             must exhaust the stride budget and renumber again ({renumbers})"
        );
        // Correctness after every renumber: shape intact, regions nested.
        assert_eq!(shape(&d).matches("x()").count(), 12);
    }

    #[test]
    fn delete_keeps_all_surviving_regions() {
        let base = doc("<a><b><c/><d/></b><e/></a>");
        let b = base.first_child(base.root()).unwrap();
        let (edited, delta) = apply_op(&base, &EditOp::DeleteSubtree { target: b }).unwrap();
        assert!(!delta.renumbered, "deletes never renumber");
        assert_eq!((delta.at, delta.removed, delta.inserted), (1, 3, 0));
        assert_eq!(delta.id_shift(), -3);
        assert_eq!(shape(&edited), "a(e())");
        assert_well_formed(&edited);
        assert_eq!(edited.region(edited.root()), base.region(base.root()));
        let e_old = base.next_sibling(b).unwrap();
        assert_eq!(edited.region(NodeId::from_index(1)), base.region(e_old));
    }

    #[test]
    fn delete_root_yields_the_empty_document_and_insert_revives_it() {
        let base = doc("<a><b/></a>");
        let (empty, delta) = apply_op(&base, &EditOp::DeleteSubtree { target: base.root() }).unwrap();
        assert!(empty.is_empty());
        assert_eq!(delta.removed, 2);
        // The label table survives emptiness (label ids stay stable).
        assert!(empty.labels().get("a").is_some());
        let (revived, delta) = apply_op(
            &empty,
            &EditOp::InsertSubtree { parent: None, position: 0, subtree: doc("<r><s/></r>") },
        )
        .unwrap();
        assert_eq!(shape(&revived), "r(s())");
        assert!(!delta.renumbered);
        assert_well_formed(&revived);
    }

    #[test]
    fn replace_splices_at_the_same_slot() {
        let base = doc("<a><b/><c><d/></c><e/></a>");
        let c = base
            .children(base.root())
            .nth(1)
            .unwrap();
        let (edited, delta) = apply_op(
            &base,
            &EditOp::ReplaceSubtree { target: c, subtree: doc("<z/>") },
        )
        .unwrap();
        assert_eq!(shape(&edited), "a(b()z()e())");
        assert_eq!((delta.at, delta.removed, delta.inserted), (2, 2, 1));
        assert_well_formed(&edited);
        // Replacing a 2-node subtree with 1 node fits the freed gap.
        assert!(!delta.renumbered);
    }

    #[test]
    fn replace_root_rebuilds_fresh() {
        let base = doc("<a><b/></a>");
        let (edited, delta) = apply_op(
            &base,
            &EditOp::ReplaceSubtree { target: base.root(), subtree: doc("<r><s/><t/></r>") },
        )
        .unwrap();
        assert_eq!(shape(&edited), "r(s()t())");
        assert!(!delta.renumbered, "nothing outside the splice exists to move");
        assert_eq!((delta.at, delta.removed, delta.inserted), (0, 2, 3));
        assert_well_formed(&edited);
    }

    #[test]
    fn text_and_attrs_ride_along() {
        let base = doc("<a x=\"1\"><b>keep</b><c>drop</c></a>");
        let c = base.children(base.root()).nth(1).unwrap();
        let mut nb = crate::DocumentBuilder::new();
        nb.leaf("n", "new").unwrap();
        let subtree = nb.finish().unwrap();
        let (edited, _) =
            apply_op(&base, &EditOp::ReplaceSubtree { target: c, subtree }).unwrap();
        assert_eq!(edited.attribute(edited.root(), "x"), Some("1"));
        let b = edited.first_child(edited.root()).unwrap();
        assert_eq!(edited.text(b), Some("keep"));
        let n = edited.next_sibling(b).unwrap();
        assert_eq!(edited.text(n), Some("new"));
        // Pure function: the input document is untouched.
        assert_eq!(base.text(c), Some("drop"));
    }

    #[test]
    fn changed_labels_cover_removed_and_inserted() {
        let base = doc("<a><b><c/></b></a>");
        let b = base.first_child(base.root()).unwrap();
        let (edited, delta) =
            apply_op(&base, &EditOp::ReplaceSubtree { target: b, subtree: doc("<x><c/></x>") })
                .unwrap();
        let names: Vec<&str> = delta
            .changed_labels
            .iter()
            .map(|&l| edited.labels().name(l))
            .collect();
        assert_eq!(names, vec!["b", "c", "x"]);
    }

    #[test]
    fn typed_errors_for_bad_ops() {
        let base = doc("<a><b/></a>");
        let bogus = NodeId::from_index(99);
        assert_eq!(
            apply_op(&base, &EditOp::DeleteSubtree { target: bogus }).unwrap_err(),
            EditError::InvalidNode(bogus)
        );
        assert_eq!(
            apply_op(
                &base,
                &EditOp::InsertSubtree {
                    parent: Some(base.root()),
                    position: 5,
                    subtree: doc("<x/>")
                }
            )
            .unwrap_err(),
            EditError::PositionOutOfRange { position: 5, arity: 1 }
        );
        assert_eq!(
            apply_op(
                &base,
                &EditOp::InsertSubtree {
                    parent: Some(base.root()),
                    position: 0,
                    subtree: Document::default()
                }
            )
            .unwrap_err(),
            EditError::EmptySubtree
        );
        assert_eq!(
            apply_op(
                &base,
                &EditOp::InsertSubtree { parent: None, position: 0, subtree: doc("<x/>") }
            )
            .unwrap_err(),
            EditError::SecondRoot
        );
    }

    #[test]
    fn deep_edits_do_not_recurse() {
        // A pathologically deep chain exercises the iterative walker.
        let mut b = crate::DocumentBuilder::new();
        for _ in 0..4000 {
            b.start_element("d").unwrap();
        }
        for _ in 0..4000 {
            b.end_element().unwrap();
        }
        let deep = b.finish().unwrap();
        let leaf = NodeId::from_index(3999);
        let (edited, delta) = apply_op(
            &deep,
            &EditOp::InsertSubtree { parent: Some(leaf), position: 0, subtree: doc("<x/>") },
        )
        .unwrap();
        assert_eq!(edited.len(), 4001);
        assert!(delta.renumbered);
        assert_eq!(edited.region(NodeId::from_index(4000)).level, 4001);
    }

    #[test]
    fn map_id_tracks_ids_through_a_splice() {
        // Delete <b><c/></b> (ids 1..3) from <a><b><c/></b><d/></a>.
        let base = doc("<a><b><c/></b><d/></a>");
        let (edited, delta) =
            apply_op(&base, &EditOp::DeleteSubtree { target: NodeId::from_index(1) }).unwrap();
        assert_eq!(delta.at, 1);
        assert_eq!(delta.removed, 2);
        assert_eq!(delta.id_shift(), -2);
        // Before the splice: unchanged. Inside: gone. After: shifted.
        assert_eq!(delta.map_id(0), Some(0));
        assert_eq!(delta.map_id(1), None);
        assert_eq!(delta.map_id(2), None);
        assert_eq!(delta.map_id(3), Some(1));
        // The mapped id binds the same element in the edited document.
        assert_eq!(edited.labels().name(edited.label(NodeId::from_index(1))), "d");

        // Composing across a second edit stays exact: <e/> takes id 1,
        // pushing d from 1 to 2 (ids ignore tag positions throughout).
        let (_, delta2) = apply_op(
            &edited,
            &EditOp::InsertSubtree { parent: Some(edited.root()), position: 0, subtree: doc("<e/>") },
        )
        .unwrap();
        assert_eq!(delta.map_id(3).and_then(|i| delta2.map_id(i)), Some(2));
    }
}
