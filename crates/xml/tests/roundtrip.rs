//! Property tests for the XML substrate: serializer/parser round-trips,
//! event-stream/DOM agreement, and region-encoding invariants over
//! generated documents.

use proptest::prelude::*;
use xmldom::{parse, write, DocEvents, Document, DocumentBuilder, Event, Indent};

/// Strategy: a random document built through the builder, with text and
/// attributes containing characters that need escaping.
fn doc_strategy() -> impl Strategy<Value = Document> {
    let name = prop::sample::select(vec!["a", "b", "item", "x-y", "ns:t", "_u"]);
    let text = prop::sample::select(vec!["", "plain", "a<b&c>'d\"", "  ws  ", "f&g"]);
    (
        prop::collection::vec((name.clone(), text.clone(), any::<bool>()), 1..40),
        prop::collection::vec(any::<bool>(), 1..40),
    )
        .prop_map(|(nodes, pops)| {
            let mut b = DocumentBuilder::new();
            b.start_element("root").unwrap();
            let mut depth = 1u32;
            for (i, (name, text, with_attr)) in nodes.iter().enumerate() {
                if pops.get(i).copied().unwrap_or(false) && depth > 1 {
                    b.end_element().unwrap();
                    depth -= 1;
                }
                b.start_element(name).unwrap();
                depth += 1;
                if *with_attr {
                    b.attr("k", text).unwrap();
                }
                if !text.trim().is_empty() {
                    b.text(text).unwrap();
                }
            }
            while depth > 0 {
                b.end_element().unwrap();
                depth -= 1;
            }
            b.finish().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// write → parse reproduces structure, regions, trimmed text, attrs.
    #[test]
    fn serialize_parse_round_trip(doc in doc_strategy()) {
        for indent in [Indent::None, Indent::Spaces(2)] {
            let xml = write(&doc, indent);
            let doc2 = parse(&xml).unwrap();
            prop_assert_eq!(doc.len(), doc2.len());
            for (a, b) in doc.iter().zip(doc2.iter()) {
                prop_assert_eq!(doc.tag_name(a), doc2.tag_name(b));
                if indent == Indent::None {
                    // Pretty-printing shifts tag positions; compact form
                    // reproduces the region encoding exactly.
                    prop_assert_eq!(doc.region(a), doc2.region(b));
                }
                prop_assert_eq!(doc.attribute(a, "k"), doc2.attribute(b, "k"));
                let ta = doc.text(a).map(str::trim).filter(|t| !t.is_empty());
                let tb = doc2.text(b).map(str::trim).filter(|t| !t.is_empty());
                prop_assert_eq!(ta, tb);
            }
        }
    }

    /// DOM events equal streaming events over the serialized form.
    #[test]
    fn events_agree_between_dom_and_stream(doc in doc_strategy()) {
        let xml = write(&doc, Indent::None);
        let dom: Vec<Event> = DocEvents::new(&doc).collect();
        let (stream, labels) = xmldom::EventParser::new(&xml).collect_events().unwrap();
        prop_assert_eq!(dom.len(), stream.len());
        for (d, s) in dom.iter().zip(&stream) {
            prop_assert_eq!(d.elem(), s.elem());
            prop_assert_eq!(
                doc.labels().name(d.label()),
                labels.name(s.label())
            );
        }
    }

    /// Region encodings nest exactly like the tree structure.
    #[test]
    fn regions_encode_ancestry(doc in doc_strategy()) {
        for n in doc.iter() {
            if let Some(p) = doc.parent(n) {
                prop_assert!(doc.region(p).is_parent_of(&doc.region(n)));
            }
            // Region-based ancestor test agrees with parent-chain walking
            // against the root (spot check, O(n) overall).
            let root = doc.root();
            if n != root {
                prop_assert!(doc.is_ancestor(root, n));
            }
        }
        // Pre-order ids sort by left position.
        let lefts: Vec<u32> = doc.iter().map(|n| doc.region(n).left).collect();
        prop_assert!(lefts.windows(2).all(|w| w[0] < w[1]));
    }
}
