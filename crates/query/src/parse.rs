//! Parser for an XPath-like twig/GTP syntax.
//!
//! Grammar (whitespace-insensitive between tokens):
//!
//! ```text
//! query    := ('/' | '//') step ( edge step )*
//! edge     := '/' | '//' | '/?' | '//?'          ('?' marks an optional edge)
//! step     := name valuepred? marker? pred*
//! valuepred := \"='text'\" | \"~'text'\"   (text equals / contains)
//! name     := [A-Za-z0-9_.:-]+ | '*'
//! marker   := '!'   (non-return node)
//!           | '@'   (group-return node)
//! pred     := '[' alt ( 'or' alt )* ']'
//! alt      := predhead step ( edge step )*
//! predhead := ''            (child axis)
//!           | '?'           (optional child axis)
//!           | '.'? edge     ('.//x', '//x', './x', '/x', with '?' variants)
//! ```
//!
//! A predicate with `or` alternatives (`[b or .//c]`) forms an OR-group
//! (AND/OR twigs, paper §3.3.3): the step is satisfied when any
//! alternative matches. Nodes inside a multi-alternative predicate are
//! forced to non-return roles — disjunctive branches check existence
//! only.
//!
//! Examples from the paper's Figure 15:
//!
//! * `//dblp/inproceedings[title]/author`
//! * `//dblp/article[author][.//title]//year`
//! * `/site/open_auctions[.//bidder/personref]//reserve`
//! * `//s/vp/pp[in]/np/vbn`
//!
//! By default every node is a **return** node (a "full twig query"); `!`
//! and `@` adjust individual roles, and `Gtp::single_return` /
//! `Gtp::set_role` can rewrite them after parsing.

use crate::gtp::{Axis, Gtp, GtpBuilder, QNodeId, Role, ValuePred};
use std::fmt;

/// Twig-syntax parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset into the query string.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse `input` into a [`Gtp`].
pub fn parse_twig(input: &str) -> Result<Gtp, QueryParseError> {
    Parser { input: input.as_bytes(), pos: 0 }.parse()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

#[derive(Clone, Copy)]
struct ParsedEdge {
    axis: Axis,
    optional: bool,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse(mut self) -> Result<Gtp, QueryParseError> {
        self.skip_ws();
        if !self.eat(b'/') {
            return Err(self.err("query must start with '/' or '//'"));
        }
        let rooted = !self.eat(b'/');
        let (name, marker) = self.parse_name_marker()?;
        let pred = self.parse_value_pred()?;
        let marker = marker.or(if pred.is_some() { self.reparse_marker() } else { None });
        let mut builder = GtpBuilder::new(&name, rooted);
        let root = builder.root();
        if let Some(p) = pred {
            builder.value_pred(root, p);
        }
        if let Some(role) = marker {
            builder.role(root, role);
        }
        self.parse_preds(&mut builder, root)?;
        self.parse_tail(&mut builder, root, 0)?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.err("trailing characters after query"));
        }
        Ok(builder.build())
    }

    /// Parse `( edge step )*` continuing from `node`.
    fn parse_tail(
        &mut self,
        builder: &mut GtpBuilder,
        mut node: QNodeId,
        depth: usize,
    ) -> Result<(), QueryParseError> {
        if depth > 256 {
            return Err(self.err("query nesting too deep"));
        }
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    let edge = self.parse_edge()?;
                    node = self.parse_step(builder, node, edge, depth)?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_edge(&mut self) -> Result<ParsedEdge, QueryParseError> {
        if !self.eat(b'/') {
            return Err(self.err("expected '/'"));
        }
        let axis = if self.eat(b'/') { Axis::Descendant } else { Axis::Child };
        let optional = self.eat(b'?');
        Ok(ParsedEdge { axis, optional })
    }

    /// Parse one step (name, marker, predicates) attached below `parent`.
    fn parse_step(
        &mut self,
        builder: &mut GtpBuilder,
        parent: QNodeId,
        edge: ParsedEdge,
        depth: usize,
    ) -> Result<QNodeId, QueryParseError> {
        let (name, marker) = self.parse_name_marker()?;
        let pred = self.parse_value_pred()?;
        let role = marker.or(if pred.is_some() { self.reparse_marker() } else { None })
            .unwrap_or(Role::Return);
        let node = builder.add(parent, &name, edge.axis, edge.optional, role);
        if let Some(p) = pred {
            builder.value_pred(node, p);
        }
        self.parse_preds(builder, node)?;
        let _ = depth;
        Ok(node)
    }

    /// `='text'` or `~'text'` directly after a step name (single-quoted,
    /// no escapes).
    fn parse_value_pred(&mut self) -> Result<Option<ValuePred>, QueryParseError> {
        let contains = match self.peek() {
            Some(b'=') => false,
            Some(b'~') => true,
            _ => return Ok(None),
        };
        self.pos += 1;
        if !self.eat(b'\'') {
            return Err(self.err("expected \"'\" to open the value literal"));
        }
        let start = self.pos;
        while self.peek().is_some_and(|b| b != b'\'') {
            self.pos += 1;
        }
        if self.peek().is_none() {
            return Err(self.err("unterminated value literal"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("query must be UTF-8"))?
            .to_string();
        self.pos += 1; // closing quote
        Ok(Some(if contains {
            ValuePred::TextContains(text)
        } else {
            ValuePred::TextEquals(text)
        }))
    }

    /// Role markers may also follow the value literal (`year='2006'!`).
    fn reparse_marker(&mut self) -> Option<Role> {
        if self.eat(b'!') {
            Some(Role::NonReturn)
        } else if self.eat(b'@') {
            Some(Role::GroupReturn)
        } else {
            None
        }
    }

    fn parse_preds(
        &mut self,
        builder: &mut GtpBuilder,
        node: QNodeId,
    ) -> Result<(), QueryParseError> {
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                return Ok(());
            }
            // Alternatives separated by the `or` keyword form an OR-group.
            let mut alternative_heads = Vec::new();
            let nodes_before = builder.node_count();
            loop {
                let head = self.parse_pred_alternative(builder, node)?;
                alternative_heads.push(head);
                self.skip_ws();
                if !self.eat_keyword(b"or") {
                    break;
                }
            }
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.err("expected ']' to close predicate"));
            }
            if alternative_heads.len() > 1 {
                builder.same_or_group(&alternative_heads);
                // Disjunctive branches are existence checks: force every
                // node added inside this predicate to non-return.
                for i in nodes_before..builder.node_count() {
                    builder.role(QNodeId::from_index_for_parser(i), Role::NonReturn);
                }
            }
        }
    }

    /// One predicate alternative: `predhead step (edge step)*`. Returns
    /// the alternative's first (top) node.
    fn parse_pred_alternative(
        &mut self,
        builder: &mut GtpBuilder,
        node: QNodeId,
    ) -> Result<QNodeId, QueryParseError> {
        self.skip_ws();
        let mut optional = self.eat(b'?');
        let mut axis = Axis::Child;
        if self.eat(b'.') {
            // ".//x" or "./x"
            if self.peek() != Some(b'/') {
                return Err(self.err("expected '/' after '.' in predicate"));
            }
            let e = self.parse_edge()?;
            axis = e.axis;
            optional |= e.optional;
        } else if self.peek() == Some(b'/') {
            let e = self.parse_edge()?;
            axis = e.axis;
            optional |= e.optional;
        }
        let edge = ParsedEdge { axis, optional };
        let first = self.parse_step(builder, node, edge, 0)?;
        self.parse_tail(builder, first, 0)?;
        Ok(first)
    }

    /// Consume the given keyword if it appears here followed by a
    /// non-name character (so `[x or y]` parses but `[xory]` is a name).
    fn eat_keyword(&mut self, kw: &[u8]) -> bool {
        let end = self.pos + kw.len();
        if self.input.len() < end || &self.input[self.pos..end] != kw {
            return false;
        }
        if self.input.get(end).is_some_and(|b| {
            b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
        }) {
            return false;
        }
        self.pos = end;
        true
    }

    fn parse_name_marker(&mut self) -> Result<(String, Option<Role>), QueryParseError> {
        self.skip_ws();
        let name = if self.eat(b'*') {
            "*".to_string()
        } else {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(self.err("expected an element name or '*'"));
            }
            std::str::from_utf8(&self.input[start..self.pos])
                .map_err(|_| self.err("query must be UTF-8"))?
                .to_string()
        };
        let marker = if self.eat(b'!') {
            Some(Role::NonReturn)
        } else if self.eat(b'@') {
            Some(Role::GroupReturn)
        } else {
            None
        };
        Ok((name, marker))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtp::NodeTest;

    #[test]
    fn parses_linear_path() {
        let g = parse_twig("//a/b//d").unwrap();
        assert_eq!(g.len(), 3);
        assert!(!g.is_rooted());
        let a = g.root();
        let b = g.children(a)[0];
        let d = g.children(b)[0];
        assert_eq!(g.edge(b).unwrap().axis, Axis::Child);
        assert_eq!(g.edge(d).unwrap().axis, Axis::Descendant);
        assert!(g.iter().all(|q| g.role(q) == Role::Return));
    }

    #[test]
    fn parses_rooted_query() {
        let g = parse_twig("/site/open_auctions").unwrap();
        assert!(g.is_rooted());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parses_figure1_twig() {
        // //A/B[//D][/C]
        let g = parse_twig("//a/b[//d][c]").unwrap();
        assert_eq!(g.len(), 4);
        let b = g.children(g.root())[0];
        let kids = g.children(b);
        assert_eq!(kids.len(), 2);
        assert_eq!(g.edge(kids[0]).unwrap().axis, Axis::Descendant);
        assert_eq!(g.edge(kids[1]).unwrap().axis, Axis::Child);
    }

    #[test]
    fn parses_paper_queries() {
        for q in [
            "//dblp/inproceedings[title]/author",
            "//dblp/article[author][.//title]//year",
            "//inproceedings[author][.//title]//booktitle",
            "/site/open_auctions[.//bidder/personref]//reserve",
            "//people//person[.//address/zipcode]/profile/education",
            "//item[location]/description//keyword",
            "//s/vp/pp[in]/np/vbn",
            "//s/vp//pp[.//np/vbn]/in",
            "//vp[dt]//prp_dollar_",
        ] {
            let g = parse_twig(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert!(g.len() >= 3, "{q}");
        }
    }

    #[test]
    fn predicate_with_nested_path() {
        let g = parse_twig("/site/open_auctions[.//bidder/personref]//reserve").unwrap();
        assert_eq!(g.len(), 5);
        let oa = g.children(g.root())[0];
        let kids = g.children(oa);
        assert_eq!(kids.len(), 2); // bidder (predicate), reserve (spine)
        let bidder = kids[0];
        assert_eq!(g.edge(bidder).unwrap().axis, Axis::Descendant);
        let personref = g.children(bidder)[0];
        assert_eq!(g.edge(personref).unwrap().axis, Axis::Child);
        let reserve = kids[1];
        assert_eq!(g.edge(reserve).unwrap().axis, Axis::Descendant);
    }

    #[test]
    fn markers_set_roles() {
        let g = parse_twig("//a!/b@[c!]//d").unwrap();
        assert_eq!(g.role(g.root()), Role::NonReturn);
        let b = g.children(g.root())[0];
        assert_eq!(g.role(b), Role::GroupReturn);
        let c = g.children(b)[0];
        assert_eq!(g.role(c), Role::NonReturn);
        let d = g.children(b)[1];
        assert_eq!(g.role(d), Role::Return);
    }

    #[test]
    fn optional_edges_parse() {
        let g = parse_twig("//a/?b//?c[?d]").unwrap();
        let b = g.children(g.root())[0];
        assert!(g.edge(b).unwrap().optional);
        assert_eq!(g.edge(b).unwrap().axis, Axis::Child);
        let c = g.children(b)[0];
        assert!(g.edge(c).unwrap().optional);
        assert_eq!(g.edge(c).unwrap().axis, Axis::Descendant);
        let d = g.children(c)[0];
        assert!(g.edge(d).unwrap().optional);
        assert_eq!(g.edge(d).unwrap().axis, Axis::Child);
    }

    #[test]
    fn wildcard_step() {
        let g = parse_twig("//a/*//b").unwrap();
        let star = g.children(g.root())[0];
        assert_eq!(*g.test(star), NodeTest::Wildcard);
        assert!(g.has_wildcard());
    }

    #[test]
    fn multiple_predicates_then_spine() {
        let g = parse_twig("//x[a][b][c]/y").unwrap();
        let kids = g.children(g.root());
        assert_eq!(kids.len(), 4);
        // spine child is last
        assert!(matches!(g.test(kids[3]), NodeTest::Name(n) if n == "y"));
    }

    #[test]
    fn whitespace_tolerated() {
        let g = parse_twig("  //a / b [ .//c ] // d  ").unwrap();
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn error_cases() {
        assert!(parse_twig("").is_err());
        assert!(parse_twig("a/b").is_err());
        assert!(parse_twig("//a[").is_err());
        assert!(parse_twig("//a[b").is_err());
        assert!(parse_twig("//a/").is_err());
        assert!(parse_twig("//a]b").is_err());
        assert!(parse_twig("//a[.b]").is_err());
        assert!(parse_twig("//").is_err());
    }

    #[test]
    fn display_round_trip_structure() {
        for q in [
            "//a/b[//d][c]",
            "//dblp/inproceedings[title]/author",
            "//a!/b@[c!]//d",
            "//a/?b//?c",
        ] {
            let g1 = parse_twig(q).unwrap();
            let g2 = parse_twig(&g1.to_string()).unwrap_or_else(|e| {
                panic!("re-parse of {} (printed {}) failed: {e}", q, g1)
            });
            assert_eq!(g1.len(), g2.len(), "{q} -> {g1}");
            for (n1, n2) in g1.preorder().into_iter().zip(g2.preorder()) {
                assert_eq!(g1.test(n1), g2.test(n2));
                assert_eq!(g1.role(n1), g2.role(n2));
                assert_eq!(g1.edge(n1), g2.edge(n2));
            }
        }
    }
}
