//! Query result representation.
//!
//! GTP results are tuples (paper §4.3): one column per return node in query
//! pre-order. A plain return column holds a single element (or null below
//! an unmatched optional edge); a group-return column holds the document-
//! ordered list of all matches grouped under their common ancestor match.

use crate::gtp::QNodeId;
use std::fmt;
use xmldom::NodeId;

/// One column value in a result row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A single matching element.
    Node(NodeId),
    /// No match (the column sits below an unmatched optional edge).
    Null,
    /// A grouped list of matches, in document order (possibly empty).
    Group(Vec<NodeId>),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Node(n) => write!(f, "{n}"),
            Cell::Null => f.write_str("-"),
            Cell::Group(g) => {
                f.write_str("{")?;
                for (i, n) in g.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{n}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A set of result rows with a fixed column schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultSet {
    /// The return / group-return query nodes, in query pre-order.
    pub columns: Vec<QNodeId>,
    /// Result tuples; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl ResultSet {
    /// An empty result set with the given schema.
    pub fn new(columns: Vec<QNodeId>) -> Self {
        ResultSet { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row. Debug-asserts the arity matches.
    pub fn push(&mut self, row: Vec<Cell>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// A canonical, order-insensitive form for set comparison in tests:
    /// rows sorted lexicographically.
    pub fn sorted(mut self) -> Self {
        self.rows.sort_by(|a, b| cmp_rows(a, b));
        self
    }

    /// True iff the rows contain no duplicates.
    pub fn is_duplicate_free(&self) -> bool {
        let mut sorted: Vec<&Vec<Cell>> = self.rows.iter().collect();
        sorted.sort_by(|a, b| cmp_rows(a, b));
        sorted.windows(2).all(|w| w[0] != w[1])
    }

    /// Total number of element references across all cells (a size measure
    /// used by experiments).
    pub fn element_refs(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|c| match c {
                Cell::Node(_) => 1,
                Cell::Null => 0,
                Cell::Group(g) => g.len(),
            })
            .sum()
    }
}

fn cell_key(c: &Cell) -> (u8, Vec<NodeId>) {
    match c {
        Cell::Null => (0, Vec::new()),
        Cell::Node(n) => (1, vec![*n]),
        Cell::Group(g) => (2, g.clone()),
    }
}

fn cmp_rows(a: &[Cell], b: &[Cell]) -> std::cmp::Ordering {
    let ka: Vec<_> = a.iter().map(cell_key).collect();
    let kb: Vec<_> = b.iter().map(cell_key).collect();
    ka.cmp(&kb)
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn push_and_len() {
        let mut rs = ResultSet::new(vec![QNodeId(0), QNodeId(1)]);
        assert!(rs.is_empty());
        rs.push(vec![Cell::Node(n(1)), Cell::Null]);
        rs.push(vec![Cell::Node(n(2)), Cell::Group(vec![n(3), n(4)])]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.element_refs(), 4);
    }

    #[test]
    fn sorted_is_canonical() {
        let mut a = ResultSet::new(vec![QNodeId(0)]);
        a.push(vec![Cell::Node(n(2))]);
        a.push(vec![Cell::Node(n(1))]);
        let mut b = ResultSet::new(vec![QNodeId(0)]);
        b.push(vec![Cell::Node(n(1))]);
        b.push(vec![Cell::Node(n(2))]);
        assert_ne!(a, b);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn duplicate_detection() {
        let mut rs = ResultSet::new(vec![QNodeId(0)]);
        rs.push(vec![Cell::Node(n(1))]);
        rs.push(vec![Cell::Node(n(1))]);
        assert!(!rs.is_duplicate_free());
        let mut rs2 = ResultSet::new(vec![QNodeId(0)]);
        rs2.push(vec![Cell::Node(n(1))]);
        rs2.push(vec![Cell::Node(n(2))]);
        assert!(rs2.is_duplicate_free());
    }

    #[test]
    fn display_forms() {
        let mut rs = ResultSet::new(vec![QNodeId(0), QNodeId(1)]);
        rs.push(vec![Cell::Node(n(1)), Cell::Group(vec![n(2), n(3)])]);
        rs.push(vec![Cell::Null, Cell::Group(vec![])]);
        let s = rs.to_string();
        assert!(s.contains("n1 | {n2,n3}"));
        assert!(s.contains("- | {}"));
    }
}
