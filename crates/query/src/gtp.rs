//! The Generalized Tree Pattern (GTP) model.
//!
//! A GTP (Chen et al., VLDB 2003; paper §2) generalizes a twig pattern:
//!
//! * edges carry an **axis** — parent-child (`/`) or ancestor-descendant
//!   (`//`) — and are **mandatory** (solid) or **optional** (dotted);
//! * nodes carry a **role** — plain return node, *group* return node
//!   (matches grouped under their common ancestor match, as produced by
//!   XQuery `LET`/`RETURN` expressions), or non-return (only existence
//!   matters).
//!
//! A plain twig query is the special case where every edge is mandatory and
//! every node is a return node.

use std::fmt;

/// Identifier of a query node within one [`Gtp`]. Ids are assigned in
/// insertion order; the root is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QNodeId(pub(crate) u32);

impl QNodeId {
    /// Raw index into the GTP node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from an index in `0..gtp.len()`. Exposed for the
    /// parser; meaningful only against the GTP it came from.
    #[doc(hidden)]
    pub fn from_index_for_parser(index: usize) -> Self {
        QNodeId(index as u32)
    }
}

impl fmt::Display for QNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What a query node matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// Match elements with this tag name.
    Name(String),
    /// `*`: match any element.
    Wildcard,
}

impl NodeTest {
    /// True iff this test accepts the tag name `name`.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard => true,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

/// A predicate on an element's own character data (paper §3.4 notes that
/// evaluating value predicates during the traversal shrinks the
/// hierarchical stacks). Matching requires a text source (the DOM);
/// structure-only streams cannot evaluate these.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValuePred {
    /// The element's direct text, trimmed, equals the string.
    TextEquals(String),
    /// The element's direct text contains the string.
    TextContains(String),
}

impl ValuePred {
    /// Apply the predicate to an element's direct text (`None` = no text).
    pub fn matches(&self, text: Option<&str>) -> bool {
        match self {
            ValuePred::TextEquals(v) => text.map(str::trim) == Some(v.as_str()),
            ValuePred::TextContains(v) => text.is_some_and(|t| t.contains(v.as_str())),
        }
    }
}

impl fmt::Display for ValuePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValuePred::TextEquals(v) => write!(f, "='{v}'"),
            ValuePred::TextContains(v) => write!(f, "~'{v}'"),
        }
    }
}

/// Structural axis of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/`: parent-child.
    Child,
    /// `//`: ancestor-descendant.
    Descendant,
}

impl Axis {
    /// True for the parent-child axis.
    #[inline]
    pub fn is_pc(self) -> bool {
        matches!(self, Axis::Child)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
        })
    }
}

/// Role of a query node in the result (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Role {
    /// A column in the output; one tuple per match.
    #[default]
    Return,
    /// A column in the output; matches are grouped into a list under their
    /// common ancestor match (XQuery `LET` / `RETURN`).
    GroupReturn,
    /// Only existence matters; produces no column.
    NonReturn,
}

impl Role {
    /// True for [`Role::Return`] or [`Role::GroupReturn`].
    #[inline]
    pub fn is_output(self) -> bool {
        !matches!(self, Role::NonReturn)
    }
}

/// The incoming edge of a non-root query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Parent-child or ancestor-descendant.
    pub axis: Axis,
    /// Optional (dotted) edges need not be satisfied for the upper element
    /// to match; mandatory (solid) edges must be.
    pub optional: bool,
}

#[derive(Debug, Clone)]
struct GtpNode {
    test: NodeTest,
    role: Role,
    parent: Option<QNodeId>,
    /// `None` only for the root.
    edge: Option<Edge>,
    children: Vec<QNodeId>,
    /// OR-group id (paper §3.3.3, AND/OR twigs \[14\]): sibling steps that
    /// share a group are combined with OR instead of AND. Unique by
    /// default (every step its own group = plain AND semantics).
    or_group: u32,
    /// Optional predicate on the element's own text.
    value_pred: Option<ValuePred>,
}

/// A Generalized Tree Pattern query.
///
/// Build one with [`GtpBuilder`], [`crate::parse::parse_twig`], or
/// [`crate::xquery::translate`].
#[derive(Debug, Clone)]
pub struct Gtp {
    nodes: Vec<GtpNode>,
    /// `true` iff the query is anchored at the document root (`/a/...`):
    /// the root query node then only matches elements at level 1.
    rooted: bool,
}

impl Gtp {
    /// The root query node (always id 0).
    #[inline]
    pub fn root(&self) -> QNodeId {
        QNodeId(0)
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the query holds no nodes. Builders never produce this.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the query is anchored at the document root.
    #[inline]
    pub fn is_rooted(&self) -> bool {
        self.rooted
    }

    /// The node test of `q`.
    #[inline]
    pub fn test(&self, q: QNodeId) -> &NodeTest {
        &self.nodes[q.index()].test
    }

    /// The role of `q`.
    #[inline]
    pub fn role(&self, q: QNodeId) -> Role {
        self.nodes[q.index()].role
    }

    /// The parent of `q`, `None` for the root.
    #[inline]
    pub fn parent(&self, q: QNodeId) -> Option<QNodeId> {
        self.nodes[q.index()].parent
    }

    /// The incoming edge of `q`, `None` for the root.
    #[inline]
    pub fn edge(&self, q: QNodeId) -> Option<Edge> {
        self.nodes[q.index()].edge
    }

    /// Children of `q` in insertion order.
    #[inline]
    pub fn children(&self, q: QNodeId) -> &[QNodeId] {
        &self.nodes[q.index()].children
    }

    /// The OR-group id of `q`'s incoming step. Sibling steps sharing a
    /// group are disjunctive: the parent is satisfied when *any* of them
    /// is (for mandatory steps). Ids are only meaningful for equality
    /// among siblings.
    #[inline]
    pub fn or_group(&self, q: QNodeId) -> u32 {
        self.nodes[q.index()].or_group
    }

    /// The value predicate of `q`, if any.
    #[inline]
    pub fn value_pred(&self, q: QNodeId) -> Option<&ValuePred> {
        self.nodes[q.index()].value_pred.as_ref()
    }

    /// Attach a value predicate to `q`.
    pub fn set_value_pred(&mut self, q: QNodeId, pred: Option<ValuePred>) {
        self.nodes[q.index()].value_pred = pred;
    }

    /// True iff any node carries a value predicate — evaluation then
    /// needs a text source (the DOM).
    pub fn has_value_preds(&self) -> bool {
        self.iter().any(|q| self.value_pred(q).is_some())
    }

    /// True iff any sibling set shares an OR-group (the query uses
    /// AND/OR semantics). The decomposition-based baselines reject such
    /// queries.
    pub fn has_or_groups(&self) -> bool {
        self.iter().any(|q| {
            self.children(q).iter().any(|&c| {
                self.children(q)
                    .iter()
                    .any(|&d| d != c && self.or_group(d) == self.or_group(c))
            })
        })
    }

    /// Iterate over all node ids, root first, in insertion (pre-order if
    /// built by the parser) order.
    pub fn iter(&self) -> impl Iterator<Item = QNodeId> + '_ {
        (0..self.nodes.len() as u32).map(QNodeId)
    }

    /// Node ids in a guaranteed pre-order (parent before child) traversal.
    pub fn preorder(&self) -> Vec<QNodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root()];
        while let Some(q) = stack.pop() {
            out.push(q);
            for &c in self.children(q).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Node ids in post-order (children before parent).
    pub fn postorder(&self) -> Vec<QNodeId> {
        let mut out = self.preorder();
        out.reverse();
        // Reversed preorder is not postorder in general; do it properly.
        out.clear();
        self.postorder_into(self.root(), &mut out);
        out
    }

    fn postorder_into(&self, q: QNodeId, out: &mut Vec<QNodeId>) {
        for &c in self.children(q) {
            self.postorder_into(c, out);
        }
        out.push(q);
    }

    /// True iff `q` is a leaf query node.
    pub fn is_leaf(&self, q: QNodeId) -> bool {
        self.children(q).is_empty()
    }

    /// Change the role of a node (used to derive GTP variants of a twig).
    pub fn set_role(&mut self, q: QNodeId, role: Role) {
        self.nodes[q.index()].role = role;
    }

    /// Make the incoming edge of `q` optional or mandatory.
    ///
    /// # Panics
    /// Panics if `q` is the root (it has no incoming edge).
    pub fn set_edge_optional(&mut self, q: QNodeId, optional: bool) {
        self.nodes[q.index()]
            .edge
            .as_mut()
            .expect("root has no incoming edge")
            .optional = optional;
    }

    /// Set every node's role to [`Role::Return`] (a "full twig query").
    pub fn all_return(mut self) -> Self {
        for n in &mut self.nodes {
            n.role = Role::Return;
        }
        self
    }

    /// Set XPath result semantics: the given node is the only return node,
    /// all others become [`Role::NonReturn`].
    pub fn single_return(mut self, ret: QNodeId) -> Self {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            n.role = if i == ret.index() {
                Role::Return
            } else {
                Role::NonReturn
            };
        }
        self
    }

    /// Find the first node (pre-order) whose test is the given name.
    pub fn find(&self, name: &str) -> Option<QNodeId> {
        self.preorder()
            .into_iter()
            .find(|&q| matches!(self.test(q), NodeTest::Name(n) if n == name))
    }

    /// Distinct label names mentioned by the query (wildcards excluded).
    pub fn label_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.test {
                NodeTest::Name(s) => Some(s.as_str()),
                NodeTest::Wildcard => None,
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// True iff any node is a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.nodes.iter().any(|n| n.test == NodeTest::Wildcard)
    }

    /// Label names a document **must** contain to produce any match —
    /// the zero-false-negative routing set for multi-document catalogs.
    ///
    /// A query node is *mandatory* when every edge on its root path is
    /// solid (non-optional) and no node on that path sits in a
    /// multi-member OR-group (an OR member can be absent as long as a
    /// sibling alternative matches). Every mandatory node with a name
    /// test must bind to some element, so its label must exist in the
    /// document; optional/OR branches and wildcards contribute nothing.
    /// Value predicates are irrelevant here — the element's *presence*
    /// is still required even if its text decides the match.
    ///
    /// The result is sorted and deduplicated, like [`Self::label_names`].
    ///
    /// The set can legitimately be **empty** — e.g. `//*`, `//*/*`, or a
    /// named query whose every name sits behind an optional edge or
    /// OR-group. Empty means "no routing evidence", not "matches
    /// nothing": consumers (`twigserve::catalog` routing) must treat it
    /// as route-everywhere.
    pub fn required_label_names(&self) -> Vec<&str> {
        let mut mandatory = vec![false; self.len()];
        mandatory[self.root().index()] = true;
        let mut names: Vec<&str> = Vec::new();
        for q in self.preorder() {
            let on_solid_path = match self.parent(q) {
                None => true,
                Some(p) => {
                    mandatory[p.index()]
                        && !self.edge(q).is_some_and(|e| e.optional)
                        && !self
                            .children(p)
                            .iter()
                            .any(|&d| d != q && self.or_group(d) == self.or_group(q))
                }
            };
            mandatory[q.index()] = on_solid_path;
            if on_solid_path {
                if let NodeTest::Name(n) = self.test(q) {
                    names.push(n.as_str());
                }
            }
        }
        names.sort_unstable();
        names.dedup();
        names
    }
}

impl fmt::Display for Gtp {
    /// Render back to (extended) twig syntax. Predicate branches are printed
    /// in `[...]` groups; the last child continues the spine.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn edge_str(e: Edge) -> &'static str {
            match (e.axis, e.optional) {
                (Axis::Child, false) => "/",
                (Axis::Descendant, false) => "//",
                (Axis::Child, true) => "/?",
                (Axis::Descendant, true) => "//?",
            }
        }
        fn node(g: &Gtp, q: QNodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", g.test(q))?;
            if let Some(p) = g.value_pred(q) {
                write!(f, "{p}")?;
            }
            match g.role(q) {
                Role::Return => {}
                Role::GroupReturn => write!(f, "@")?,
                Role::NonReturn => write!(f, "!")?,
            }
            let kids = g.children(q);
            if kids.is_empty() {
                return Ok(());
            }
            let (last, preds) = kids.split_last().unwrap();
            let pred_head = |p: QNodeId| {
                let e = g.edge(p).unwrap();
                match (e.axis, e.optional) {
                    (Axis::Child, false) => "",
                    (Axis::Child, true) => "?",
                    (Axis::Descendant, false) => ".//",
                    (Axis::Descendant, true) => ".//?",
                }
            };
            let mut i = 0;
            while i < preds.len() {
                // Emit one bracket per OR-group run.
                let group = g.or_group(preds[i]);
                write!(f, "[{}", pred_head(preds[i]))?;
                node(g, preds[i], f)?;
                let mut j = i + 1;
                while j < preds.len() && g.or_group(preds[j]) == group {
                    write!(f, " or {}", pred_head(preds[j]))?;
                    node(g, preds[j], f)?;
                    j += 1;
                }
                write!(f, "]")?;
                i = j;
            }
            write!(f, "{}", edge_str(g.edge(*last).unwrap()))?;
            node(g, *last, f)
        }
        write!(f, "{}", if self.rooted { "/" } else { "//" })?;
        node(self, self.root(), f)
    }
}

/// Programmatic constructor for [`Gtp`]s.
///
/// ```
/// use gtpquery::gtp::{GtpBuilder, Axis, Role};
/// // //a/b[//d][/c]   (paper Figure 1's twig query)
/// let mut b = GtpBuilder::new("a", false);
/// let a = b.root();
/// let bq = b.child(a, "b", Axis::Child);
/// b.child(bq, "d", Axis::Descendant);
/// b.child(bq, "c", Axis::Child);
/// let gtp = b.build();
/// assert_eq!(gtp.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GtpBuilder {
    gtp: Gtp,
}

impl GtpBuilder {
    /// Start a query whose root node tests `root_name` (use `"*"` for a
    /// wildcard). `rooted` anchors the query at the document root.
    pub fn new(root_name: &str, rooted: bool) -> Self {
        let test = if root_name == "*" {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(root_name.to_string())
        };
        GtpBuilder {
            gtp: Gtp {
                nodes: vec![GtpNode {
                    test,
                    role: Role::Return,
                    parent: None,
                    edge: None,
                    children: Vec::new(),
                    or_group: 0,
                    value_pred: None,
                }],
                rooted,
            },
        }
    }

    /// The root node id.
    pub fn root(&self) -> QNodeId {
        self.gtp.root()
    }

    /// Add a mandatory child of `parent` via `axis`.
    pub fn child(&mut self, parent: QNodeId, name: &str, axis: Axis) -> QNodeId {
        self.add(parent, name, axis, false, Role::Return)
    }

    /// Add a child with full control over edge optionality and role.
    pub fn add(
        &mut self,
        parent: QNodeId,
        name: &str,
        axis: Axis,
        optional: bool,
        role: Role,
    ) -> QNodeId {
        let test = if name == "*" {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(name.to_string())
        };
        let id = QNodeId(self.gtp.nodes.len() as u32);
        self.gtp.nodes.push(GtpNode {
            test,
            role,
            parent: Some(parent),
            edge: Some(Edge { axis, optional }),
            children: Vec::new(),
            or_group: id.0, // unique by default: plain AND semantics
            value_pred: None,
        });
        self.gtp.nodes[parent.index()].children.push(id);
        id
    }

    /// Put the given sibling steps into one OR-group: their parent is
    /// satisfied when any of them is. All members must share a parent.
    ///
    /// # Panics
    /// Panics if the nodes are not siblings.
    pub fn same_or_group(&mut self, members: &[QNodeId]) -> &mut Self {
        let Some((&first, rest)) = members.split_first() else {
            return self;
        };
        let parent = self.gtp.parent(first);
        let group = self.gtp.nodes[first.index()].or_group;
        for &m in rest {
            assert_eq!(
                self.gtp.parent(m),
                parent,
                "OR-group members must be siblings"
            );
            self.gtp.nodes[m.index()].or_group = group;
        }
        self
    }

    /// Set a node's role.
    pub fn role(&mut self, q: QNodeId, role: Role) -> &mut Self {
        self.gtp.set_role(q, role);
        self
    }

    /// Attach a value predicate to a node.
    pub fn value_pred(&mut self, q: QNodeId, pred: ValuePred) -> &mut Self {
        self.gtp.set_value_pred(q, Some(pred));
        self
    }

    /// Number of nodes added so far (the next node's index).
    pub fn node_count(&self) -> usize {
        self.gtp.len()
    }

    /// Finish building.
    pub fn build(self) -> Gtp {
        self.gtp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_query() -> Gtp {
        // //A/B[//D][/C] with all nodes returning.
        let mut b = GtpBuilder::new("a", false);
        let a = b.root();
        let bq = b.child(a, "b", Axis::Child);
        b.child(bq, "d", Axis::Descendant);
        b.child(bq, "c", Axis::Child);
        b.build()
    }

    #[test]
    fn structure_accessors() {
        let g = figure1_query();
        let root = g.root();
        assert_eq!(g.len(), 4);
        assert!(g.test(root).matches("a"));
        assert!(!g.test(root).matches("b"));
        assert_eq!(g.parent(root), None);
        assert_eq!(g.edge(root), None);
        let bq = g.children(root)[0];
        assert_eq!(g.parent(bq), Some(root));
        assert_eq!(
            g.edge(bq),
            Some(Edge {
                axis: Axis::Child,
                optional: false
            })
        );
        assert_eq!(g.children(bq).len(), 2);
        assert!(!g.is_rooted());
    }

    #[test]
    fn traversal_orders() {
        let g = figure1_query();
        let pre = g.preorder();
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], g.root());
        // parent precedes child
        for &q in &pre {
            if let Some(p) = g.parent(q) {
                let pi = pre.iter().position(|&x| x == p).unwrap();
                let qi = pre.iter().position(|&x| x == q).unwrap();
                assert!(pi < qi);
            }
        }
        let post = g.postorder();
        assert_eq!(post.last(), Some(&g.root()));
        for &q in &post {
            if let Some(p) = g.parent(q) {
                let pi = post.iter().position(|&x| x == p).unwrap();
                let qi = post.iter().position(|&x| x == q).unwrap();
                assert!(qi < pi);
            }
        }
    }

    #[test]
    fn role_manipulation() {
        let g = figure1_query();
        let d = g.find("d").unwrap();
        let g2 = g.clone().single_return(d);
        assert_eq!(g2.role(d), Role::Return);
        assert_eq!(g2.role(g2.root()), Role::NonReturn);
        let g3 = g2.all_return();
        assert!(g3.iter().all(|q| g3.role(q) == Role::Return));
    }

    #[test]
    fn optional_edges() {
        let mut g = figure1_query();
        let c = g.find("c").unwrap();
        assert!(!g.edge(c).unwrap().optional);
        g.set_edge_optional(c, true);
        assert!(g.edge(c).unwrap().optional);
    }

    #[test]
    #[should_panic]
    fn optional_root_edge_panics() {
        let mut g = figure1_query();
        let r = g.root();
        g.set_edge_optional(r, true);
    }

    #[test]
    fn label_names_and_wildcards() {
        let mut b = GtpBuilder::new("a", false);
        let a = b.root();
        b.child(a, "*", Axis::Descendant);
        b.child(a, "b", Axis::Child);
        let g = b.build();
        assert_eq!(g.label_names(), vec!["a", "b"]);
        assert!(g.has_wildcard());
    }

    #[test]
    fn required_labels_follow_solid_paths_only() {
        // //a/b[//d][/c] — every edge solid and AND-combined: all four
        // labels are required.
        let g = figure1_query();
        assert_eq!(g.required_label_names(), vec!["a", "b", "c", "d"]);
        // Making the b edge optional severs b's whole subtree from the
        // required set — a document of bare <a/>s can still match.
        let mut opt = figure1_query();
        let bq = opt.find("b").unwrap();
        opt.set_edge_optional(bq, true);
        assert_eq!(opt.required_label_names(), vec!["a"]);
    }

    #[test]
    fn required_labels_skip_or_group_members_and_wildcards() {
        // //a[b or c]/*/d! — b/c are OR alternatives (either may be
        // absent), the wildcard names nothing, but d below the wildcard
        // is still on an all-solid path.
        let mut b = GtpBuilder::new("a", false);
        let a = b.root();
        let bq = b.child(a, "b", Axis::Child);
        let cq = b.child(a, "c", Axis::Child);
        b.same_or_group(&[bq, cq]);
        let w = b.child(a, "*", Axis::Child);
        b.add(w, "d", Axis::Child, false, Role::NonReturn);
        let g = b.build();
        assert_eq!(g.required_label_names(), vec!["a", "d"]);
    }

    #[test]
    fn display_round_readable() {
        let g = figure1_query();
        let s = g.to_string();
        assert!(s.starts_with("//a"), "{s}");
        assert!(s.contains('b'), "{s}");
    }

    #[test]
    fn find_by_name() {
        let g = figure1_query();
        assert!(g.find("d").is_some());
        assert!(g.find("zzz").is_none());
    }
}
