//! Static analysis of GTP queries.
//!
//! Computes the properties the matching and enumeration algorithms need:
//!
//! * **existence-checking** nodes (paper §3.5): non-return nodes with no
//!   return node below them — their hierarchical stacks can be truncated to
//!   root-stack tops and never receive result edges;
//! * the **top branch node** (paper §4.4) that triggers early result
//!   enumeration;
//! * the **output schema** (one column per return / group-return node);
//! * validity checks (e.g. footnote 6: a non-return node may have at most
//!   one non-existence-checking child for enumeration to be well-defined);
//! * **summary feasibility** ([`SummaryFeasibility`]): the GTP evaluated
//!   against a document's path summary (strong DataGuide), yielding the
//!   set of label paths each query node can possibly match — the basis
//!   for pruned streams and the zero-read short-circuit of queries no
//!   path of the document can satisfy.

use crate::gtp::{Axis, Gtp, NodeTest, QNodeId, Role};
use xmldom::{Label, LabelTable};
use xmlindex::summary::{RegionCover, SummaryRef, SummarySet};

/// Precomputed per-node facts about a [`Gtp`].
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// `output_below[q]` — does the subtree rooted at `q` (inclusive)
    /// contain a return or group-return node?
    output_below: Vec<bool>,
    /// `existence[q]` — is `q` an existence-checking node?
    existence: Vec<bool>,
    /// Output columns in query pre-order.
    columns: Vec<QNodeId>,
    /// The node whose top-down-stack pops trigger early enumeration.
    top_branch: QNodeId,
    /// Per query node: the OR-groups of its *mandatory* children, as
    /// child-position lists (singletons for plain AND steps). Members of
    /// one group need not be adjacent in the child list.
    mandatory_groups: Vec<Vec<Vec<usize>>>,
    /// Non-fatal issues found during analysis.
    issues: Vec<ValidationIssue>,
    /// Query-side reason document-partitioned parallel evaluation must use
    /// the serial path, if any.
    parallel_fallback: Option<ParallelFallback>,
}

/// Why document-partitioned parallel evaluation of a query must fall back
/// to the serial path (see `twig2stack::parallel`).
///
/// The spine-replay merge makes partitioning sound for rooted queries,
/// root-recursive labels, and wildcards (spine elements are matched
/// serially, after the per-chunk encodings are spliced back in document
/// order), so only query shapes that leave the workers with no useful work
/// are classified here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelFallback {
    /// A rooted single-node query (e.g. `/dblp`): only level-1 elements can
    /// match, and those live on the spine — every chunk worker would be
    /// idle while the serial spine replay does all the matching.
    RootedSingleNode,
}

/// Problems that make a GTP unusual or unsupported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A non-return node has more than one child subtree containing output
    /// nodes. XPath/XQuery cannot produce such GTPs (paper footnote 6) and
    /// result enumeration for them is not defined.
    NonReturnWithMultipleOutputBranches(QNodeId),
    /// The query produces no output columns at all (pure boolean query).
    NoOutputNodes,
    /// An output node sits below an optional edge whose upper node is
    /// *not* an output node — results may contain nulls for it.
    OptionalOutput(QNodeId),
    /// A group-return node has further output nodes below it. Grouping is a
    /// leaf-of-the-output-schema concept (XQuery `LET`/`RETURN` bind flat
    /// sequences); enumeration under such a node is not defined.
    GroupWithOutputBelow(QNodeId),
    /// A member of a multi-step OR-group carries output nodes. Disjunctive
    /// branches are existence checks (AND/OR twigs, paper §3.3.3);
    /// returning from "whichever branch happened to match" is not defined.
    OrBranchWithOutput(QNodeId),
}

impl QueryAnalysis {
    /// Analyze `gtp`.
    pub fn new(gtp: &Gtp) -> Self {
        let n = gtp.len();
        let mut output_below = vec![false; n];
        for q in gtp.postorder() {
            let mut below = gtp.role(q).is_output();
            for &c in gtp.children(q) {
                below |= output_below[c.index()];
            }
            output_below[q.index()] = below;
        }

        let mut existence = vec![false; n];
        for q in gtp.iter() {
            existence[q.index()] = !output_below[q.index()];
        }

        let columns: Vec<QNodeId> = gtp
            .preorder()
            .into_iter()
            .filter(|&q| gtp.role(q).is_output())
            .collect();

        let mut issues = Vec::new();
        if columns.is_empty() {
            issues.push(ValidationIssue::NoOutputNodes);
        }
        for q in gtp.iter() {
            if gtp.role(q) == Role::NonReturn {
                let live = gtp
                    .children(q)
                    .iter()
                    .filter(|&&c| output_below[c.index()])
                    .count();
                if live > 1 {
                    issues.push(ValidationIssue::NonReturnWithMultipleOutputBranches(q));
                }
            }
            if gtp.role(q) == Role::GroupReturn {
                let below = gtp
                    .children(q)
                    .iter()
                    .any(|&c| output_below[c.index()]);
                if below {
                    issues.push(ValidationIssue::GroupWithOutputBelow(q));
                }
            }
            if let Some(e) = gtp.edge(q) {
                if e.optional && output_below[q.index()] {
                    issues.push(ValidationIssue::OptionalOutput(q));
                }
            }
            // Members of multi-step OR-groups must be pure existence checks.
            let kids = gtp.children(q);
            for &c in kids {
                let shared = kids
                    .iter()
                    .any(|&d| d != c && gtp.or_group(d) == gtp.or_group(c));
                if shared && output_below[c.index()] {
                    issues.push(ValidationIssue::OrBranchWithOutput(c));
                }
            }
        }

        // Top branch node: the highest query node with >= 2 children;
        // if the query is a linear path, its deepest node.
        let mut top_branch = None;
        for q in gtp.preorder() {
            if gtp.children(q).len() >= 2 {
                top_branch = Some(q);
                break;
            }
        }
        let top_branch = top_branch.unwrap_or_else(|| {
            let mut q = gtp.root();
            while let Some(&c) = gtp.children(q).first() {
                q = c;
            }
            q
        });

        // Mandatory children grouped by OR-group id (first-occurrence
        // order), as positions into the child list.
        let mandatory_groups = gtp
            .iter()
            .map(|q| {
                let kids = gtp.children(q);
                let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
                for (i, &m) in kids.iter().enumerate() {
                    if gtp.edge(m).expect("child edge").optional {
                        continue;
                    }
                    let gid = gtp.or_group(m);
                    match groups.iter_mut().find(|(g, _)| *g == gid) {
                        Some((_, members)) => members.push(i),
                        None => groups.push((gid, vec![i])),
                    }
                }
                groups.into_iter().map(|(_, m)| m).collect()
            })
            .collect();

        let parallel_fallback = if gtp.is_rooted() && gtp.len() == 1 {
            Some(ParallelFallback::RootedSingleNode)
        } else {
            None
        };

        QueryAnalysis {
            output_below,
            existence,
            columns,
            top_branch,
            mandatory_groups,
            issues,
            parallel_fallback,
        }
    }

    /// The OR-groups of `q`'s mandatory children, as positions into
    /// `gtp.children(q)`. `q` is satisfied when every group has at least
    /// one satisfied member.
    #[inline]
    pub fn mandatory_groups(&self, q: QNodeId) -> &[Vec<usize>] {
        &self.mandatory_groups[q.index()]
    }

    /// Does the subtree rooted at `q` contain any output node?
    #[inline]
    pub fn has_output_below(&self, q: QNodeId) -> bool {
        self.output_below[q.index()]
    }

    /// Is `q` an existence-checking node (paper §3.5)?
    #[inline]
    pub fn is_existence_checking(&self, q: QNodeId) -> bool {
        self.existence[q.index()]
    }

    /// Output columns (return and group-return nodes) in query pre-order.
    pub fn columns(&self) -> &[QNodeId] {
        &self.columns
    }

    /// Position of `q` in the output schema, if it is an output node.
    pub fn column_of(&self, q: QNodeId) -> Option<usize> {
        self.columns.iter().position(|&c| c == q)
    }

    /// The top branch node for early result enumeration (paper §4.4).
    #[inline]
    pub fn top_branch(&self) -> QNodeId {
        self.top_branch
    }

    /// Issues found during analysis. Empty ⇒ the query is fully supported.
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// Query-side reason partitioned parallel evaluation must run serially,
    /// or `None` when chunk workers can contribute.
    #[inline]
    pub fn parallel_fallback(&self) -> Option<ParallelFallback> {
        self.parallel_fallback
    }

    /// True iff result enumeration is well-defined for this query
    /// (no [`ValidationIssue::NonReturnWithMultipleOutputBranches`]).
    pub fn enumerable(&self) -> bool {
        !self.issues.iter().any(|i| {
            matches!(
                i,
                ValidationIssue::NonReturnWithMultipleOutputBranches(_)
                    | ValidationIssue::GroupWithOutputBelow(_)
                    | ValidationIssue::OrBranchWithOutput(_)
            )
        })
    }
}

/// The GTP evaluated against a document's path summary: for every query
/// node, the set of summary ids (label paths) whose elements could
/// participate in *some* complete match.
///
/// The sets are a sound over-approximation: an element whose summary id is
/// outside its query node's set provably cannot appear in (or witness) any
/// result row, so streams may drop it without changing results. An empty
/// set on the root means **no** document element can match the query at
/// all — callers short-circuit to an empty result with zero stream reads.
///
/// Computed in two passes over the (tiny) summary tree:
///
/// 1. **bottom-up**: `up[q]` = paths whose label matches `q`'s test and
///    that can reach, via each mandatory OR-group's axis, some path in
///    some group member's `up` set (optional edges never gate; an OR-group
///    needs one feasible member). A rooted query restricts the root to
///    depth-1 paths.
/// 2. **top-down**: `down[q]` = `up[q]` restricted to paths reachable from
///    the parent's `down` set via `q`'s axis, so infeasible context above
///    a node prunes its stream too.
#[derive(Debug, Clone)]
pub struct SummaryFeasibility {
    /// `down[q]`, indexed by `QNodeId::index()`.
    sets: Vec<SummarySet>,
    satisfiable: bool,
}

impl SummaryFeasibility {
    /// Evaluate `gtp` against `summary`. `labels` is the document's label
    /// table (summary nodes store interned labels).
    pub fn compute(gtp: &Gtp, summary: SummaryRef<'_>, labels: &LabelTable) -> Self {
        let ns = summary.len();
        let nq = gtp.len();
        let mut up: Vec<SummarySet> = vec![SummarySet::empty(ns); nq];

        for q in gtp.postorder() {
            // Candidate paths by node test (and depth for a rooted root).
            let mut set = SummarySet::empty(ns);
            let want: Option<Option<Label>> = match gtp.test(q) {
                NodeTest::Name(n) => Some(labels.get(n)),
                NodeTest::Wildcard => None,
            };
            for (sid, node) in summary.nodes().iter().enumerate() {
                let label_ok = match &want {
                    None => true,
                    Some(Some(l)) => node.label == *l,
                    Some(None) => false, // name absent from the document
                };
                let depth_ok = !(q == gtp.root() && gtp.is_rooted()) || node.depth == 1;
                if label_ok && depth_ok {
                    set.insert(sid as u32);
                }
            }
            // Every mandatory OR-group must have a reachable feasible
            // member; optional children never gate their parent.
            let kids = gtp.children(q);
            let mut groups: Vec<(u32, SummarySet)> = Vec::new();
            for &m in kids {
                let edge = gtp.edge(m).expect("child edge");
                if edge.optional {
                    continue;
                }
                let mut reach = SummarySet::empty(ns);
                for s in up[m.index()].iter() {
                    let mut cur = summary.node(s).parent();
                    while let Some(p) = cur {
                        reach.insert(p);
                        if edge.axis == Axis::Child {
                            break;
                        }
                        cur = summary.node(p).parent();
                    }
                }
                let gid = gtp.or_group(m);
                match groups.iter_mut().find(|(g, _)| *g == gid) {
                    Some((_, g)) => g.union(&reach),
                    None => groups.push((gid, reach)),
                }
            }
            for (_, g) in &groups {
                set.intersect(g);
            }
            up[q.index()] = set;
        }

        let mut down = up;
        for q in gtp.preorder() {
            let Some(parent) = gtp.parent(q) else { continue };
            let axis = gtp.edge(q).expect("child edge").axis;
            let mut reach = SummarySet::empty(ns);
            for s in down[parent.index()].iter() {
                descend(summary, s, axis, &mut reach);
            }
            down[q.index()].intersect(&reach);
        }

        let satisfiable = !down[gtp.root().index()].is_empty();
        SummaryFeasibility { sets: down, satisfiable }
    }

    /// The feasible summary-id set of `q`.
    #[inline]
    pub fn feasible(&self, q: QNodeId) -> &SummarySet {
        &self.sets[q.index()]
    }

    /// True iff no document element can match the query: callers must
    /// return an empty result without reading any stream.
    #[inline]
    pub fn is_unsatisfiable(&self) -> bool {
        !self.satisfiable
    }

    /// Cover of every document region that could contain a match: the
    /// merged region hulls of the root node's feasible paths. Built from
    /// the summary alone — no element is read.
    pub fn root_cover(&self, gtp: &Gtp, summary: SummaryRef<'_>) -> RegionCover {
        let spans = self
            .feasible(gtp.root())
            .iter()
            .map(|sid| {
                let n = summary.node(sid);
                (n.min_left, n.max_right)
            })
            .collect();
        RegionCover::from_spans(spans)
    }
}

/// Insert the summary children (or all proper descendants) of `s`.
fn descend(summary: SummaryRef<'_>, s: u32, axis: Axis, out: &mut SummarySet) {
    for &c in summary.children(s) {
        out.insert(c);
        if axis == Axis::Descendant {
            descend(summary, c, axis, out);
        }
    }
}

/// Label-indexed dispatch table: for each document label, the query nodes an
/// element with that label can match. Shared by all matchers.
#[derive(Debug, Clone)]
pub struct LabelDispatch {
    /// Indexed by `Label::index()`; each entry lists matching query nodes.
    by_label: Vec<Vec<QNodeId>>,
}

impl LabelDispatch {
    /// Compile the dispatch table of `gtp` against a document's `labels`.
    ///
    /// Named query nodes map to exactly the label with the same name (if the
    /// document has it); wildcard nodes map to every label.
    pub fn compile(gtp: &Gtp, labels: &LabelTable) -> Self {
        let mut by_label: Vec<Vec<QNodeId>> = vec![Vec::new(); labels.len()];
        for q in gtp.iter() {
            match gtp.test(q) {
                NodeTest::Name(n) => {
                    if let Some(l) = labels.get(n) {
                        by_label[l.index()].push(q);
                    }
                }
                NodeTest::Wildcard => {
                    for entry in by_label.iter_mut() {
                        entry.push(q);
                    }
                }
            }
        }
        LabelDispatch { by_label }
    }

    /// Query nodes an element labelled `label` can match.
    #[inline]
    pub fn query_nodes(&self, label: Label) -> &[QNodeId] {
        self.by_label
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True iff no query node matches any document label (the query can
    /// produce no results on this document).
    pub fn is_vacuous(&self) -> bool {
        self.by_label.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtp::{Axis, GtpBuilder};
    use crate::parse::parse_twig;
    use xmlindex::summary::PathSummary;

    #[test]
    fn existence_checking_matches_paper_figure8() {
        // //A/B[//D][/C], B the only return node: C and D are
        // existence-checking; A is NOT (it bridges to B).
        let g = parse_twig("//a!/b[//d!][c!]").unwrap();
        let an = QueryAnalysis::new(&g);
        let a = g.root();
        let b = g.find("b").unwrap();
        let c = g.find("c").unwrap();
        let d = g.find("d").unwrap();
        assert!(!an.is_existence_checking(a));
        assert!(!an.is_existence_checking(b));
        assert!(an.is_existence_checking(c));
        assert!(an.is_existence_checking(d));
        assert_eq!(an.columns(), &[b]);
        assert!(an.enumerable());
    }

    #[test]
    fn columns_in_preorder() {
        let g = parse_twig("//a/b[//d][c]").unwrap(); // all return
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.columns().len(), 4);
        assert_eq!(an.columns()[0], g.root());
        assert_eq!(an.column_of(g.find("d").unwrap()), Some(2));
    }

    #[test]
    fn top_branch_of_branching_query() {
        let g = parse_twig("//dblp/inproceedings[title]/author").unwrap();
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.top_branch(), g.find("inproceedings").unwrap());
    }

    #[test]
    fn top_branch_of_linear_query_is_leaf() {
        let g = parse_twig("//a/b//d").unwrap();
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.top_branch(), g.find("d").unwrap());
    }

    #[test]
    fn non_return_with_two_output_branches_flagged() {
        // a is non-return but both children return: not XPath-producible.
        let mut b = GtpBuilder::new("a", false);
        let a = b.root();
        b.role(a, Role::NonReturn);
        b.child(a, "x", Axis::Child);
        b.child(a, "y", Axis::Child);
        let g = b.build();
        let an = QueryAnalysis::new(&g);
        assert!(!an.enumerable());
        assert!(an
            .issues()
            .contains(&ValidationIssue::NonReturnWithMultipleOutputBranches(a)));
    }

    #[test]
    fn boolean_query_flagged() {
        let g = parse_twig("//a!/b!").unwrap();
        let an = QueryAnalysis::new(&g);
        assert!(an.issues().contains(&ValidationIssue::NoOutputNodes));
        assert!(an.is_existence_checking(g.root()));
    }

    #[test]
    fn optional_output_flagged() {
        let g = parse_twig("//a!/b[.//?c@]").unwrap();
        let an = QueryAnalysis::new(&g);
        let c = g.find("c").unwrap();
        assert!(an.issues().contains(&ValidationIssue::OptionalOutput(c)));
        assert!(an.enumerable()); // supported, just produces nulls/empty groups
    }

    #[test]
    fn parallel_fallback_classification() {
        let rooted_single = parse_twig("/dblp").unwrap();
        assert_eq!(
            QueryAnalysis::new(&rooted_single).parallel_fallback(),
            Some(ParallelFallback::RootedSingleNode)
        );
        // Unrooted single-node and rooted multi-node queries keep workers
        // busy (chunk elements can match some query node).
        for q in ["//dblp", "/site/open_auctions[.//bidder]//reserve", "//a/b"] {
            let g = parse_twig(q).unwrap();
            assert_eq!(QueryAnalysis::new(&g).parallel_fallback(), None, "{q}");
        }
    }

    #[test]
    fn label_dispatch() {
        let mut labels = LabelTable::new();
        let la = labels.intern("a");
        let lb = labels.intern("b");
        let lz = labels.intern("z");
        let g = parse_twig("//a/b[//a]").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert_eq!(d.query_nodes(la).len(), 2); // root a + predicate a
        assert_eq!(d.query_nodes(lb).len(), 1);
        assert!(d.query_nodes(lz).is_empty());
        assert!(!d.is_vacuous());
    }

    #[test]
    fn wildcard_dispatch_matches_all_labels() {
        let mut labels = LabelTable::new();
        let la = labels.intern("a");
        let lx = labels.intern("x");
        let g = parse_twig("//a/*").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert_eq!(d.query_nodes(la).len(), 2); // 'a' node + wildcard
        assert_eq!(d.query_nodes(lx).len(), 1); // wildcard only
    }

    #[test]
    fn vacuous_dispatch() {
        let mut labels = LabelTable::new();
        labels.intern("x");
        let g = parse_twig("//a/b").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert!(d.is_vacuous());
    }

    fn feas(xml: &str, query: &str) -> (xmldom::Document, Gtp, PathSummary, SummaryFeasibility) {
        let doc = xmldom::parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let summary = PathSummary::build(&doc);
        let f = SummaryFeasibility::compute(&gtp, summary.view(), doc.labels());
        (doc, gtp, summary, f)
    }

    #[test]
    fn feasibility_separates_paths_with_same_label() {
        // b occurs under a and under x; //a/b must keep only /a/b.
        let (doc, gtp, summary, f) = feas("<r><a><b/></a><x><b/></x></r>", "//a/b");
        assert!(!f.is_unsatisfiable());
        let b = gtp.find("b").unwrap();
        let set = f.feasible(b);
        assert_eq!(set.len(), 1);
        let good = summary.sid(xmldom::NodeId::from_index(2)); // the b under a
        assert!(set.contains(good));
        assert_eq!(set.element_count(summary.view()), 1);
        drop(doc);
    }

    #[test]
    fn child_chain_can_be_unsatisfiable_where_descendant_is_not() {
        let (_, _, _, f) = feas("<a><b><c/></b></a>", "//a/c");
        assert!(f.is_unsatisfiable(), "c is never a direct child of a");
        let (_, _, _, f) = feas("<a><b><c/></b></a>", "//a//c");
        assert!(!f.is_unsatisfiable());
    }

    #[test]
    fn rooted_query_restricted_to_depth_one() {
        let (_, _, _, f) = feas("<a><b/></a>", "/b");
        assert!(f.is_unsatisfiable(), "b is not the document root");
        let (_, _, _, f) = feas("<a><b/></a>", "//b");
        assert!(!f.is_unsatisfiable());
    }

    #[test]
    fn optional_edge_never_gates() {
        let (_, gtp, _, f) = feas("<a><b/></a>", "//a[?z@]");
        assert!(!f.is_unsatisfiable());
        assert!(f.feasible(gtp.find("z").unwrap()).is_empty());
    }

    #[test]
    fn or_group_needs_one_feasible_member() {
        let build = |names: [&str; 2]| {
            let mut b = GtpBuilder::new("a", false);
            let root = b.root();
            let m1 = b.child(root, names[0], Axis::Child);
            let m2 = b.child(root, names[1], Axis::Child);
            b.role(m1, Role::NonReturn);
            b.role(m2, Role::NonReturn);
            b.same_or_group(&[m1, m2]);
            b.build()
        };
        let doc = xmldom::parse("<a><b/></a>").unwrap();
        let summary = PathSummary::build(&doc);
        let ok = SummaryFeasibility::compute(&build(["b", "z"]), summary.view(), doc.labels());
        assert!(!ok.is_unsatisfiable(), "one OR branch is enough");
        let bad = SummaryFeasibility::compute(&build(["y", "z"]), summary.view(), doc.labels());
        assert!(bad.is_unsatisfiable(), "no OR branch is feasible");
    }

    #[test]
    fn top_down_restriction_prunes_contextless_paths() {
        // c occurs under b (inside a) and under x; //a//b[c] must not keep
        // the /x/c path even though some c is below some b elsewhere.
        let (_, gtp, summary, f) =
            feas("<r><a><b><c/></b></a><x><c/></x></r>", "//a//b[c]");
        let c = gtp.find("c").unwrap();
        assert_eq!(f.feasible(c).len(), 1);
        assert_eq!(f.feasible(c).element_count(summary.view()), 1);
    }

    #[test]
    fn wildcard_feasibility_and_recursion() {
        let (_, gtp, summary, f) = feas("<s><s><np/></s></s>", "//s/*");
        assert!(!f.is_unsatisfiable());
        let star = gtp.children(gtp.root())[0];
        // The wildcard under s can be the inner s or either np path.
        assert!(f.feasible(star).len() >= 2);
        let (_, gtp2, _, f2) = feas("<s><s><np/></s></s>", "//s/s");
        assert!(!f2.is_unsatisfiable());
        assert_eq!(f2.feasible(gtp2.children(gtp2.root())[0]).len(), 1);
        drop(summary);
    }

    #[test]
    fn root_cover_spans_candidate_regions() {
        let (doc, gtp, summary, f) = feas("<r><a><b/></a><x/><a><b/></a></r>", "//a/b");
        let cover = f.root_cover(&gtp, summary.view());
        assert_eq!(cover.spans().len(), 1, "both a's share one summary path hull");
        let (l, r) = cover.spans()[0];
        let first_a = doc.region(xmldom::NodeId::from_index(1));
        assert_eq!(l, first_a.left);
        assert!(r >= first_a.right);
    }
}
