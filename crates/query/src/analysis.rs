//! Static analysis of GTP queries.
//!
//! Computes the properties the matching and enumeration algorithms need:
//!
//! * **existence-checking** nodes (paper §3.5): non-return nodes with no
//!   return node below them — their hierarchical stacks can be truncated to
//!   root-stack tops and never receive result edges;
//! * the **top branch node** (paper §4.4) that triggers early result
//!   enumeration;
//! * the **output schema** (one column per return / group-return node);
//! * validity checks (e.g. footnote 6: a non-return node may have at most
//!   one non-existence-checking child for enumeration to be well-defined).

use crate::gtp::{Gtp, NodeTest, QNodeId, Role};
use xmldom::{Label, LabelTable};

/// Precomputed per-node facts about a [`Gtp`].
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// `output_below[q]` — does the subtree rooted at `q` (inclusive)
    /// contain a return or group-return node?
    output_below: Vec<bool>,
    /// `existence[q]` — is `q` an existence-checking node?
    existence: Vec<bool>,
    /// Output columns in query pre-order.
    columns: Vec<QNodeId>,
    /// The node whose top-down-stack pops trigger early enumeration.
    top_branch: QNodeId,
    /// Per query node: the OR-groups of its *mandatory* children, as
    /// child-position lists (singletons for plain AND steps). Members of
    /// one group need not be adjacent in the child list.
    mandatory_groups: Vec<Vec<Vec<usize>>>,
    /// Non-fatal issues found during analysis.
    issues: Vec<ValidationIssue>,
    /// Query-side reason document-partitioned parallel evaluation must use
    /// the serial path, if any.
    parallel_fallback: Option<ParallelFallback>,
}

/// Why document-partitioned parallel evaluation of a query must fall back
/// to the serial path (see `twig2stack::parallel`).
///
/// The spine-replay merge makes partitioning sound for rooted queries,
/// root-recursive labels, and wildcards (spine elements are matched
/// serially, after the per-chunk encodings are spliced back in document
/// order), so only query shapes that leave the workers with no useful work
/// are classified here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelFallback {
    /// A rooted single-node query (e.g. `/dblp`): only level-1 elements can
    /// match, and those live on the spine — every chunk worker would be
    /// idle while the serial spine replay does all the matching.
    RootedSingleNode,
}

/// Problems that make a GTP unusual or unsupported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A non-return node has more than one child subtree containing output
    /// nodes. XPath/XQuery cannot produce such GTPs (paper footnote 6) and
    /// result enumeration for them is not defined.
    NonReturnWithMultipleOutputBranches(QNodeId),
    /// The query produces no output columns at all (pure boolean query).
    NoOutputNodes,
    /// An output node sits below an optional edge whose upper node is
    /// *not* an output node — results may contain nulls for it.
    OptionalOutput(QNodeId),
    /// A group-return node has further output nodes below it. Grouping is a
    /// leaf-of-the-output-schema concept (XQuery `LET`/`RETURN` bind flat
    /// sequences); enumeration under such a node is not defined.
    GroupWithOutputBelow(QNodeId),
    /// A member of a multi-step OR-group carries output nodes. Disjunctive
    /// branches are existence checks (AND/OR twigs, paper §3.3.3);
    /// returning from "whichever branch happened to match" is not defined.
    OrBranchWithOutput(QNodeId),
}

impl QueryAnalysis {
    /// Analyze `gtp`.
    pub fn new(gtp: &Gtp) -> Self {
        let n = gtp.len();
        let mut output_below = vec![false; n];
        for q in gtp.postorder() {
            let mut below = gtp.role(q).is_output();
            for &c in gtp.children(q) {
                below |= output_below[c.index()];
            }
            output_below[q.index()] = below;
        }

        let mut existence = vec![false; n];
        for q in gtp.iter() {
            existence[q.index()] = !output_below[q.index()];
        }

        let columns: Vec<QNodeId> = gtp
            .preorder()
            .into_iter()
            .filter(|&q| gtp.role(q).is_output())
            .collect();

        let mut issues = Vec::new();
        if columns.is_empty() {
            issues.push(ValidationIssue::NoOutputNodes);
        }
        for q in gtp.iter() {
            if gtp.role(q) == Role::NonReturn {
                let live = gtp
                    .children(q)
                    .iter()
                    .filter(|&&c| output_below[c.index()])
                    .count();
                if live > 1 {
                    issues.push(ValidationIssue::NonReturnWithMultipleOutputBranches(q));
                }
            }
            if gtp.role(q) == Role::GroupReturn {
                let below = gtp
                    .children(q)
                    .iter()
                    .any(|&c| output_below[c.index()]);
                if below {
                    issues.push(ValidationIssue::GroupWithOutputBelow(q));
                }
            }
            if let Some(e) = gtp.edge(q) {
                if e.optional && output_below[q.index()] {
                    issues.push(ValidationIssue::OptionalOutput(q));
                }
            }
            // Members of multi-step OR-groups must be pure existence checks.
            let kids = gtp.children(q);
            for &c in kids {
                let shared = kids
                    .iter()
                    .any(|&d| d != c && gtp.or_group(d) == gtp.or_group(c));
                if shared && output_below[c.index()] {
                    issues.push(ValidationIssue::OrBranchWithOutput(c));
                }
            }
        }

        // Top branch node: the highest query node with >= 2 children;
        // if the query is a linear path, its deepest node.
        let mut top_branch = None;
        for q in gtp.preorder() {
            if gtp.children(q).len() >= 2 {
                top_branch = Some(q);
                break;
            }
        }
        let top_branch = top_branch.unwrap_or_else(|| {
            let mut q = gtp.root();
            while let Some(&c) = gtp.children(q).first() {
                q = c;
            }
            q
        });

        // Mandatory children grouped by OR-group id (first-occurrence
        // order), as positions into the child list.
        let mandatory_groups = gtp
            .iter()
            .map(|q| {
                let kids = gtp.children(q);
                let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
                for (i, &m) in kids.iter().enumerate() {
                    if gtp.edge(m).expect("child edge").optional {
                        continue;
                    }
                    let gid = gtp.or_group(m);
                    match groups.iter_mut().find(|(g, _)| *g == gid) {
                        Some((_, members)) => members.push(i),
                        None => groups.push((gid, vec![i])),
                    }
                }
                groups.into_iter().map(|(_, m)| m).collect()
            })
            .collect();

        let parallel_fallback = if gtp.is_rooted() && gtp.len() == 1 {
            Some(ParallelFallback::RootedSingleNode)
        } else {
            None
        };

        QueryAnalysis {
            output_below,
            existence,
            columns,
            top_branch,
            mandatory_groups,
            issues,
            parallel_fallback,
        }
    }

    /// The OR-groups of `q`'s mandatory children, as positions into
    /// `gtp.children(q)`. `q` is satisfied when every group has at least
    /// one satisfied member.
    #[inline]
    pub fn mandatory_groups(&self, q: QNodeId) -> &[Vec<usize>] {
        &self.mandatory_groups[q.index()]
    }

    /// Does the subtree rooted at `q` contain any output node?
    #[inline]
    pub fn has_output_below(&self, q: QNodeId) -> bool {
        self.output_below[q.index()]
    }

    /// Is `q` an existence-checking node (paper §3.5)?
    #[inline]
    pub fn is_existence_checking(&self, q: QNodeId) -> bool {
        self.existence[q.index()]
    }

    /// Output columns (return and group-return nodes) in query pre-order.
    pub fn columns(&self) -> &[QNodeId] {
        &self.columns
    }

    /// Position of `q` in the output schema, if it is an output node.
    pub fn column_of(&self, q: QNodeId) -> Option<usize> {
        self.columns.iter().position(|&c| c == q)
    }

    /// The top branch node for early result enumeration (paper §4.4).
    #[inline]
    pub fn top_branch(&self) -> QNodeId {
        self.top_branch
    }

    /// Issues found during analysis. Empty ⇒ the query is fully supported.
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// Query-side reason partitioned parallel evaluation must run serially,
    /// or `None` when chunk workers can contribute.
    #[inline]
    pub fn parallel_fallback(&self) -> Option<ParallelFallback> {
        self.parallel_fallback
    }

    /// True iff result enumeration is well-defined for this query
    /// (no [`ValidationIssue::NonReturnWithMultipleOutputBranches`]).
    pub fn enumerable(&self) -> bool {
        !self.issues.iter().any(|i| {
            matches!(
                i,
                ValidationIssue::NonReturnWithMultipleOutputBranches(_)
                    | ValidationIssue::GroupWithOutputBelow(_)
                    | ValidationIssue::OrBranchWithOutput(_)
            )
        })
    }
}

/// Label-indexed dispatch table: for each document label, the query nodes an
/// element with that label can match. Shared by all matchers.
#[derive(Debug, Clone)]
pub struct LabelDispatch {
    /// Indexed by `Label::index()`; each entry lists matching query nodes.
    by_label: Vec<Vec<QNodeId>>,
}

impl LabelDispatch {
    /// Compile the dispatch table of `gtp` against a document's `labels`.
    ///
    /// Named query nodes map to exactly the label with the same name (if the
    /// document has it); wildcard nodes map to every label.
    pub fn compile(gtp: &Gtp, labels: &LabelTable) -> Self {
        let mut by_label: Vec<Vec<QNodeId>> = vec![Vec::new(); labels.len()];
        for q in gtp.iter() {
            match gtp.test(q) {
                NodeTest::Name(n) => {
                    if let Some(l) = labels.get(n) {
                        by_label[l.index()].push(q);
                    }
                }
                NodeTest::Wildcard => {
                    for entry in by_label.iter_mut() {
                        entry.push(q);
                    }
                }
            }
        }
        LabelDispatch { by_label }
    }

    /// Query nodes an element labelled `label` can match.
    #[inline]
    pub fn query_nodes(&self, label: Label) -> &[QNodeId] {
        self.by_label
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True iff no query node matches any document label (the query can
    /// produce no results on this document).
    pub fn is_vacuous(&self) -> bool {
        self.by_label.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtp::{Axis, GtpBuilder};
    use crate::parse::parse_twig;

    #[test]
    fn existence_checking_matches_paper_figure8() {
        // //A/B[//D][/C], B the only return node: C and D are
        // existence-checking; A is NOT (it bridges to B).
        let g = parse_twig("//a!/b[//d!][c!]").unwrap();
        let an = QueryAnalysis::new(&g);
        let a = g.root();
        let b = g.find("b").unwrap();
        let c = g.find("c").unwrap();
        let d = g.find("d").unwrap();
        assert!(!an.is_existence_checking(a));
        assert!(!an.is_existence_checking(b));
        assert!(an.is_existence_checking(c));
        assert!(an.is_existence_checking(d));
        assert_eq!(an.columns(), &[b]);
        assert!(an.enumerable());
    }

    #[test]
    fn columns_in_preorder() {
        let g = parse_twig("//a/b[//d][c]").unwrap(); // all return
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.columns().len(), 4);
        assert_eq!(an.columns()[0], g.root());
        assert_eq!(an.column_of(g.find("d").unwrap()), Some(2));
    }

    #[test]
    fn top_branch_of_branching_query() {
        let g = parse_twig("//dblp/inproceedings[title]/author").unwrap();
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.top_branch(), g.find("inproceedings").unwrap());
    }

    #[test]
    fn top_branch_of_linear_query_is_leaf() {
        let g = parse_twig("//a/b//d").unwrap();
        let an = QueryAnalysis::new(&g);
        assert_eq!(an.top_branch(), g.find("d").unwrap());
    }

    #[test]
    fn non_return_with_two_output_branches_flagged() {
        // a is non-return but both children return: not XPath-producible.
        let mut b = GtpBuilder::new("a", false);
        let a = b.root();
        b.role(a, Role::NonReturn);
        b.child(a, "x", Axis::Child);
        b.child(a, "y", Axis::Child);
        let g = b.build();
        let an = QueryAnalysis::new(&g);
        assert!(!an.enumerable());
        assert!(an
            .issues()
            .contains(&ValidationIssue::NonReturnWithMultipleOutputBranches(a)));
    }

    #[test]
    fn boolean_query_flagged() {
        let g = parse_twig("//a!/b!").unwrap();
        let an = QueryAnalysis::new(&g);
        assert!(an.issues().contains(&ValidationIssue::NoOutputNodes));
        assert!(an.is_existence_checking(g.root()));
    }

    #[test]
    fn optional_output_flagged() {
        let g = parse_twig("//a!/b[.//?c@]").unwrap();
        let an = QueryAnalysis::new(&g);
        let c = g.find("c").unwrap();
        assert!(an.issues().contains(&ValidationIssue::OptionalOutput(c)));
        assert!(an.enumerable()); // supported, just produces nulls/empty groups
    }

    #[test]
    fn parallel_fallback_classification() {
        let rooted_single = parse_twig("/dblp").unwrap();
        assert_eq!(
            QueryAnalysis::new(&rooted_single).parallel_fallback(),
            Some(ParallelFallback::RootedSingleNode)
        );
        // Unrooted single-node and rooted multi-node queries keep workers
        // busy (chunk elements can match some query node).
        for q in ["//dblp", "/site/open_auctions[.//bidder]//reserve", "//a/b"] {
            let g = parse_twig(q).unwrap();
            assert_eq!(QueryAnalysis::new(&g).parallel_fallback(), None, "{q}");
        }
    }

    #[test]
    fn label_dispatch() {
        let mut labels = LabelTable::new();
        let la = labels.intern("a");
        let lb = labels.intern("b");
        let lz = labels.intern("z");
        let g = parse_twig("//a/b[//a]").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert_eq!(d.query_nodes(la).len(), 2); // root a + predicate a
        assert_eq!(d.query_nodes(lb).len(), 1);
        assert!(d.query_nodes(lz).is_empty());
        assert!(!d.is_vacuous());
    }

    #[test]
    fn wildcard_dispatch_matches_all_labels() {
        let mut labels = LabelTable::new();
        let la = labels.intern("a");
        let lx = labels.intern("x");
        let g = parse_twig("//a/*").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert_eq!(d.query_nodes(la).len(), 2); // 'a' node + wildcard
        assert_eq!(d.query_nodes(lx).len(), 1); // wildcard only
    }

    #[test]
    fn vacuous_dispatch() {
        let mut labels = LabelTable::new();
        labels.intern("x");
        let g = parse_twig("//a/b").unwrap();
        let d = LabelDispatch::compile(&g, &labels);
        assert!(d.is_vacuous());
    }
}
