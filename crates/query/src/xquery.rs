//! Translation of an XQuery (FLWOR) subset into a [`Gtp`].
//!
//! The paper evaluates *generalized* tree patterns because real XQuery
//! statements mix path expressions with different semantics (paper §2,
//! Figure 2):
//!
//! * `FOR` bindings — mandatory edges; the bound node is a return node;
//! * `WHERE` paths — mandatory edges; existence only (non-return);
//! * `LET` bindings — optional edges; the bound node is a *group* return;
//! * `RETURN` paths — optional edges; group returns.
//!
//! Supported grammar (a deliberately small but faithful subset of the
//! translation in Chen et al. 2003 \[8\]):
//!
//! ```text
//! query  := FOR binding (',' binding)*
//!           (LET letbind (',' letbind)*)?
//!           (WHERE path (AND path)*)?
//!           RETURN retexpr
//! binding := $var IN path
//! letbind := $var ':=' path
//! path    := ('//' | '/') steps        (absolute)
//!          | $var ('/' | '//') steps   (relative to a bound variable)
//!          | $var                      (variable reference)
//! retexpr := anything; every `$var(/steps)?` occurrence becomes an output
//! ```
//!
//! Keywords are case-insensitive. Element constructors in `RETURN` are
//! scanned for variable references rather than parsed.

use crate::gtp::{Axis, Gtp, GtpBuilder, QNodeId, Role};
use std::collections::HashMap;
use std::fmt;

/// XQuery translation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XQueryError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for XQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery translation error: {}", self.message)
    }
}

impl std::error::Error for XQueryError {}

fn err(m: impl Into<String>) -> XQueryError {
    XQueryError { message: m.into() }
}

/// A path relative to a variable or the document root.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RelPath {
    /// Anchor variable, or `None` for an absolute path.
    anchor: Option<String>,
    /// Steps: (axis, name).
    steps: Vec<(Axis, String)>,
    /// Absolute paths: whether the first step is `/` (rooted) or `//`.
    rooted: bool,
}

fn parse_rel_path(s: &str) -> Result<RelPath, XQueryError> {
    let s = s.trim();
    let (anchor, mut rest, rooted) = if let Some(stripped) = s.strip_prefix('$') {
        let end = stripped
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(stripped.len());
        let var = &stripped[..end];
        if var.is_empty() {
            return Err(err("expected variable name after '$'"));
        }
        (Some(var.to_string()), &stripped[end..], false)
    } else if let Some(stripped) = s.strip_prefix("//") {
        (None, stripped, false)
    } else if let Some(stripped) = s.strip_prefix('/') {
        (None, stripped, true)
    } else {
        return Err(err(format!("path must start with '$var', '/' or '//': {s}")));
    };

    let mut steps = Vec::new();
    // For absolute paths the first step name follows immediately; for
    // variable-anchored paths, `rest` begins with the first axis (or is
    // empty for a bare `$var`).
    let mut pending_axis = if anchor.is_none() {
        Some(if rooted { Axis::Child } else { Axis::Descendant })
    } else {
        None
    };
    // Absolute: we already consumed the leading axis; fold it in as the
    // first "step axis" (the root step's axis is handled by the caller).
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let axis = match pending_axis.take() {
            Some(a) => a,
            None => {
                if let Some(r) = rest.strip_prefix("//") {
                    rest = r;
                    Axis::Descendant
                } else if let Some(r) = rest.strip_prefix('/') {
                    rest = r;
                    Axis::Child
                } else {
                    return Err(err(format!("expected '/' or '//' in path near: {rest}")));
                }
            }
        };
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || "_-.:*".contains(c)))
            .unwrap_or(rest.len());
        let name = &rest[..end];
        if name.is_empty() {
            return Err(err(format!("expected step name near: {rest}")));
        }
        steps.push((axis, name.to_string()));
        rest = &rest[end..];
    }
    if anchor.is_none() && steps.is_empty() {
        return Err(err("absolute path with no steps"));
    }
    Ok(RelPath { anchor, steps, rooted })
}

/// Translate the XQuery subset `input` into a [`Gtp`].
///
/// The first `FOR` binding must use an absolute path; later bindings and all
/// other clauses may be anchored on previously bound variables.
pub fn translate(input: &str) -> Result<Gtp, XQueryError> {
    let clauses = split_clauses(input)?;

    // --- FOR ---------------------------------------------------------
    let mut vars: HashMap<String, QNodeId> = HashMap::new();
    let mut builder: Option<GtpBuilder> = None;

    for binding in split_top_level(&clauses.for_clause, ',') {
        let (var, path) = binding
            .split_once(" in ")
            .or_else(|| binding.split_once(" IN "))
            .ok_or_else(|| err(format!("FOR binding missing 'in': {binding}")))?;
        let var = var.trim().strip_prefix('$').ok_or_else(|| {
            err(format!("FOR binding must bind a '$var': {binding}"))
        })?;
        let rel = parse_rel_path(path.trim())?;
        let node = extend(&mut builder, &vars, &rel, false, Role::NonReturn, Role::Return)?;
        vars.insert(var.to_string(), node);
    }

    // --- LET ---------------------------------------------------------
    for letbind in clauses
        .let_clause
        .as_deref()
        .map(|l| split_top_level(l, ','))
        .unwrap_or_default()
    {
        let (var, path) = letbind
            .split_once(":=")
            .ok_or_else(|| err(format!("LET binding missing ':=': {letbind}")))?;
        let var = var.trim().strip_prefix('$').ok_or_else(|| {
            err(format!("LET binding must bind a '$var': {letbind}"))
        })?;
        let rel = parse_rel_path(path.trim())?;
        let node = extend(
            &mut builder,
            &vars,
            &rel,
            true,
            Role::NonReturn,
            Role::GroupReturn,
        )?;
        vars.insert(var.to_string(), node);
    }

    // --- WHERE -------------------------------------------------------
    if let Some(w) = &clauses.where_clause {
        for cond in split_keyword(w, "and") {
            let rel = parse_rel_path(cond.trim())?;
            extend(&mut builder, &vars, &rel, false, Role::NonReturn, Role::NonReturn)?;
        }
    }

    // --- RETURN ------------------------------------------------------
    // Scan for `$var(/steps)?` occurrences.
    let mut any_output = false;
    let ret = &clauses.return_clause;
    let bytes = ret.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            // Optionally followed by a path.
            let mut j = i;
            while j < bytes.len() {
                if bytes[j] == b'/' {
                    j += 1;
                    if j < bytes.len() && bytes[j] == b'/' {
                        j += 1;
                    }
                    while j < bytes.len()
                        && (bytes[j].is_ascii_alphanumeric() || b"_-.:*".contains(&bytes[j]))
                    {
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            let expr = &ret[start..j];
            let rel = parse_rel_path(expr)?;
            if rel.steps.is_empty() {
                // Bare `$var`: its node is already an output (FOR ⇒ Return,
                // LET ⇒ GroupReturn).
                let var = rel.anchor.as_deref().unwrap();
                if !vars.contains_key(var) {
                    return Err(err(format!("RETURN references unbound variable ${var}")));
                }
                any_output = true;
            } else {
                extend(&mut builder, &vars, &rel, true, Role::NonReturn, Role::GroupReturn)?;
                any_output = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    if !any_output {
        return Err(err("RETURN clause references no bound variables"));
    }

    let builder = builder.ok_or_else(|| err("FOR clause bound no variables"))?;
    Ok(builder.build())
}

/// Append `rel` to the pattern under construction. Intermediate steps get
/// `mid_role`; the final step gets `last_role`. When `optional`, every
/// appended edge is optional. Returns the final node.
fn extend(
    builder: &mut Option<GtpBuilder>,
    vars: &HashMap<String, QNodeId>,
    rel: &RelPath,
    optional: bool,
    mid_role: Role,
    last_role: Role,
) -> Result<QNodeId, XQueryError> {
    let mut current: QNodeId;
    let mut steps = rel.steps.iter().peekable();
    match &rel.anchor {
        Some(var) => {
            current = *vars
                .get(var)
                .ok_or_else(|| err(format!("unbound variable ${var}")))?;
        }
        None => {
            let (_, first_name) = steps.next().expect("absolute path has steps");
            match builder {
                None => {
                    let b = GtpBuilder::new(first_name, rel.rooted);
                    let root = b.root();
                    *builder = Some(b);
                    let b = builder.as_mut().unwrap();
                    let role = if steps.peek().is_none() { last_role } else { mid_role };
                    b.role(root, role);
                    current = root;
                }
                Some(b) => {
                    // A second absolute path: merge at the root if the name
                    // matches, otherwise it is unsupported (would need a
                    // forest / Cartesian product — paper §4.4 notes this
                    // case is handled by decomposition).
                    let root = b.root();
                    let matches = b_root_matches(b, first_name);
                    if !matches {
                        return Err(err(format!(
                            "second absolute path must start at the same root element \
                             (got '{first_name}')"
                        )));
                    }
                    current = root;
                }
            }
        }
    }
    let b = builder
        .as_mut()
        .ok_or_else(|| err("relative path before any FOR binding"))?;
    while let Some((axis, name)) = steps.next() {
        let role = if steps.peek().is_none() { last_role } else { mid_role };
        current = b.add(current, name, *axis, optional, role);
    }
    // If the anchor itself is the final node (bare `$var` path) the role of
    // that node is left as previously assigned.
    Ok(current)
}

fn b_root_matches(b: &GtpBuilder, name: &str) -> bool {
    use crate::gtp::NodeTest;
    let g = b.clone().build();
    matches!(g.test(g.root()), NodeTest::Name(n) if n == name)
        || matches!(g.test(g.root()), NodeTest::Wildcard)
}

struct Clauses {
    for_clause: String,
    let_clause: Option<String>,
    where_clause: Option<String>,
    return_clause: String,
}

/// Split the FLWOR statement into its clauses at the top level.
fn split_clauses(input: &str) -> Result<Clauses, XQueryError> {
    let lower = input.to_ascii_lowercase();
    let find_kw = |kw: &str, from: usize| -> Option<usize> {
        let mut at = from;
        while let Some(pos) = lower[at..].find(kw) {
            let i = at + pos;
            let before_ok = i == 0
                || !lower.as_bytes()[i - 1].is_ascii_alphanumeric()
                    && lower.as_bytes()[i - 1] != b'$';
            let after = i + kw.len();
            let after_ok =
                after >= lower.len() || !lower.as_bytes()[after].is_ascii_alphanumeric();
            if before_ok && after_ok {
                return Some(i);
            }
            at = i + kw.len();
        }
        None
    };

    let for_at = find_kw("for", 0).ok_or_else(|| err("missing FOR clause"))?;
    let ret_at = find_kw("return", for_at).ok_or_else(|| err("missing RETURN clause"))?;
    let let_at = find_kw("let", for_at).filter(|&i| i < ret_at);
    let where_at = find_kw("where", for_at).filter(|&i| i < ret_at);

    let for_end = [let_at, where_at, Some(ret_at)]
        .into_iter()
        .flatten()
        .min()
        .unwrap();
    let for_clause = input[for_at + 3..for_end].trim().to_string();
    let let_clause = let_at.map(|i| {
        let end = [where_at, Some(ret_at)]
            .into_iter()
            .flatten()
            .filter(|&e| e > i)
            .min()
            .unwrap();
        input[i + 3..end].trim().to_string()
    });
    let where_clause = where_at.map(|i| input[i + 5..ret_at].trim().to_string());
    let return_clause = input[ret_at + 6..].trim().to_string();
    if for_clause.is_empty() {
        return Err(err("empty FOR clause"));
    }
    if return_clause.is_empty() {
        return Err(err("empty RETURN clause"));
    }
    Ok(Clauses { for_clause, let_clause, where_clause, return_clause })
}

/// Split on `sep` at top level (outside parentheses/braces/brackets).
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(s[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim().to_string());
    out.retain(|p| !p.is_empty());
    out
}

/// Split on a lowercase keyword (word-boundary) at top level.
fn split_keyword(s: &str, kw: &str) -> Vec<String> {
    let lower = s.to_ascii_lowercase();
    let mut out = Vec::new();
    let mut start = 0;
    let mut at = 0;
    while let Some(pos) = lower[at..].find(kw) {
        let i = at + pos;
        let before_ok = i == 0 || lower.as_bytes()[i - 1].is_ascii_whitespace();
        let after = i + kw.len();
        let after_ok = after >= lower.len() || lower.as_bytes()[after].is_ascii_whitespace();
        if before_ok && after_ok {
            out.push(s[start..i].trim().to_string());
            start = after;
        }
        at = after;
    }
    out.push(s[start..].trim().to_string());
    out.retain(|p| !p.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::QueryAnalysis;
    use crate::gtp::NodeTest;

    fn name_of(g: &Gtp, q: QNodeId) -> String {
        match g.test(q) {
            NodeTest::Name(n) => n.clone(),
            NodeTest::Wildcard => "*".into(),
        }
    }

    #[test]
    fn xquery1_of_figure2() {
        // FOR $b IN //A[//D]/B WHERE ... — paper's GTP1 is
        // "for $b in //a/b where $b//d" style: B return, D non-return.
        let g = translate("for $b in //a/b where $b//d return $b").unwrap();
        assert_eq!(g.len(), 3);
        let b = g.find("b").unwrap();
        let d = g.find("d").unwrap();
        assert_eq!(g.role(g.root()), Role::NonReturn);
        assert_eq!(g.role(b), Role::Return);
        assert_eq!(g.role(d), Role::NonReturn);
        assert!(!g.edge(d).unwrap().optional);
        let an = QueryAnalysis::new(&g);
        assert!(an.is_existence_checking(d));
    }

    #[test]
    fn xquery2_of_figure2() {
        // for $b in //a/b let $c := $b/c return <r>{$b, $c}</r>
        let g = translate("for $b in //a/b let $c := $b/c return <r>{$b, $c}</r>").unwrap();
        assert_eq!(g.len(), 3);
        let b = g.find("b").unwrap();
        let c = g.find("c").unwrap();
        assert_eq!(g.role(b), Role::Return);
        assert_eq!(g.role(c), Role::GroupReturn);
        assert!(g.edge(c).unwrap().optional);
        assert_eq!(g.edge(c).unwrap().axis, Axis::Child);
    }

    #[test]
    fn return_path_becomes_optional_group() {
        let g = translate("for $p in //people//person return $p/name").unwrap();
        let name = g.find("name").unwrap();
        assert_eq!(g.role(name), Role::GroupReturn);
        assert!(g.edge(name).unwrap().optional);
        // $p itself is a Return node (FOR binding) but referenced only via
        // a path; still a return node.
        let person = g.find("person").unwrap();
        assert_eq!(g.role(person), Role::Return);
    }

    #[test]
    fn multiple_for_bindings_chain() {
        let g = translate("for $a in //x//y, $b in $a/z return ($a, $b)").unwrap();
        assert_eq!(g.len(), 3);
        let z = g.find("z").unwrap();
        assert_eq!(g.role(z), Role::Return);
        assert!(!g.edge(z).unwrap().optional);
    }

    #[test]
    fn where_conjunction() {
        let g = translate(
            "for $p in //person where $p/address/zipcode and $p//age return $p",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        let zip = g.find("zipcode").unwrap();
        assert_eq!(g.role(zip), Role::NonReturn);
        let age = g.find("age").unwrap();
        assert_eq!(g.edge(age).unwrap().axis, Axis::Descendant);
    }

    #[test]
    fn rooted_for_path() {
        let g = translate("for $r in /site/regions return $r").unwrap();
        assert!(g.is_rooted());
        assert_eq!(name_of(&g, g.root()), "site");
    }

    #[test]
    fn errors() {
        assert!(translate("return $x").is_err());
        assert!(translate("for $a in //x return 42").is_err());
        assert!(translate("for $a in //x return $zzz").is_err());
        assert!(translate("for a in //x return $a").is_err());
        assert!(translate("for $a in x return $a").is_err());
        assert!(translate("for $a in //x where $b/y return $a").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let g = translate("FOR $b IN //a/b WHERE $b//d RETURN $b").unwrap();
        assert_eq!(g.len(), 3);
    }
}
