//! Lossless serialization of a [`Gtp`] back to the twig syntax of
//! [`crate::parse_twig`].
//!
//! [`Gtp`]'s `Display` impl favours readability: it promotes the last
//! child of every node onto the spine (`//a/b[c]/d`) and brackets the
//! rest. That form is ambiguous for two corners of the model: an
//! OR-group member printed in spine position loses its group, and
//! non-adjacent members of one group print as *separate* brackets that
//! re-parse as separate groups. [`serialize`] instead emits a canonical
//! bracket-only form — every child is a predicate, consecutive children
//! sharing an OR-group are joined with `or` inside one bracket — which
//! round-trips losslessly through the parser for any GTP whose OR-group
//! members are adjacent siblings (always true for parser- and
//! fuzzer-produced queries).
//!
//! One parser normalization applies: nodes inside a multi-alternative
//! predicate are forced to [`Role::NonReturn`], so a hand-built GTP with
//! an output node inside an OR-group (invalid per
//! [`crate::QueryAnalysis`] anyway) re-parses with that role demoted.
//! [`structurally_equal`] is the companion comparison: node tests,
//! roles, edges, value predicates, and per-parent OR-group partitions,
//! independent of internal node numbering.

use crate::gtp::{Gtp, QNodeId, Role};
use std::fmt::Write as _;

/// Serialize `gtp` to twig syntax accepted by [`crate::parse_twig`].
///
/// The output uses the bracket-only canonical form (no spine
/// continuation): `//a[.//b][c='v'!]`. See the module docs for the
/// (narrow) conditions under which re-parsing is lossless.
pub fn serialize(gtp: &Gtp) -> String {
    let mut out = String::new();
    out.push_str(if gtp.is_rooted() { "/" } else { "//" });
    write_node(gtp, gtp.root(), &mut out);
    out
}

/// Render one node (test, value predicate, role marker) and all its
/// children as bracketed predicates.
fn write_node(gtp: &Gtp, q: QNodeId, out: &mut String) {
    let _ = write!(out, "{}", gtp.test(q));
    if let Some(p) = gtp.value_pred(q) {
        let _ = write!(out, "{p}");
    }
    match gtp.role(q) {
        Role::Return => {}
        Role::NonReturn => out.push('!'),
        Role::GroupReturn => out.push('@'),
    }
    let kids = gtp.children(q);
    let mut i = 0;
    while i < kids.len() {
        // A maximal run of consecutive children sharing an OR-group
        // becomes one multi-alternative predicate.
        let gid = gtp.or_group(kids[i]);
        let mut j = i + 1;
        while j < kids.len() && gtp.or_group(kids[j]) == gid {
            j += 1;
        }
        out.push('[');
        for (k, &child) in kids[i..j].iter().enumerate() {
            if k > 0 {
                out.push_str(" or ");
            }
            let edge = gtp.edge(child).expect("non-root node has an edge");
            // Predicate heads per the parser grammar: `` (child),
            // `?` (optional child), `.//` (descendant),
            // `.//?` (optional descendant).
            out.push_str(match (edge.axis.is_pc(), edge.optional) {
                (true, false) => "",
                (true, true) => "?",
                (false, false) => ".//",
                (false, true) => ".//?",
            });
            write_node(gtp, child, out);
        }
        out.push(']');
        i = j;
    }
}

/// Structural equality of two GTPs: same rootedness and, pairing nodes
/// positionally down the tree, the same node test, role, value
/// predicate, incoming edge, and per-parent OR-group partition.
/// Internal node numbering and OR-group ids do not matter.
pub fn structurally_equal(a: &Gtp, b: &Gtp) -> bool {
    a.is_rooted() == b.is_rooted()
        && a.len() == b.len()
        && nodes_equal(a, a.root(), b, b.root())
}

fn nodes_equal(a: &Gtp, qa: QNodeId, b: &Gtp, qb: QNodeId) -> bool {
    if a.test(qa) != b.test(qb)
        || a.role(qa) != b.role(qb)
        || a.value_pred(qa) != b.value_pred(qb)
        || a.edge(qa) != b.edge(qb)
    {
        return false;
    }
    let ka = a.children(qa);
    let kb = b.children(qb);
    ka.len() == kb.len()
        && group_shape(a, ka) == group_shape(b, kb)
        && ka.iter().zip(kb).all(|(&ca, &cb)| nodes_equal(a, ca, b, cb))
}

/// Canonical OR-group partition of a child list: each child mapped to
/// the position of the first sibling sharing its group.
fn group_shape(gtp: &Gtp, kids: &[QNodeId]) -> Vec<usize> {
    kids.iter()
        .map(|&c| {
            kids.iter()
                .position(|&d| gtp.or_group(d) == gtp.or_group(c))
                .expect("child present in its own sibling list")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtp::{Axis, GtpBuilder, ValuePred};
    use crate::parse::parse_twig;

    fn round_trip(q: &str) {
        let g1 = parse_twig(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let s = serialize(&g1);
        let g2 = parse_twig(&s).unwrap_or_else(|e| panic!("{q} -> {s}: {e}"));
        assert!(structurally_equal(&g1, &g2), "{q} -> {s}");
    }

    #[test]
    fn round_trips_full_grammar() {
        for q in [
            "/a",
            "//a",
            "//a/b//d",
            "//a/b[//d][c]",
            "//dblp/article[author][.//title]//year",
            "//a!/b@[c!]//d",
            "//a/?b//?c[?d]",
            "//a/*//b",
            "//x[a][b][c]/y",
            "//a[b! or .//c!]/d",
            "//a[.//b! or c! or .//?d!]",
            "//person[name='Alice']//age",
            "//paper[title~'twig'!]/author@",
            "//a[b='x'! or c~'y'!]",
            "/site[?open_auctions]//item@",
        ] {
            round_trip(q);
        }
    }

    #[test]
    fn serialized_form_is_bracket_only() {
        let g = parse_twig("//a/b[//d][c]/e").unwrap();
        assert_eq!(serialize(&g), "//a[b[.//d][c][e]]");
    }

    #[test]
    fn adjacent_or_group_round_trips_via_builder() {
        // Built by hand rather than the parser: two adjacent NonReturn
        // leaves in one group, then a plain sibling.
        let mut b = GtpBuilder::new("a", false);
        let root = b.root();
        let m1 = b.add(root, "b", Axis::Descendant, false, Role::NonReturn);
        let m2 = b.add(root, "c", Axis::Child, false, Role::NonReturn);
        b.same_or_group(&[m1, m2]);
        let d = b.add(root, "d", Axis::Child, false, Role::Return);
        b.value_pred(d, ValuePred::TextEquals("v".into()));
        let g1 = b.build();
        let s = serialize(&g1);
        assert_eq!(s, "//a[.//b! or c!][d='v']");
        let g2 = parse_twig(&s).unwrap();
        assert!(structurally_equal(&g1, &g2));
    }

    #[test]
    fn structural_equality_detects_differences() {
        let base = parse_twig("//a[b! or c!]/d").unwrap();
        for other in ["//a[b!][c!]/d", "//a[b or c]/e", "//a[b! or c!]//d", "/a[b! or c!]/d"] {
            let g = parse_twig(other).unwrap();
            assert!(!structurally_equal(&base, &g), "{other}");
        }
        let same = parse_twig("//a[b! or c!][d]").unwrap();
        assert!(structurally_equal(&base, &same));
    }
}
