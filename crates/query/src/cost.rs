//! Path-summary cost model — the estimation half of the adaptive planner.
//!
//! The serving layer (`twigserve`) must pick, per cached plan, an engine
//! (Twig²Stack / TwigStack / PathStack / TJFast), a
//! [`PruningPolicy`](xmlindex::PruningPolicy)
//! analog (prune or not), and full-vs-early enumeration. Everything it
//! needs to decide is already in the index's path summary (strong
//! DataGuide): per-sid element counts, per-sid region hulls, and the
//! [`SummaryFeasibility`] sets the pruned streams are built from. This
//! module turns those statistics into a [`QueryEstimate`] — predicted
//! stream sizes, skip-scan savings, and output selectivities — plus a
//! [`Recommendation`] derived from the decision table in DESIGN.md §14.
//!
//! The estimates are *predictions*, recorded by the service next to the
//! actual counters (`plan_predicted_scan` vs `elements_scanned`) so
//! mispredictions are visible in the metrics sidecar rather than silently
//! mis-planning forever.
//!
//! Everything here reads only the summary — never the element postings —
//! so estimating costs `O(summary nodes)`, the same order as the
//! feasibility analysis the plan cache already amortizes.

use crate::analysis::SummaryFeasibility;
use crate::gtp::{Gtp, Role};
use crate::LabelDispatch;
use xmldom::{Label, LabelTable};
use xmlindex::{filter_worthwhile, SummaryRef, SummarySet};

/// The engines the planner can select among. `twigserve` executes all
/// four; the baselines are restricted to full-twig (and for
/// [`PlanEngine::PathStack`], linear) queries — see [`is_full_twig`] /
/// [`is_linear`] — and the planner never recommends an engine outside its
/// applicability gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanEngine {
    /// The paper's bottom-up hierarchical-stack engine: handles every GTP
    /// (optional edges, OR-groups, non-return nodes, value predicates).
    Twig2Stack,
    /// Holistic path decomposition + merge join (Bruno et al.).
    TwigStack,
    /// Single-chain streaming joins — linear queries only.
    PathStack,
    /// Leaf-streams-only matching over extended Dewey labels (Lu et al.).
    TJFast,
}

impl PlanEngine {
    /// Every engine, in report order.
    pub const ALL: [PlanEngine; 4] = [
        PlanEngine::Twig2Stack,
        PlanEngine::TwigStack,
        PlanEngine::PathStack,
        PlanEngine::TJFast,
    ];

    /// Stable snake_case name (used in reports and counter names).
    pub fn name(self) -> &'static str {
        match self {
            PlanEngine::Twig2Stack => "twig2stack",
            PlanEngine::TwigStack => "twigstack",
            PlanEngine::PathStack => "pathstack",
            PlanEngine::TJFast => "tjfast",
        }
    }
}

/// True iff `gtp` is a *full twig*: every node is returned, no edge is
/// optional, and there are no OR-groups or value predicates — the
/// fragment the decomposition baselines (TwigStack, TJFast) implement.
pub fn is_full_twig(gtp: &Gtp) -> bool {
    gtp.iter()
        .all(|q| gtp.role(q) == Role::Return && gtp.edge(q).is_none_or(|e| !e.optional))
        && !gtp.has_or_groups()
        && !gtp.has_value_preds()
}

/// True iff `gtp` is a single root-to-leaf chain (PathStack's fragment,
/// together with [`is_full_twig`]).
pub fn is_linear(gtp: &Gtp) -> bool {
    gtp.iter().all(|q| gtp.children(q).len() <= 1)
}

/// Per-query cost estimates derived from the path summary. All element
/// counts are exact *summary* aggregations of over-approximate feasible
/// sets: `scan_pruned ≤ scan_full` always, and both bound what a pruned /
/// full stream scan would actually deliver from above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEstimate {
    /// Some mandatory query node has no feasible path: the result is
    /// empty and evaluation short-circuits without touching a stream.
    pub unsatisfiable: bool,
    /// Elements a full (unpruned) scan delivers: the summed postings of
    /// every label some query node dispatches to.
    pub scan_full: u64,
    /// Elements a pruned scan is estimated to deliver, honoring the
    /// same `filter_worthwhile` drop the real stream plan applies and
    /// scaling filterless labels by the root-cover fraction (the
    /// skip-scan savings estimate).
    pub scan_pruned: u64,
    /// Elements the **leaf** query nodes' feasible sets cover — the only
    /// streams TJFast reads (its records are fatter; see
    /// [`QueryEstimate::tjfast_cost`]).
    pub leaf_scan: u64,
    /// Fraction (0..=1, in 1/1024 units to stay integer) of the document
    /// region span covered by candidate-root hulls; `skip_to` gallops
    /// past the rest.
    pub cover_permille: u32,
    /// Lower-bound output estimate: the most selective returned node's
    /// feasible element count (every result row projects one element
    /// from it).
    pub expected_results: u64,
    /// Labels the plan scans.
    pub labels_scanned: u32,
    /// Labels whose summary filter survives `filter_worthwhile` (the
    /// rest are scanned filter-free — the XMark-Q2 lesson).
    pub filters_kept: u32,
}

impl QueryEstimate {
    /// Estimate `gtp`'s stream and output cardinalities against the path
    /// summary. Runs one [`SummaryFeasibility`] analysis — the same
    /// `O(query × summary)` pass `IndexedPlan::compute` runs, so a
    /// planner that calls both per plan doubles a cost the plan cache
    /// already amortizes to once per canonical query.
    pub fn compute(gtp: &Gtp, summary: SummaryRef<'_>, labels: &LabelTable) -> QueryEstimate {
        let dispatch = LabelDispatch::compile(gtp, labels);
        let feas = SummaryFeasibility::compute(gtp, summary, labels);
        if feas.is_unsatisfiable() {
            return QueryEstimate {
                unsatisfiable: true,
                scan_full: 0,
                scan_pruned: 0,
                leaf_scan: 0,
                cover_permille: 0,
                expected_results: 0,
                labels_scanned: 0,
                filters_kept: 0,
            };
        }

        // Full label postings, aggregated from the summary (per-sid
        // counts sum to the label's posting-list length).
        let mut label_counts = vec![0u64; labels.len()];
        for node in summary.nodes() {
            label_counts[node.label.index()] += u64::from(node.count);
        }

        // Root-cover fraction of the document's region span.
        let cover = feas.root_cover(gtp, summary);
        let doc_span = summary
            .nodes()
            .iter()
            .map(|n| u64::from(n.max_right))
            .max()
            .unwrap_or(0)
            + 1;
        let covered_span: u64 = cover
            .spans()
            .iter()
            .map(|&(l, r)| u64::from(r) - u64::from(l) + 1)
            .sum();
        let cover_permille = ((covered_span.min(doc_span) * 1024) / doc_span.max(1)) as u32;

        let mut scan_full = 0u64;
        let mut scan_pruned = 0u64;
        let mut labels_scanned = 0u32;
        let mut filters_kept = 0u32;
        for (i, &full) in label_counts.iter().enumerate() {
            let l = Label::from_index(i);
            if dispatch.query_nodes(l).is_empty() {
                continue;
            }
            labels_scanned += 1;
            scan_full += full;
            // Mirror the stream plan: the filter is the union of the
            // dispatched nodes' feasible sets, dropped when it admits
            // (nearly) every posting.
            let mut set = SummarySet::empty(summary.len());
            for &q in dispatch.query_nodes(l) {
                set.union(feas.feasible(q));
            }
            let covered = set.element_count(summary);
            if filter_worthwhile(covered, full) {
                filters_kept += 1;
                scan_pruned += covered;
            } else {
                // No per-element filter, but `skip_to` still gallops past
                // regions outside the candidate-root cover. Do NOT assume
                // uniform element density — on XMark-Q2 the cover spans
                // ~20% of the document yet holds *every* person element,
                // so a density-scaled estimate undershoots 5× and makes
                // pruning look profitable when it saves nothing. Instead
                // count per summary node: a sid whose region hull
                // intersects the cover contributes all its elements (the
                // gallop lands inside the hull and scans through it).
                scan_pruned += summary
                    .nodes()
                    .iter()
                    .filter(|n| n.label == l)
                    .filter(|n| {
                        cover.spans().iter().any(|&(cl, cr)| {
                            cl <= n.max_right && n.min_left <= cr
                        })
                    })
                    .map(|n| u64::from(n.count))
                    .sum::<u64>();
            }
        }

        // Leaf streams (TJFast reads nothing else).
        let leaf_scan = gtp
            .iter()
            .filter(|&q| gtp.is_leaf(q))
            .map(|q| feas.feasible(q).element_count(summary))
            .sum();

        // The most selective returned node bounds the distinct elements
        // any output column can hold.
        let expected_results = gtp
            .iter()
            .filter(|&q| gtp.role(q).is_output())
            .map(|q| feas.feasible(q).element_count(summary))
            .min()
            .unwrap_or(0);

        QueryEstimate {
            unsatisfiable: false,
            scan_full,
            scan_pruned,
            leaf_scan,
            cover_permille,
            expected_results,
            labels_scanned,
            filters_kept,
        }
    }

    /// Estimated elements saved by pruning (`scan_full − scan_pruned`).
    pub fn pruning_savings(&self) -> u64 {
        self.scan_full.saturating_sub(self.scan_pruned)
    }

    /// Decision-table predicate: is pruning worth its overhead? The
    /// feasibility sets are computed either way (the plan cache holds
    /// them), so the *runtime* overhead is the per-element sid probe and
    /// the cover gallop bookkeeping — worth paying only when at least
    /// 1/8 of the full scan goes away (XMark-Q2 saves ~0, TreeBank saves
    /// up to 93%; see EXPERIMENTS.md Fig S / Fig A).
    pub fn pruning_pays(&self) -> bool {
        self.unsatisfiable || self.pruning_savings() * 8 >= self.scan_full
    }

    /// TJFast's comparable scan cost: leaf elements only, but each record
    /// carries its full extended Dewey path, and every delivered element
    /// pays a transducer decode plus resolver lookups per ancestor. Fig A
    /// measured the per-element ratio against a region-stream scan at
    /// ~19× on TreeBank-Q1; weight 16× so the leaf-only scan must be an
    /// order of magnitude smaller before TJFast looks competitive.
    pub fn tjfast_cost(&self) -> u64 {
        self.leaf_scan.saturating_mul(16)
    }

    /// The region-engine scan cost under the recommended policy.
    pub fn region_cost(&self) -> u64 {
        if self.pruning_pays() {
            self.scan_pruned
        } else {
            self.scan_full
        }
    }

    /// Apply the DESIGN.md §14 decision table to this estimate.
    pub fn recommend(&self, gtp: &Gtp) -> Recommendation {
        let pruning = self.pruning_pays();
        let full_twig = is_full_twig(gtp);
        // Twig²Stack is the default: it matches every GTP, never
        // enumerates unmerged path solutions, and wins or ties on every
        // figure-16 query (Fig 16 / Table 1). A decomposition baseline is
        // chosen only inside its fragment *and* with a decisive predicted
        // advantage, so estimate noise cannot select a slower engine.
        let mut engine = PlanEngine::Twig2Stack;
        if full_twig {
            // TJFast reads only leaf streams: when internal streams
            // dominate the scan (deep chains over selective leaves), the
            // leaf-only scan wins despite its ~16× per-record cost.
            if self.tjfast_cost() * 2 < self.region_cost() {
                engine = PlanEngine::TJFast;
            }
        }
        // Early enumeration trades the result encoding's memory for
        // document-order streaming output; it pays only when the encoded
        // result set dwarfs the document scan (bounded-memory serving),
        // not on wall-clock — see DESIGN.md §14.
        let early = engine == PlanEngine::Twig2Stack
            && self.expected_results > (1 << 20)
            && self.expected_results > self.scan_full;
        Recommendation { engine, pruning, early }
    }
}

/// The planner's chosen knobs for one query (see DESIGN.md §14 for the
/// decision table that produces it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recommendation {
    /// Engine to evaluate with.
    pub engine: PlanEngine,
    /// Whether summary pruning pays for this query.
    pub pruning: bool,
    /// Whether to enumerate early (bounded-memory streaming output).
    pub early: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_twig;
    use xmlindex::PathSummary;

    fn setup(xml: &str) -> (xmldom::Document, PathSummary) {
        let doc = xmldom::parse(xml).unwrap();
        let summary = PathSummary::build(&doc);
        (doc, summary)
    }

    #[test]
    fn full_scan_counts_every_dispatched_label_posting() {
        let (doc, summary) = setup("<a><b><c/></b><b/><d><b/></d></a>");
        let gtp = parse_twig("//a/b").unwrap();
        let est = QueryEstimate::compute(&gtp, summary.view(), doc.labels());
        assert!(!est.unsatisfiable);
        // Labels scanned: a (1 element) + b (3 elements).
        assert_eq!(est.scan_full, 4);
        assert_eq!(est.labels_scanned, 2);
    }

    #[test]
    fn pruned_scan_respects_feasibility() {
        // Only the b under d is NOT reachable as /a/b; feasibility keeps
        // the a/b path and drops the a/d/b path.
        let (doc, summary) = setup("<a><b><c/></b><b/><d><b/></d></a>");
        let gtp = parse_twig("/a/b").unwrap();
        let est = QueryEstimate::compute(&gtp, summary.view(), doc.labels());
        assert!(est.scan_pruned <= est.scan_full);
        assert!(est.pruning_savings() >= 1, "the d/b posting is prunable");
    }

    #[test]
    fn unsatisfiable_queries_estimate_zero() {
        let (doc, summary) = setup("<a><b/></a>");
        let gtp = parse_twig("//a/z").unwrap();
        let est = QueryEstimate::compute(&gtp, summary.view(), doc.labels());
        assert!(est.unsatisfiable);
        assert_eq!(est.scan_full, 0);
        assert_eq!(est.expected_results, 0);
        assert!(est.pruning_pays(), "short-circuiting is free and total");
    }

    #[test]
    fn expected_results_is_the_most_selective_output_count() {
        let (doc, summary) = setup("<a><b/><b/><b/><c/></a>");
        let gtp = parse_twig("//a[b]/c").unwrap();
        let est = QueryEstimate::compute(&gtp, summary.view(), doc.labels());
        // Every node is returned (brackets don't demote roles in this
        // parser); the most selective is a or c at 1 element each.
        assert_eq!(est.expected_results, 1);
    }

    #[test]
    fn shape_gates_match_the_fuzzer_definitions() {
        let full = parse_twig("//a[b]/c").unwrap();
        assert!(is_full_twig(&full));
        assert!(!is_linear(&full), "a has two children");
        let linear = parse_twig("//a/b/c").unwrap();
        assert!(is_full_twig(&linear));
        assert!(is_linear(&linear));
        let gtp_ext = parse_twig("//a/b!/c").unwrap();
        assert!(!is_full_twig(&gtp_ext));
    }

    #[test]
    fn recommendation_defaults_to_twig2stack() {
        let (doc, summary) = setup("<a><b><c/></b></a>");
        let gtp = parse_twig("//a/b[c]").unwrap();
        let est = QueryEstimate::compute(&gtp, summary.view(), doc.labels());
        let rec = est.recommend(&gtp);
        assert_eq!(rec.engine, PlanEngine::Twig2Stack);
        assert!(!rec.early, "tiny results never trigger early enumeration");
    }
}
