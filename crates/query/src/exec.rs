//! Execution-control types shared by every fallible query driver:
//! typed evaluation errors and cooperative cancellation.
//!
//! The matching engines themselves are pure in-memory algorithms that
//! cannot fail, but the moment a driver reads streams from disk or runs
//! under a serving deadline, two failure modes appear that must reach the
//! caller as *values*, not as panics or silently short results:
//!
//! * **stream errors** — an on-disk element stream hit an I/O error
//!   mid-scan (see [`xmlindex::StreamError`]); the driver's result would
//!   be a truncated-but-plausible set, so the error must win;
//! * **cancellation** — the caller gave up (client disconnect) or a
//!   per-query deadline expired; drivers poll a [`CancelToken`] at
//!   stream-advance granularity and unwind with a typed error.
//!
//! ```
//! use gtpquery::{CancelToken, QueryError};
//! use std::time::Duration;
//!
//! let t = CancelToken::never();
//! assert!(t.check().is_ok());
//! let t = CancelToken::new();
//! t.cancel();
//! assert!(matches!(t.check(), Err(QueryError::Cancelled)));
//! let t = CancelToken::with_deadline(Duration::ZERO);
//! assert!(matches!(t.check(), Err(QueryError::DeadlineExceeded)));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmlindex::StreamError;

/// A typed evaluation failure. Fallible drivers return this instead of
/// panicking or returning truncated results.
#[derive(Debug)]
pub enum QueryError {
    /// An element stream failed mid-scan (disk I/O): the partial result
    /// is discarded and the underlying error surfaced.
    Stream(StreamError),
    /// The caller cancelled the evaluation via [`CancelToken::cancel`].
    Cancelled,
    /// The evaluation ran past its [`CancelToken::with_deadline`] budget.
    DeadlineExceeded,
    /// The query shape is outside the driver's supported fragment.
    Unsupported(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Stream(e) => write!(f, "{e}"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Unsupported(what) => write!(f, "unsupported query: {what}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for QueryError {
    fn from(e: StreamError) -> Self {
        QueryError::Stream(e)
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle, shared between a driver and its
/// caller.
///
/// Cloning is cheap (an `Arc`); [`CancelToken::never`] (the `Default`)
/// carries no allocation at all, so passing it through hot paths is free.
/// Drivers call [`check`](CancelToken::check) once per merge step — i.e.
/// at stream-advance granularity — which costs one atomic load on the
/// no-deadline path.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels and never expires (zero-cost checks).
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    #[allow(clippy::new_without_default)] // Default is `never`, not `new`
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that expires `budget` from now (and can also be cancelled
    /// manually).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Request cancellation: every subsequent [`check`](Self::check) on
    /// any clone of this token fails with [`QueryError::Cancelled`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True iff [`cancel`](Self::cancel) was called (does not consult the
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// Fail if the token was cancelled or its deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<(), QueryError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(QueryError::Cancelled);
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(QueryError::DeadlineExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_always_passes() {
        let t = CancelToken::never();
        assert!(t.check().is_ok());
        t.cancel(); // no-op on the empty token
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(CancelToken::default().check().is_ok());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(c.check().is_ok());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(matches!(c.check(), Err(QueryError::Cancelled)));
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(matches!(t.check(), Err(QueryError::DeadlineExceeded)));
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        // Manual cancellation wins over a far-future deadline.
        t.cancel();
        assert!(matches!(t.check(), Err(QueryError::Cancelled)));
    }

    #[test]
    fn error_display_and_source() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let e = QueryError::from(xmlindex::StreamError::new("region stream 'b'", io));
        assert!(e.to_string().contains("region stream 'b'"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&QueryError::Cancelled).is_none());
        assert_eq!(QueryError::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            QueryError::Unsupported("or-groups".into()).to_string(),
            "unsupported query: or-groups"
        );
    }
}
