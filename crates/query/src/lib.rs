//! # gtpquery — Generalized Tree Pattern queries
//!
//! The query model for the Twig²Stack reproduction:
//!
//! * [`gtp`] — the GTP data model: nodes with tests and roles
//!   (return / group-return / non-return), edges with axes (PC / AD) and
//!   optionality (paper §2);
//! * [`parse`] — an XPath-like twig syntax with GTP extensions
//!   (`!` non-return, `@` group-return, `/?`-style optional edges);
//! * [`xquery`] — translation of a FLWOR XQuery subset into a GTP;
//! * [`analysis`] — existence-checking classification (paper §3.5), the
//!   top branch node (paper §4.4), output schema, validation, the
//!   label-indexed dispatch table every matcher uses, and path-summary
//!   feasibility (the pruned-stream planner);
//! * [`cost`] — the adaptive planner's cost model: stream-size,
//!   skip-scan, and selectivity estimates from the path summary, plus
//!   the engine/policy decision table (DESIGN.md §14);
//! * [`exec`] — typed evaluation errors and cooperative cancellation for
//!   the fallible drivers (disk streams, serving deadlines).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cost;
pub mod exec;
pub mod gtp;
pub mod parse;
pub mod results;
pub mod serialize;
pub mod xquery;

pub use analysis::{
    LabelDispatch, ParallelFallback, QueryAnalysis, SummaryFeasibility, ValidationIssue,
};
pub use cost::{is_full_twig, is_linear, PlanEngine, QueryEstimate, Recommendation};
pub use exec::{CancelToken, QueryError};
pub use gtp::{Axis, Edge, Gtp, GtpBuilder, NodeTest, QNodeId, Role, ValuePred};
pub use parse::{parse_twig, QueryParseError};
pub use results::{Cell, ResultSet};
pub use serialize::{serialize, structurally_equal};
pub use xquery::{translate, XQueryError};
