//! Property-based differential testing of the baseline twig joins
//! (TwigStack, TJFast) against the naive oracle — and, transitively,
//! against Twig²Stack, which is differentially tested against the same
//! oracle in its own crate.
//!
//! Baselines only support full twig queries (all-return, mandatory
//! edges), so the query generator is restricted accordingly. Baselines
//! produce tuples in join order, so comparisons are canonical-sorted.

use gtpquery::{Axis, Gtp, GtpBuilder};
use proptest::prelude::*;
use twigbaselines::{
    naive_evaluate, path_stack, tj_fast, twig_stack, DeweyResolver, PathStackStats,
    TJFastStats, TwigStackStats,
};
use twigbaselines::build_streams;
use xmlindex::{DeweyIndex, ElementIndex, SliceStream};
use xmlgen::{generate_random_tree, RandomTreeConfig};
use xmldom::{write, Document, Indent};

const LABELS: [&str; 5] = ["a", "b", "c", "d", "*"];

#[derive(Debug, Clone)]
struct NodeSpec {
    label: usize,
    parent: prop::sample::Index,
    pc: bool,
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (0usize..LABELS.len(), any::<prop::sample::Index>(), any::<bool>())
        .prop_map(|(label, parent, pc)| NodeSpec { label, parent, pc })
}

fn query_strategy() -> impl Strategy<Value = Gtp> {
    (prop::collection::vec(node_spec(), 1..6), any::<bool>()).prop_map(|(specs, rooted)| {
        let mut b = GtpBuilder::new(LABELS[specs[0].label], rooted);
        let root = b.root();
        let mut ids = vec![root];
        for s in &specs[1..] {
            let parent = ids[s.parent.index(ids.len())];
            let axis = if s.pc { Axis::Child } else { Axis::Descendant };
            ids.push(b.child(parent, LABELS[s.label], axis));
        }
        b.build()
    })
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    (1usize..50, 1usize..4, 2u32..10, 0u32..100, any::<u64>()).prop_map(
        |(nodes, alphabet, max_depth, depth_bias, seed)| {
            generate_random_tree(&RandomTreeConfig { nodes, alphabet, max_depth, depth_bias, seed, text_vocab: 0 })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn twigstack_equals_oracle(doc in doc_strategy(), gtp in query_strategy()) {
        let expected = naive_evaluate(&doc, &gtp).sorted();
        let index = ElementIndex::build(&doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut stats = TwigStackStats::default();
        let got = twig_stack(&gtp, streams, &mut stats).sorted();
        prop_assert_eq!(&got, &expected, "doc={} query={}", write(&doc, Indent::None), gtp);
        prop_assert!(got.is_duplicate_free());
    }

    #[test]
    fn tjfast_equals_oracle(doc in doc_strategy(), gtp in query_strategy()) {
        let expected = naive_evaluate(&doc, &gtp).sorted();
        let index = DeweyIndex::build(&doc);
        let resolver = DeweyResolver::build(&index, doc.labels());
        let mut stats = TJFastStats::default();
        let got = tj_fast(&gtp, &index, doc.labels(), &resolver, &mut stats).sorted();
        prop_assert_eq!(&got, &expected, "doc={} query={}", write(&doc, Indent::None), gtp);
        prop_assert!(got.is_duplicate_free());
    }

    /// PathStack on linear chains only.
    #[test]
    fn pathstack_equals_oracle(
        doc in doc_strategy(),
        labels in prop::collection::vec(0usize..LABELS.len(), 1..5),
        axes in prop::collection::vec(any::<bool>(), 4),
        rooted in any::<bool>(),
    ) {
        let mut b = GtpBuilder::new(LABELS[labels[0]], rooted);
        let mut cur = b.root();
        for (i, &l) in labels[1..].iter().enumerate() {
            let axis = if axes[i] { Axis::Child } else { Axis::Descendant };
            cur = b.child(cur, LABELS[l], axis);
        }
        let gtp = b.build();
        let expected = naive_evaluate(&doc, &gtp).sorted();
        let index = ElementIndex::build(&doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut stats = PathStackStats::default();
        let sols = path_stack(&gtp, streams, &mut stats);
        // Convert path solutions to a sorted ResultSet.
        let analysis = gtpquery::QueryAnalysis::new(&gtp);
        let mut rs = gtpquery::ResultSet::new(analysis.columns().to_vec());
        for s in &sols.solutions {
            rs.push(s.iter().map(|&n| gtpquery::Cell::Node(n)).collect());
        }
        prop_assert_eq!(
            rs.sorted(), expected,
            "doc={} query={}", write(&doc, Indent::None), gtp
        );
    }
}
