//! Naive DOM-walk oracle for GTP evaluation.
//!
//! A direct, first-principles implementation of GTP semantics used as the
//! ground truth for differential testing of every optimized matcher in this
//! workspace. It favours clarity over speed:
//!
//! 1. a dynamic program computes `sat[q][n]` — does element `n` satisfy the
//!    sub-twig rooted at query node `q` (mandatory edges only)?
//! 2. a recursive enumerator walks the GTP top-down, carrying for each
//!    query node the document-ordered, duplicate-free set of *reachable*
//!    matches, and produces tuples exactly as defined in paper §4.3:
//!    return nodes multiply rows, group-return nodes fold their matches
//!    into a list, non-return nodes are projected away (union of their
//!    "total effects"), and unmatched optional branches yield nulls.
//!
//! Row order is the canonical GTP result order: matches of each return node
//! are visited in document order, outer columns varying slowest.

use gtpquery::{Axis, Cell, Gtp, NodeTest, QNodeId, QueryAnalysis, ResultSet, Role};
use xmldom::{Document, NodeId};

/// Boolean satisfaction table: `sat(q, n)` ⇔ element `n` matches the
/// sub-twig of query node `q` (considering mandatory edges only).
#[derive(Debug)]
pub struct SatTable {
    /// `rows[q.index()]` is a bitmap over node ids.
    rows: Vec<Vec<bool>>,
}

impl SatTable {
    /// Compute the table in O(|D|·|Q|·depth).
    pub fn compute(doc: &Document, gtp: &Gtp) -> Self {
        let n = doc.len();
        let mut rows: Vec<Vec<bool>> = vec![vec![false; n]; gtp.len()];
        for q in gtp.postorder() {
            // For each mandatory AD child edge we need "some node in the
            // subtree of n satisfies M"; precompute per child.
            let mut desc_sat: Vec<(QNodeId, Vec<bool>)> = Vec::new();
            for &m in gtp.children(q) {
                let e = gtp.edge(m).expect("child has an edge");
                if e.optional {
                    continue;
                }
                if e.axis == Axis::Descendant {
                    desc_sat.push((m, subtree_any(doc, &rows[m.index()])));
                }
            }
            // Mandatory children grouped by OR-group: satisfaction is the
            // conjunction over groups of the disjunction within each.
            let kids = gtp.children(q);
            let mut groups: Vec<Vec<QNodeId>> = Vec::new();
            for &m in kids {
                if gtp.edge(m).expect("child has an edge").optional {
                    continue;
                }
                match groups
                    .iter_mut()
                    .find(|g| gtp.or_group(g[0]) == gtp.or_group(m))
                {
                    Some(g) => g.push(m),
                    None => groups.push(vec![m]),
                }
            }
            let test = gtp.test(q);
            let vpred = gtp.value_pred(q);
            'nodes: for node in doc.iter() {
                if !node_test_matches(doc, node, test) {
                    continue;
                }
                if let Some(p) = vpred {
                    if !p.matches(doc.text(node)) {
                        continue;
                    }
                }
                for group in &groups {
                    let any = group.iter().any(|&m| {
                        match gtp.edge(m).expect("child has an edge").axis {
                            Axis::Child => doc
                                .children(node)
                                .any(|c| rows[m.index()][c.index()]),
                            Axis::Descendant => desc_sat
                                .iter()
                                .find(|(id, _)| *id == m)
                                .map(|(_, v)| v[node.index()])
                                .unwrap_or(false),
                        }
                    });
                    if !any {
                        continue 'nodes;
                    }
                }
                rows[q.index()][node.index()] = true;
            }
        }
        SatTable { rows }
    }

    /// Does `node` satisfy the sub-twig rooted at `q`?
    #[inline]
    pub fn get(&self, q: QNodeId, node: NodeId) -> bool {
        self.rows[q.index()][node.index()]
    }

    /// All satisfying elements of `q`, in document order.
    pub fn matches(&self, q: QNodeId) -> Vec<NodeId> {
        self.rows[q.index()]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

fn node_test_matches(doc: &Document, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Wildcard => true,
        NodeTest::Name(n) => doc.tag_name(node) == n,
    }
}

/// `out[n]` ⇔ some node strictly inside the subtree of `n` has `sat` set.
fn subtree_any(doc: &Document, sat: &[bool]) -> Vec<bool> {
    let mut out = vec![false; sat.len()];
    // Children have larger ids than parents (pre-order), so a reverse scan
    // sees every child before its parent.
    for i in (0..sat.len()).rev() {
        let node = NodeId::from_index(i);
        if let Some(p) = doc.parent(node) {
            if sat[i] || out[i] {
                out[p.index()] = true;
            }
        }
    }
    out
}

/// Evaluate `gtp` over `doc`, producing the full GTP result set.
///
/// # Panics
/// Panics if the query is not enumerable (see
/// [`QueryAnalysis::enumerable`]); callers should validate first.
pub fn evaluate(doc: &Document, gtp: &Gtp) -> ResultSet {
    let analysis = QueryAnalysis::new(gtp);
    assert!(
        analysis.enumerable(),
        "query is not enumerable: {:?}",
        analysis.issues()
    );
    let sat = SatTable::compute(doc, gtp);
    let mut result = ResultSet::new(analysis.columns().to_vec());
    if result.columns.is_empty() {
        return result; // pure boolean query: no output schema
    }

    let root = gtp.root();
    let mut candidates = sat.matches(root);
    if gtp.is_rooted() {
        candidates.retain(|&n| doc.region(n).level == 1);
    }
    if candidates.is_empty() {
        return result;
    }
    let ctx = Ctx { doc, gtp, analysis: &analysis, sat: &sat };
    for row in enum_node(&ctx, root, &candidates) {
        result.push(row.into_iter().map(|c| c.expect("all columns filled")).collect());
    }
    result
}

/// True iff any element matches the (boolean) query at all — the result for
/// queries without output nodes.
pub fn exists(doc: &Document, gtp: &Gtp) -> bool {
    let sat = SatTable::compute(doc, gtp);
    let mut candidates = sat.matches(gtp.root());
    if gtp.is_rooted() {
        candidates.retain(|&n| doc.region(n).level == 1);
    }
    !candidates.is_empty()
}

struct Ctx<'a> {
    doc: &'a Document,
    gtp: &'a Gtp,
    analysis: &'a QueryAnalysis,
    sat: &'a SatTable,
}

type PartialRow = Vec<Option<Cell>>;

/// Elements of `m` related to `e` under `axis` that satisfy `m`'s sub-twig,
/// in document order.
fn related(ctx: &Ctx<'_>, e: NodeId, m: QNodeId) -> Vec<NodeId> {
    let edge = ctx.gtp.edge(m).expect("non-root");
    match edge.axis {
        Axis::Child => ctx
            .doc
            .children(e)
            .filter(|&c| ctx.sat.get(m, c))
            .collect(),
        Axis::Descendant => ctx
            .doc
            .descendants_or_self(e)
            .skip(1)
            .filter(|&d| ctx.sat.get(m, d))
            .collect(),
    }
}

/// Rows (partial, full-width) for the sub-GTP rooted at `q` given its
/// reachable match set `elems` (document-ordered, duplicate-free).
fn enum_node(ctx: &Ctx<'_>, q: QNodeId, elems: &[NodeId]) -> Vec<PartialRow> {
    let width = ctx.analysis.columns().len();
    match ctx.gtp.role(q) {
        Role::Return => {
            let col = ctx.analysis.column_of(q).expect("return node is a column");
            let mut rows = Vec::new();
            for &e in elems {
                // Cartesian product over output-bearing children.
                let mut branch_rows: Vec<PartialRow> = vec![vec![None; width]];
                for &m in ctx.gtp.children(q) {
                    if !ctx.analysis.has_output_below(m) {
                        continue;
                    }
                    let mset = related(ctx, e, m);
                    let mut sub = enum_node(ctx, m, &mset);
                    if sub.is_empty() {
                        sub = vec![null_row(ctx, m)];
                    }
                    branch_rows = product(branch_rows, sub);
                }
                for mut row in branch_rows {
                    row[col] = Some(Cell::Node(e));
                    rows.push(row);
                }
            }
            rows
        }
        Role::GroupReturn => {
            let col = ctx.analysis.column_of(q).expect("group node is a column");
            let mut row = vec![None; width];
            row[col] = Some(Cell::Group(elems.to_vec()));
            vec![row]
        }
        Role::NonReturn => {
            // Exactly one output-bearing child (validated); union the
            // total effects of all elements on it.
            let m = ctx
                .gtp
                .children(q)
                .iter()
                .copied()
                .find(|&c| ctx.analysis.has_output_below(c))
                .expect("non-return node on an output path has an output child");
            let mut union: Vec<NodeId> = Vec::new();
            for &e in elems {
                union.extend(related(ctx, e, m));
            }
            union.sort_unstable();
            union.dedup();
            if union.is_empty() {
                // Possible only below an optional edge.
                return vec![null_row_for(ctx, m)];
            }
            enum_node(ctx, m, &union)
        }
    }
}

/// A row with every output column in the subtree of `m` nulled.
fn null_row(ctx: &Ctx<'_>, m: QNodeId) -> PartialRow {
    null_row_for(ctx, m)
}

fn null_row_for(ctx: &Ctx<'_>, m: QNodeId) -> PartialRow {
    let width = ctx.analysis.columns().len();
    let mut row = vec![None; width];
    fill_nulls(ctx, m, &mut row);
    row
}

fn fill_nulls(ctx: &Ctx<'_>, q: QNodeId, row: &mut PartialRow) {
    if let Some(col) = ctx.analysis.column_of(q) {
        row[col] = Some(match ctx.gtp.role(q) {
            Role::GroupReturn => Cell::Group(Vec::new()),
            _ => Cell::Null,
        });
    }
    for &c in ctx.gtp.children(q) {
        if ctx.analysis.has_output_below(c) {
            fill_nulls(ctx, c, row);
        }
    }
}

fn product(a: Vec<PartialRow>, b: Vec<PartialRow>) -> Vec<PartialRow> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ra in &a {
        for rb in &b {
            let merged: PartialRow = ra
                .iter()
                .zip(rb.iter())
                .map(|(x, y)| match (x, y) {
                    (Some(v), None) => Some(v.clone()),
                    (None, Some(v)) => Some(v.clone()),
                    (None, None) => None,
                    (Some(_), Some(_)) => unreachable!("columns overlap across branches"),
                })
                .collect();
            out.push(merged);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use xmldom::parse;

    /// The document of paper Figure 1 (reconstructed from the paper's
    /// worked examples):
    /// `a1( a2( a3(b1(c1 d1)) b2( a4(b3(c2 d2(d3))) c3 ) ) b4(d4) )`.
    fn figure1() -> Document {
        parse(
            "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
             <b><d/></b></a>",
        )
        .unwrap()
    }

    /// Names of nodes in a single-Node-column result, for readable asserts.
    fn col_names(doc: &Document, rs: &ResultSet, col: usize) -> Vec<String> {
        rs.rows
            .iter()
            .map(|r| match &r[col] {
                Cell::Node(n) => format!("{}{}", doc.tag_name(*n), n.index()),
                Cell::Null => "-".into(),
                Cell::Group(g) => format!(
                    "{{{}}}",
                    g.iter()
                        .map(|n| format!("{}{}", doc.tag_name(*n), n.index()))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            })
            .collect()
    }

    #[test]
    fn paper_section2_example_i_full_path_matches() {
        // //B//D with both return: 6 matches (paper §2 example (i)).
        let doc = figure1();
        let rs = evaluate(&doc, &parse_twig("//b//d").unwrap());
        assert_eq!(rs.len(), 6);
        assert!(rs.is_duplicate_free());
    }

    #[test]
    fn paper_section2_example_ii_single_return_d() {
        // //B!//D: results are the 4 distinct d elements (example (ii)).
        let doc = figure1();
        let rs = evaluate(&doc, &parse_twig("//b!//d").unwrap());
        assert_eq!(rs.len(), 4);
        assert!(rs.is_duplicate_free());
        // All results are d elements in document order.
        let mut last = None;
        for row in &rs.rows {
            let Cell::Node(n) = row[0] else { panic!() };
            assert_eq!(doc.tag_name(n), "d");
            if let Some(prev) = last {
                assert!(prev < n, "document order violated");
            }
            last = Some(n);
        }
    }

    #[test]
    fn paper_section2_example_iii_single_return_b() {
        // //A!/B: the 4 b elements, in document order (example (iii)).
        let doc = figure1();
        let rs = evaluate(&doc, &parse_twig("//a!/b").unwrap());
        assert_eq!(rs.len(), 4);
        let mut last = None;
        for row in &rs.rows {
            let Cell::Node(n) = row[0] else { panic!() };
            assert_eq!(doc.tag_name(n), "b");
            if let Some(prev) = last {
                assert!(prev < n);
            }
            last = Some(n);
        }
    }

    #[test]
    fn figure1_twig_query_root_matches() {
        // //A/B[//D][/C]: exactly a2, a3 and a4 satisfy the twig (paper
        // Figure 4 shows HS[A] holding those three); a1 fails because b4
        // has no c child.
        let doc = figure1();
        let gtp = parse_twig("//a/b[//d][c]").unwrap();
        let sat = SatTable::compute(&doc, &gtp);
        let matches = sat.matches(gtp.root());
        assert_eq!(matches.len(), 3);
        assert!(matches.iter().all(|&n| doc.tag_name(n) == "a"));
        assert!(!matches.contains(&doc.root()), "a1 must not match");
    }

    #[test]
    fn rooted_query_restricts_to_document_root() {
        let doc = parse("<a><a><b/></a><b/></a>").unwrap();
        let unrooted = evaluate(&doc, &parse_twig("//a/b").unwrap());
        assert_eq!(unrooted.len(), 2);
        let rooted = evaluate(&doc, &parse_twig("/a/b").unwrap());
        assert_eq!(rooted.len(), 1);
    }

    #[test]
    fn group_return_folds_matches() {
        let doc = parse("<r><p><x/><x/></p><p><x/></p><p/></r>").unwrap();
        // //p[x@] — wait: group must hang off a return node; use //r!/p/x@
        let gtp = parse_twig("//p[?x@]").unwrap();
        let rs = evaluate(&doc, &gtp);
        let names = col_names(&doc, &rs, 1);
        assert_eq!(rs.len(), 3); // one row per p
        assert!(names[0].contains(','), "two x grouped: {names:?}");
        assert_eq!(names[2], "{}"); // empty group for childless p
    }

    #[test]
    fn optional_edge_produces_nulls() {
        let doc = parse("<r><p><x/></p><p/></r>").unwrap();
        let gtp = parse_twig("//p[?x]").unwrap();
        let rs = evaluate(&doc, &gtp);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[1][1], Cell::Null);
        assert!(matches!(rs.rows[0][1], Cell::Node(_)));
    }

    #[test]
    fn mandatory_edge_filters() {
        let doc = parse("<r><p><x/></p><p/></r>").unwrap();
        let gtp = parse_twig("//p[x]").unwrap();
        let rs = evaluate(&doc, &gtp);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn boolean_query_exists() {
        let doc = parse("<r><p><x/></p></r>").unwrap();
        assert!(exists(&doc, &parse_twig("//p!/x!").unwrap()));
        assert!(!exists(&doc, &parse_twig("//p!/y!").unwrap()));
        let rs = evaluate(&doc, &parse_twig("//p!/x!").unwrap());
        assert!(rs.columns.is_empty());
    }

    #[test]
    fn cartesian_product_of_branches() {
        let doc = parse("<r><p><x/><x/><y/><y/></p></r>").unwrap();
        let rs = evaluate(&doc, &parse_twig("//p[x][y]").unwrap());
        assert_eq!(rs.len(), 4); // 2 x × 2 y under the single p
        assert!(rs.is_duplicate_free());
    }

    #[test]
    fn wildcard_query() {
        let doc = parse("<r><p><x/></p><q><x/></q></r>").unwrap();
        let rs = evaluate(&doc, &parse_twig("//*/x").unwrap());
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn deep_recursion_same_label() {
        let doc = parse("<a><a><a><b/></a></a></a>").unwrap();
        // //a//b: 3 a's each with b descendant.
        let rs = evaluate(&doc, &parse_twig("//a//b").unwrap());
        assert_eq!(rs.len(), 3);
        // //a/a: pairs (a1,a2), (a2,a3).
        let rs2 = evaluate(&doc, &parse_twig("//a/a").unwrap());
        assert_eq!(rs2.len(), 2);
    }
}
