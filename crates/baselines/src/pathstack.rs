//! PathStack (Bruno et al., SIGMOD 2002) — linear path matching.
//!
//! The top-down counterpart of Twig²Stack's encoding idea (paper §3.1):
//! one stack per query node, elements pushed in document order iff the
//! parent stack still holds an open ancestor; stack positions plus
//! push-time pointers into the parent stack compactly encode *all* partial
//! path matches. Solutions are expanded when a leaf-node element is
//! pushed.
//!
//! Used standalone for linear queries and as the top-down half of the
//! hybrid early-enumeration mode (paper §4.4).

use crate::pathjoin::PathSolutions;
use gtpquery::{Axis, Gtp, NodeTest, SummaryFeasibility};
use twigobs::Counter;
use xmlindex::{
    ElemStream, IndexView, IndexedElement, PrunedStream, PruningPolicy, RegionCover,
};
use xmldom::{LabelTable, NodeId};

/// Statistics from a PathStack run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStackStats {
    /// Elements consumed from the streams.
    pub elements_scanned: usize,
    /// Elements pushed onto stacks.
    pub elements_pushed: usize,
    /// Path solutions emitted.
    pub solutions: usize,
}

/// Materialized per-query-node element lists (document order), including
/// wildcard support (all labels merged). Stream construction is the "IO"
/// phase; run it outside any timed query-processing region.
pub fn build_streams<I: IndexView>(
    index: &I,
    labels: &LabelTable,
    gtp: &Gtp,
) -> Vec<Vec<IndexedElement>> {
    gtp.iter()
        .map(|q| match gtp.test(q) {
            NodeTest::Name(n) => labels
                .get(n)
                .map(|l| index.elements(l).to_vec())
                .unwrap_or_default(),
            NodeTest::Wildcard => {
                let mut all: Vec<IndexedElement> = (0..labels.len())
                    .flat_map(|i| index.elements(xmldom::Label::from_index(i)).iter().copied())
                    .collect();
                all.sort_by_key(|e| e.region.left);
                all
            }
        })
        .collect()
}

/// Per-query-node pruned, skip-capable streams: each query node's stream
/// is restricted to its summary-feasible elements (when `feas` is given)
/// and gallops past document regions outside `cover`. Named nodes borrow
/// the index's label partitions; wildcard nodes materialize the merged
/// label lists with infeasible elements dropped up front (counted as
/// pruned). Shared by every `*_indexed` baseline driver.
pub fn build_pruned_streams<'a, I: IndexView>(
    index: &'a I,
    labels: &LabelTable,
    gtp: &Gtp,
    feas: Option<&'a SummaryFeasibility>,
    cover: Option<&'a RegionCover>,
) -> Vec<PrunedStream<'a>> {
    let summary = index.summary();
    gtp.iter()
        .map(|q| {
            let filter = feas.map(|f| f.feasible(q));
            match gtp.test(q) {
                NodeTest::Name(n) => match labels.get(n) {
                    Some(l) => index.pruned_stream(l, filter, cover),
                    None => PrunedStream::owned(Vec::new(), None),
                },
                NodeTest::Wildcard => {
                    let mut all: Vec<IndexedElement> = (0..labels.len())
                        .flat_map(|i| {
                            index.elements(xmldom::Label::from_index(i)).iter().copied()
                        })
                        .collect();
                    if let Some(f) = filter {
                        let before = all.len();
                        all.retain(|e| f.contains(summary.sid(e.id)));
                        twigobs::add(Counter::ElementsPruned, (before - all.len()) as u64);
                    }
                    all.sort_by_key(|e| e.region.left);
                    PrunedStream::owned(all, cover)
                }
            }
        })
        .collect()
}

/// Run PathStack over a **linear** path query.
///
/// `streams[i]` must hold the elements for the `i`-th query node on the
/// path (root first), in document order.
///
/// # Panics
/// Panics if the query branches.
pub fn path_stack<S: ElemStream>(
    gtp: &Gtp,
    mut streams: Vec<S>,
    stats: &mut PathStackStats,
) -> PathSolutions<NodeId> {
    // The linear chain of query nodes.
    let mut path = vec![gtp.root()];
    let mut q = gtp.root();
    while let Some(&c) = gtp.children(q).first() {
        assert!(gtp.children(q).len() == 1, "PathStack handles linear paths only");
        path.push(c);
        q = c;
    }
    assert_eq!(streams.len(), path.len(), "one stream per path node");
    let _span = twigobs::span(twigobs::Phase::Match);

    let axes: Vec<Option<Axis>> = path
        .iter()
        .map(|&q| gtp.edge(q).map(|e| e.axis))
        .collect();

    // Per-node stack: (element, pointer = parent-stack height at push).
    let mut stacks: Vec<Vec<(IndexedElement, u32)>> = vec![Vec::new(); path.len()];
    let mut solutions = Vec::new();

    loop {
        // q_min: stream head with minimal LeftPos; ties (same element
        // matching several nodes — impossible on a linear path with
        // distinct positions, but wildcards allow it) break upper-first.
        let mut q_min: Option<usize> = None;
        let mut min_left = u32::MAX;
        for (i, s) in streams.iter_mut().enumerate() {
            if let Some(e) = s.peek() {
                if e.region.left < min_left {
                    min_left = e.region.left;
                    q_min = Some(i);
                }
            }
        }
        let Some(qi) = q_min else { break };
        let e = streams[qi].next_elem().expect("peeked head");
        stats.elements_scanned += 1;

        // Pop everything that closed before e opens.
        for st in &mut stacks {
            while st.last().is_some_and(|(t, _)| t.region.right < e.region.left) {
                st.pop();
            }
        }

        // Push check: root is free (modulo the rooted constraint); other
        // nodes need a live *proper* ancestor in the parent stack (the
        // same element may sit there when adjacent query nodes share a
        // label or a wildcard; it is not its own ancestor). Stacks are
        // nested chains, so the bottom element has the smallest left.
        let ok = if qi == 0 {
            !gtp.is_rooted() || e.region.level == 1
        } else {
            stacks[qi - 1]
                .first()
                .is_some_and(|(t, _)| t.region.left < e.region.left)
        };
        if !ok {
            continue;
        }
        let ptr = if qi == 0 { 0 } else { stacks[qi - 1].len() as u32 };
        if qi == path.len() - 1 {
            // Leaf: expand solutions right away; the leaf element itself
            // never needs to stay (nothing points below it).
            stats.elements_pushed += 1;
            twigobs::bump(twigobs::Counter::StackPushes);
            expand(&stacks, &axes, qi, &e, ptr, &mut Vec::new(), &mut solutions);
        } else {
            stacks[qi].push((e, ptr));
            stats.elements_pushed += 1;
            twigobs::bump(twigobs::Counter::StackPushes);
        }
    }
    stats.solutions = solutions.len();
    PathSolutions { path, solutions }
}

/// [`path_stack`] driven from an [`xmlindex::ElementIndex`] with path-summary
/// pruning per `policy`. Results are identical to the unpruned run; an
/// unsatisfiable query short-circuits without reading any stream element.
pub fn path_stack_indexed<I: IndexView>(
    index: &I,
    labels: &LabelTable,
    gtp: &Gtp,
    policy: PruningPolicy,
    stats: &mut PathStackStats,
) -> PathSolutions<NodeId> {
    let feas = policy
        .is_enabled()
        .then(|| SummaryFeasibility::compute(gtp, index.summary(), labels));
    if feas.as_ref().is_some_and(|f| f.is_unsatisfiable()) {
        let mut path = vec![gtp.root()];
        let mut q = gtp.root();
        while let Some(&c) = gtp.children(q).first() {
            path.push(c);
            q = c;
        }
        return PathSolutions { path, solutions: Vec::new() };
    }
    let cover = feas.as_ref().map(|f| f.root_cover(gtp, index.summary()));
    let streams = build_pruned_streams(index, labels, gtp, feas.as_ref(), cover.as_ref());
    path_stack(gtp, streams, stats)
}

/// Expand all path solutions ending at `e` (query position `qi`, parent
/// pointer `ptr`), appending leaf-to-root partials and emitting reversed
/// (root-to-leaf) rows.
fn expand(
    stacks: &[Vec<(IndexedElement, u32)>],
    axes: &[Option<Axis>],
    qi: usize,
    e: &IndexedElement,
    ptr: u32,
    partial: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    partial.push(e.id);
    if qi == 0 {
        let mut row: Vec<NodeId> = partial.clone();
        row.reverse();
        out.push(row);
    } else {
        let pc = axes[qi] == Some(Axis::Child);
        for idx in 0..ptr as usize {
            let (p, pptr) = stacks[qi - 1][idx];
            // Skip the element itself (same element in adjacent stacks).
            if !p.region.is_ancestor_of(&e.region) {
                continue;
            }
            if !pc || p.region.level + 1 == e.region.level {
                expand(stacks, axes, qi - 1, &p, pptr, partial, out);
            }
        }
    }
    partial.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use xmlindex::{ElementIndex, SliceStream};
    use xmldom::parse;

    fn run(xml: &str, query: &str) -> (PathSolutions<NodeId>, PathStackStats) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let index = ElementIndex::build(&doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut stats = PathStackStats::default();
        let sols = path_stack(&gtp, streams, &mut stats);
        (sols, stats)
    }

    #[test]
    fn section31_example() {
        // Path //A/B//D over the root-to-leaf chain a1,a2,b2,a4,b3,d2,d3
        // (paper §3.1): d2 and d3 each yield (a2,b2,·) and (a4,b3,·),
        // four solutions in total.
        let xml = "<a><a><b><a><b><d><d/></d></b></a></b></a></a>";
        let (sols, stats) = run(xml, "//a/b//d");
        assert_eq!(sols.solutions.len(), 4);
        assert_eq!(stats.solutions, 4);
        for s in &sols.solutions {
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn matches_oracle_on_linear_paths() {
        use crate::naive::evaluate as naive;
        let xml = "<a><a><b><c/><b><c/></b></b></a><b/><c/></a>";
        let doc = parse(xml).unwrap();
        for q in ["//a/b/c", "//a//b//c", "//a//b/c", "//a/b//c", "/a/b", "//b/c"] {
            let gtp = parse_twig(q).unwrap();
            let (sols, _) = run(xml, q);
            let mut got: Vec<Vec<NodeId>> = sols.solutions.clone();
            got.sort();
            let oracle = naive(&doc, &gtp);
            let mut expected: Vec<Vec<NodeId>> = oracle
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|c| match c {
                            gtpquery::Cell::Node(n) => *n,
                            _ => unreachable!(),
                        })
                        .collect()
                })
                .collect();
            expected.sort();
            assert_eq!(got, expected, "query {q}");
        }
    }

    #[test]
    fn wildcard_streams() {
        let (sols, _) = run("<r><p><x/></p><q><x/></q></r>", "//*/x");
        assert_eq!(sols.solutions.len(), 2); // (p,x1) and (q,x2)
    }

    #[test]
    fn empty_result() {
        let (sols, stats) = run("<a><b/></a>", "//a/c");
        assert!(sols.solutions.is_empty());
        assert_eq!(stats.solutions, 0);
    }

    #[test]
    fn indexed_pruning_matches_unpruned() {
        let xml = "<a><a><b><c/><b><c/></b></b></a><b/><c/><d><b/></d></a>";
        let doc = parse(xml).unwrap();
        let index = ElementIndex::build(&doc);
        for q in ["//a/b/c", "//a//b//c", "//a/b//c", "//*/b/c"] {
            let gtp = parse_twig(q).unwrap();
            let mut on = PathStackStats::default();
            let mut off = PathStackStats::default();
            let sols_on =
                path_stack_indexed(&index, doc.labels(), &gtp, PruningPolicy::Enabled, &mut on);
            let sols_off =
                path_stack_indexed(&index, doc.labels(), &gtp, PruningPolicy::Disabled, &mut off);
            let mut a = sols_on.solutions.clone();
            let mut b = sols_off.solutions.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {q}");
            assert!(on.elements_scanned <= off.elements_scanned, "query {q}");
        }
    }

    #[test]
    fn indexed_unsatisfiable_short_circuits() {
        // b and c both occur, but c never sits below b.
        let doc = parse("<a><b/><b/><c/></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//b//c").unwrap();
        let mut stats = PathStackStats::default();
        let sols =
            path_stack_indexed(&index, doc.labels(), &gtp, PruningPolicy::Enabled, &mut stats);
        assert!(sols.solutions.is_empty());
        assert_eq!(stats.elements_scanned, 0);
    }
}
