//! Root-to-leaf path solutions and their merge-join into twig tuples.
//!
//! The decomposition-based twig algorithms (TwigStack \[4\], TJFast \[16\])
//! both end with the same post-processing: the twig is split into its
//! root-to-leaf paths, each path produces *path solutions* (one element per
//! query node on the path), and the solutions of different paths are
//! joined on their shared prefix nodes. This module implements that shared
//! machinery, generic over the element identity type (`NodeId` for
//! region-encoded algorithms, Dewey ids for TJFast).
//!
//! The join is a sort-merge join: both sides are sorted by the shared
//! columns, equal groups are combined pairwise. The paper's point — which
//! the benchmarks in this workspace reproduce — is that enumerating and
//! joining these per-path solutions is precisely the cost Twig²Stack
//! avoids.

use gtpquery::Gtp;
use gtpquery::QNodeId;

/// The root-to-leaf paths of `gtp`, each as the query-node chain from the
/// root to one leaf, leaves in pre-order.
pub fn root_to_leaf_paths(gtp: &Gtp) -> Vec<Vec<QNodeId>> {
    let mut paths = Vec::new();
    let mut current = Vec::new();
    fn walk(gtp: &Gtp, q: QNodeId, current: &mut Vec<QNodeId>, paths: &mut Vec<Vec<QNodeId>>) {
        current.push(q);
        if gtp.is_leaf(q) {
            paths.push(current.clone());
        } else {
            for &c in gtp.children(q) {
                walk(gtp, c, current, paths);
            }
        }
        current.pop();
    }
    walk(gtp, gtp.root(), &mut current, &mut paths);
    paths
}

/// One set of solutions for one root-to-leaf path: `solutions[i][j]` is the
/// element bound to `path[j]` in the `i`-th solution.
#[derive(Debug, Clone)]
pub struct PathSolutions<T> {
    /// The query-node chain this set answers.
    pub path: Vec<QNodeId>,
    /// Solutions, each of length `path.len()`.
    pub solutions: Vec<Vec<T>>,
}

/// Statistics of a merge-join run — the cost the paper attributes to
/// decomposition-based processing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Total path solutions fed into the join.
    pub path_solutions: usize,
    /// Comparisons performed while merging.
    pub comparisons: usize,
    /// Twig tuples produced.
    pub output_tuples: usize,
}

/// Merge-join per-path solutions into full twig assignments.
///
/// Returns assignments as dense vectors indexed by `QNodeId::index()`
/// (every query node bound), in no particular order.
pub fn merge_join<T: Ord + Clone>(
    gtp: &Gtp,
    mut per_path: Vec<PathSolutions<T>>,
    stats: &mut JoinStats,
) -> Vec<Vec<T>> {
    assert!(!per_path.is_empty(), "a twig has at least one path");
    let _span = twigobs::span(twigobs::Phase::Enumerate);
    stats.path_solutions = per_path.iter().map(|p| p.solutions.len()).sum();
    // If any path has no solutions, the twig has none.
    if per_path.iter().any(|p| p.solutions.is_empty()) {
        return Vec::new();
    }

    let width = gtp.len();
    let first = per_path.remove(0);
    // Accumulated partial assignments and the set of bound query nodes.
    let mut bound: Vec<QNodeId> = first.path.clone();
    let mut acc: Vec<Vec<Option<T>>> = first
        .solutions
        .into_iter()
        .map(|sol| {
            let mut row = vec![None; width];
            for (q, v) in first.path.iter().zip(sol) {
                row[q.index()] = Some(v);
            }
            row
        })
        .collect();

    for ps in per_path {
        // Shared columns: the prefix of ps.path already bound (paths share
        // exactly their common prefix in a tree query, but computing the
        // intersection keeps this robust).
        let shared: Vec<QNodeId> = ps
            .path
            .iter()
            .copied()
            .filter(|q| bound.contains(q))
            .collect();
        let new_cols: Vec<QNodeId> = ps
            .path
            .iter()
            .copied()
            .filter(|q| !bound.contains(q))
            .collect();

        // Sort both sides by the shared key.
        let key_acc = |row: &Vec<Option<T>>| -> Vec<T> {
            shared
                .iter()
                .map(|q| row[q.index()].clone().expect("shared column bound"))
                .collect()
        };
        let key_sol = |sol: &Vec<T>| -> Vec<T> {
            shared
                .iter()
                .map(|q| {
                    let pos = ps.path.iter().position(|p| p == q).expect("shared in path");
                    sol[pos].clone()
                })
                .collect()
        };
        acc.sort_by_key(|a| key_acc(a));
        let mut sols = ps.solutions;
        sols.sort_by_key(|a| key_sol(a));

        let mut out: Vec<Vec<Option<T>>> = Vec::new();
        let mut i = 0;
        let mut j = 0;
        while i < acc.len() && j < sols.len() {
            stats.comparisons += 1;
            let ka = key_acc(&acc[i]);
            let kb = key_sol(&sols[j]);
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Group boundaries on both sides.
                    let i_end = (i..acc.len())
                        .take_while(|&x| key_acc(&acc[x]) == ka)
                        .last()
                        .unwrap()
                        + 1;
                    let j_end = (j..sols.len())
                        .take_while(|&x| key_sol(&sols[x]) == ka)
                        .last()
                        .unwrap()
                        + 1;
                    for a in &acc[i..i_end] {
                        for s in &sols[j..j_end] {
                            let mut row = a.clone();
                            for q in &new_cols {
                                let pos =
                                    ps.path.iter().position(|p| p == q).expect("col in path");
                                row[q.index()] = Some(s[pos].clone());
                            }
                            out.push(row);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        acc = out;
        bound.extend(new_cols);
        if acc.is_empty() {
            return Vec::new();
        }
    }

    stats.output_tuples = acc.len();
    // The join is the baselines' result-producing stage; count its
    // output tuples as the enumerated results.
    twigobs::add(twigobs::Counter::ResultsEnumerated, acc.len() as u64);
    acc.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| v.expect("all query nodes bound after joining all paths"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;

    #[test]
    fn paths_of_branching_query() {
        let gtp = parse_twig("//a/b[//d][c]/e").unwrap();
        let paths = root_to_leaf_paths(&gtp);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p[0], gtp.root());
        }
        assert_eq!(paths[0].len(), 3); // a/b/d
        assert_eq!(paths[2].len(), 3); // a/b/e
    }

    #[test]
    fn linear_query_single_path() {
        let gtp = parse_twig("//a/b//c").unwrap();
        let paths = root_to_leaf_paths(&gtp);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn join_two_paths_on_shared_prefix() {
        // Query //a[b][c]: paths a/b and a/c.
        let gtp = parse_twig("//a[b]/c").unwrap();
        let paths = root_to_leaf_paths(&gtp);
        let a = gtp.root();
        let b = gtp.children(a)[0];
        let c = gtp.children(a)[1];
        // a1 has b1, b2, c1; a2 has b3 (no c).
        let ps = vec![
            PathSolutions {
                path: paths[0].clone(),
                solutions: vec![vec![1, 10], vec![1, 11], vec![2, 12]],
            },
            PathSolutions {
                path: paths[1].clone(),
                solutions: vec![vec![1, 20]],
            },
        ];
        let mut stats = JoinStats::default();
        let joined = merge_join(&gtp, ps, &mut stats);
        assert_eq!(joined.len(), 2); // (a1,b1,c1), (a1,b2,c1)
        for row in &joined {
            assert_eq!(row[a.index()], 1);
            assert_eq!(row[c.index()], 20);
            assert!(row[b.index()] == 10 || row[b.index()] == 11);
        }
        assert_eq!(stats.path_solutions, 4);
        assert_eq!(stats.output_tuples, 2);
    }

    #[test]
    fn empty_side_yields_empty_join() {
        let gtp = parse_twig("//a[b]/c").unwrap();
        let paths = root_to_leaf_paths(&gtp);
        let ps = vec![
            PathSolutions { path: paths[0].clone(), solutions: vec![vec![1, 10]] },
            PathSolutions { path: paths[1].clone(), solutions: Vec::<Vec<i32>>::new() },
        ];
        let mut stats = JoinStats::default();
        assert!(merge_join(&gtp, ps, &mut stats).is_empty());
    }

    #[test]
    fn three_way_join() {
        // //a[b][c][d]
        let gtp = parse_twig("//a[b][c]/d").unwrap();
        let paths = root_to_leaf_paths(&gtp);
        let ps = vec![
            PathSolutions {
                path: paths[0].clone(),
                solutions: vec![vec![1, 10], vec![2, 10]],
            },
            PathSolutions {
                path: paths[1].clone(),
                solutions: vec![vec![1, 20], vec![1, 21]],
            },
            PathSolutions {
                path: paths[2].clone(),
                solutions: vec![vec![1, 30], vec![2, 31]],
            },
        ];
        let mut stats = JoinStats::default();
        let joined = merge_join(&gtp, ps, &mut stats);
        // a=1: 1 b × 2 c × 1 d = 2; a=2 has no c.
        assert_eq!(joined.len(), 2);
    }
}
