//! TJFast (Lu et al., VLDB 2005) — twig joins over extended Dewey labels.
//!
//! The strongest baseline in the paper's evaluation. TJFast scans only the
//! streams of the query's **leaf** labels: each leaf element's extended
//! Dewey id is run through the schema transducer to recover its whole
//! ancestor label path, the root-to-leaf query path is matched against
//! that label path directly (ancestors are identified by Dewey prefixes —
//! no ancestor streams are ever read), and the per-path solutions are
//! merge-joined on their shared prefix nodes.
//!
//! The IO trade-off this reproduces (paper §5.1): fewer streams than
//! region-encoded algorithms, but fatter records — which backfires for
//! queries with many leaves and few internal nodes (XMark-Q3 in the
//! paper).

use crate::pathjoin::{merge_join, root_to_leaf_paths, JoinStats, PathSolutions};
use gtpquery::{Axis, Cell, Gtp, NodeTest, QueryAnalysis, ResultSet, Role, SummaryFeasibility};
use std::collections::HashMap;
use twigobs::Counter;
use xmlindex::{DeweyIndex, PruningPolicy, SummaryRef};
use xmldom::{LabelTable, NodeId};

/// Statistics from a TJFast run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TJFastStats {
    /// Leaf-stream elements scanned.
    pub elements_scanned: usize,
    /// Bytes those leaf streams occupy in the on-disk record format.
    pub leaf_stream_bytes: usize,
    /// Root-to-leaf path solutions emitted.
    pub path_solutions: usize,
    /// Merge-join statistics.
    pub join: JoinStats,
}

/// A document element identified by its extended Dewey id (the identity
/// TJFast joins on; lexicographic order = document order).
pub type DeweyKey = Vec<u32>;

/// Maps Dewey ids back to node ids for result output. Built once per
/// document (index-construction time, not query time).
#[derive(Debug, Clone, Default)]
pub struct DeweyResolver {
    map: HashMap<DeweyKey, NodeId>,
}

impl DeweyResolver {
    /// Build the full reverse map of `index`.
    pub fn build(index: &DeweyIndex, labels: &LabelTable) -> Self {
        let mut map = HashMap::new();
        for (label, _) in labels.iter() {
            for e in index.elements(label) {
                map.insert(e.dewey.to_vec(), e.id);
            }
        }
        DeweyResolver { map }
    }

    /// Resolve one Dewey id.
    pub fn resolve(&self, dewey: &[u32]) -> Option<NodeId> {
        self.map.get(dewey).copied()
    }
}

/// Compute TJFast path solutions for every root-to-leaf path of `gtp`.
///
/// # Panics
/// Panics on optional edges (TJFast pre-dates GTPs).
pub fn tj_fast_solutions(
    gtp: &Gtp,
    index: &DeweyIndex,
    labels: &LabelTable,
    stats: &mut TJFastStats,
) -> Vec<PathSolutions<DeweyKey>> {
    solutions_pruned(gtp, index, labels, None, stats)
}

/// [`tj_fast_solutions`], with leaf streams optionally restricted to each
/// leaf node's summary-feasible elements before scanning.
fn solutions_pruned(
    gtp: &Gtp,
    index: &DeweyIndex,
    labels: &LabelTable,
    pruner: Option<(SummaryRef<'_>, &SummaryFeasibility)>,
    stats: &mut TJFastStats,
) -> Vec<PathSolutions<DeweyKey>> {
    assert!(
        gtp.iter().all(|q| gtp.edge(q).is_none_or(|e| !e.optional)),
        "TJFast does not support optional edges"
    );
    assert!(
        !gtp.has_or_groups(),
        "TJFast does not support AND/OR twigs"
    );
    assert!(
        !gtp.has_value_preds(),
        "TJFast operates on structural indexes without element text"
    );
    let _span = twigobs::span(twigobs::Phase::Match);
    let paths = root_to_leaf_paths(gtp);
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let leaf = *path.last().expect("non-empty path");
        // Leaf stream: one label, or all labels merged for a wildcard.
        let mut leaf_elems: Vec<(NodeId, Vec<u32>)> = match gtp.test(leaf) {
            NodeTest::Name(n) => {
                stats.leaf_stream_bytes += labels
                    .get(n)
                    .map(|l| index.stream_bytes(l))
                    .unwrap_or(0);
                labels
                    .get(n)
                    .map(|l| {
                        index
                            .elements(l)
                            .into_iter()
                            .map(|e| (e.id, e.dewey.to_vec()))
                            .collect()
                    })
                    .unwrap_or_default()
            }
            NodeTest::Wildcard => {
                let mut all: Vec<(NodeId, Vec<u32>)> = labels
                    .iter()
                    .flat_map(|(l, _)| {
                        stats.leaf_stream_bytes += index.stream_bytes(l);
                        index
                            .elements(l)
                            .into_iter()
                            .map(|e| (e.id, e.dewey.to_vec()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                all.sort_by(|a, b| a.1.cmp(&b.1));
                all
            }
        };

        // Elements whose summary id the planner proved infeasible for the
        // leaf node can head no solution: drop them before the Dewey
        // decode (stream_bytes still reflects the full leaf stream — the
        // Dewey records carry no summary ids on disk).
        if let Some((summary, feas)) = pruner {
            let before = leaf_elems.len();
            let set = feas.feasible(leaf);
            leaf_elems.retain(|(id, _)| set.contains(summary.sid(*id)));
            twigobs::add(Counter::ElementsPruned, (before - leaf_elems.len()) as u64);
        }

        // Per-step tests and axes along this path.
        let tests: Vec<&NodeTest> = path.iter().map(|&q| gtp.test(q)).collect();
        let axes: Vec<Option<Axis>> = path.iter().map(|&q| gtp.edge(q).map(|e| e.axis)).collect();

        let mut solutions = Vec::new();
        for (_, dewey) in &leaf_elems {
            stats.elements_scanned += 1;
            // TJFast reads leaf records directly (no ElemStream), so the
            // obs scan counter is maintained here.
            twigobs::bump(twigobs::Counter::ElementsScanned);
            // Decode the ancestor label path from the Dewey id alone.
            let label_path = index.decode_labels(dewey);
            let names: Vec<&str> = label_path.iter().map(|&l| labels.name(l)).collect();
            match_path(
                &names,
                dewey,
                &tests,
                &axes,
                gtp.is_rooted(),
                &mut solutions,
            );
        }
        stats.path_solutions += solutions.len();
        out.push(PathSolutions { path, solutions });
    }
    out
}

/// Enumerate all assignments of the query path to positions on one decoded
/// label path. `names[p]` is the label at depth `p` (prefix length `p`);
/// the leaf query node is pinned to the last position.
fn match_path(
    names: &[&str],
    dewey: &[u32],
    tests: &[&NodeTest],
    axes: &[Option<Axis>],
    rooted: bool,
    out: &mut Vec<Vec<DeweyKey>>,
) {
    let last = names.len() - 1;
    if !tests[tests.len() - 1].matches(names[last]) {
        return;
    }
    // Backtracking over positions for query nodes 0..k-1; node k = last.
    let k = tests.len() - 1;
    let mut positions = vec![0usize; tests.len()];
    positions[k] = last;
    #[allow(clippy::too_many_arguments)] // mirrors the paper's recursion state
    fn rec(
        i: usize,
        k: usize,
        names: &[&str],
        dewey: &[u32],
        tests: &[&NodeTest],
        axes: &[Option<Axis>],
        rooted: bool,
        positions: &mut Vec<usize>,
        out: &mut Vec<Vec<DeweyKey>>,
    ) {
        if i == k {
            // All internal nodes placed; check the final step k-1 → k.
            if k > 0 {
                let prev = positions[k - 1];
                let ok = match axes[k].expect("non-root has an axis") {
                    Axis::Child => positions[k] == prev + 1,
                    Axis::Descendant => positions[k] > prev,
                };
                if !ok {
                    return;
                }
            } else if rooted && positions[0] != 0 {
                return;
            }
            out.push(
                positions
                    .iter()
                    .map(|&p| dewey[..p].to_vec())
                    .collect(),
            );
            return;
        }
        let lo = if i == 0 {
            0
        } else {
            match axes[i].expect("non-root has an axis") {
                Axis::Child => positions[i - 1] + 1,
                Axis::Descendant => positions[i - 1] + 1,
            }
        };
        let hi = positions[k]; // internal nodes sit strictly above the leaf
        for p in lo..hi {
            if i == 0 && rooted && p != 0 {
                break;
            }
            if !tests[i].matches(names[p]) {
                continue;
            }
            if i > 0 {
                let prev = positions[i - 1];
                let ok = match axes[i].expect("non-root") {
                    Axis::Child => p == prev + 1,
                    Axis::Descendant => p > prev,
                };
                if !ok {
                    if axes[i] == Some(Axis::Child) && p > prev + 1 {
                        break; // PC can only sit immediately below
                    }
                    continue;
                }
            }
            positions[i] = p;
            rec(i + 1, k, names, dewey, tests, axes, rooted, positions, out);
        }
    }
    rec(0, k, names, dewey, tests, axes, rooted, &mut positions, out);
}

/// Full TJFast pipeline: leaf-stream matching + merge-join + resolution
/// into a [`ResultSet`] over an all-return twig query.
pub fn tj_fast(
    gtp: &Gtp,
    index: &DeweyIndex,
    labels: &LabelTable,
    resolver: &DeweyResolver,
    stats: &mut TJFastStats,
) -> ResultSet {
    assert!(
        gtp.iter().all(|q| gtp.role(q) == Role::Return),
        "TJFast produces full twig matches only (all-return queries)"
    );
    let per_path = tj_fast_solutions(gtp, index, labels, stats);
    resolve_tuples(gtp, per_path, resolver, stats)
}

/// [`tj_fast`] with path-summary pruning per `policy`: leaf streams are
/// restricted to each leaf node's feasible summary ids (`summary` must
/// describe the same document as `index`). Results are identical to the
/// unpruned run; an unsatisfiable query short-circuits without scanning
/// any leaf element.
#[allow(clippy::too_many_arguments)] // one handle per index structure
pub fn tj_fast_indexed(
    gtp: &Gtp,
    index: &DeweyIndex,
    summary: SummaryRef<'_>,
    labels: &LabelTable,
    resolver: &DeweyResolver,
    policy: PruningPolicy,
    stats: &mut TJFastStats,
) -> ResultSet {
    assert!(
        gtp.iter().all(|q| gtp.role(q) == Role::Return),
        "TJFast produces full twig matches only (all-return queries)"
    );
    let feas = policy
        .is_enabled()
        .then(|| SummaryFeasibility::compute(gtp, summary, labels));
    if feas.as_ref().is_some_and(|f| f.is_unsatisfiable()) {
        return ResultSet::new(QueryAnalysis::new(gtp).columns().to_vec());
    }
    let per_path = solutions_pruned(
        gtp,
        index,
        labels,
        feas.as_ref().map(|f| (summary, f)),
        stats,
    );
    resolve_tuples(gtp, per_path, resolver, stats)
}

/// Merge-join per-path solutions and resolve Dewey ids into node ids.
fn resolve_tuples(
    gtp: &Gtp,
    per_path: Vec<PathSolutions<DeweyKey>>,
    resolver: &DeweyResolver,
    stats: &mut TJFastStats,
) -> ResultSet {
    let mut join_stats = JoinStats::default();
    let tuples = merge_join(gtp, per_path, &mut join_stats);
    stats.join = join_stats;

    let analysis = QueryAnalysis::new(gtp);
    let mut rs = ResultSet::new(analysis.columns().to_vec());
    for t in tuples {
        rs.push(
            analysis
                .columns()
                .iter()
                .map(|q| {
                    Cell::Node(
                        resolver
                            .resolve(&t[q.index()])
                            .expect("every matched Dewey id resolves"),
                    )
                })
                .collect(),
        );
    }
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate as naive;
    use gtpquery::parse_twig;
    use xmldom::parse;

    fn run(xml: &str, query: &str) -> (ResultSet, TJFastStats) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let index = DeweyIndex::build(&doc);
        let resolver = DeweyResolver::build(&index, doc.labels());
        let mut stats = TJFastStats::default();
        let rs = tj_fast(&gtp, &index, doc.labels(), &resolver, &mut stats);
        (rs, stats)
    }

    const FIG1: &str = "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
                        <b><d/></b></a>";

    #[test]
    fn figure1_twig() {
        let doc = parse(FIG1).unwrap();
        let gtp = parse_twig("//a/b[//d][c]").unwrap();
        let (rs, stats) = run(FIG1, "//a/b[//d][c]");
        assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted());
        // Only d and c streams were scanned: 4 + 3 elements.
        assert_eq!(stats.elements_scanned, 7);
    }

    #[test]
    fn matches_oracle_on_twigs() {
        let docs = [
            FIG1,
            "<r><p><x/><y/></p><p><x/></p><p><y/></p></r>",
            "<a><a><b/><a><b><c/></b></a></a><c/></a>",
        ];
        let queries = [
            "//a/b[//d][c]",
            "//a//b",
            "//a/b",
            "//a/a/b",
            "//p[x]/y",
            "//p[x][y]",
            "//r[p]/p/x",
            "//a[b]//c",
            "//a/a[b//c]",
        ];
        for xml in docs {
            let doc = parse(xml).unwrap();
            for q in queries {
                let gtp = parse_twig(q).unwrap();
                let (rs, _) = run(xml, q);
                assert_eq!(
                    rs.sorted(),
                    naive(&doc, &gtp).sorted(),
                    "query {q} on {xml}"
                );
            }
        }
    }

    #[test]
    fn rooted_query() {
        let xml = "<a><a><b/></a><b/></a>";
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("/a/b").unwrap();
        let (rs, _) = run(xml, "/a/b");
        assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted());
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn scans_only_leaf_streams() {
        // Query //a/b on Figure 1: only the b stream is scanned (4
        // elements), not the 4 a's.
        let (_, stats) = run(FIG1, "//a/b");
        assert_eq!(stats.elements_scanned, 4);
        assert!(stats.leaf_stream_bytes > 0);
    }

    #[test]
    fn recursive_labels_decode_correctly() {
        let xml = "<a><a><a><b/></a></a><b/></a>";
        let doc = parse(xml).unwrap();
        for q in ["//a/a/b", "//a//b", "//a/a//b", "//a/a/a/b"] {
            let gtp = parse_twig(q).unwrap();
            let (rs, _) = run(xml, q);
            assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted(), "query {q}");
        }
    }

    #[test]
    fn wildcard_leaf() {
        let xml = "<r><p><x/></p><q><y/></q></r>";
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("//r/*").unwrap();
        let (rs, _) = run(xml, "//r/*");
        assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted());
    }

    #[test]
    fn empty_results() {
        let (rs, stats) = run("<a><b/></a>", "//a/c");
        assert!(rs.is_empty());
        assert_eq!(stats.path_solutions, 0);
    }

    #[test]
    fn indexed_pruning_matches_unpruned_and_scans_less() {
        use xmlindex::{ElementIndex, PruningPolicy};
        // The d leaves under b are feasible for //a/b//d; the d under x is
        // not (no b on its path), so pruning must skip it pre-decode.
        let xml = "<a><b><d/><d/></b><x><d/></x><b><c/></b></a>";
        let doc = parse(xml).unwrap();
        let index = DeweyIndex::build(&doc);
        let summary = ElementIndex::build(&doc);
        let resolver = DeweyResolver::build(&index, doc.labels());
        let gtp = parse_twig("//a/b//d").unwrap();
        let mut on = TJFastStats::default();
        let mut off = TJFastStats::default();
        let rs_on = tj_fast_indexed(
            &gtp,
            &index,
            summary.summary(),
            doc.labels(),
            &resolver,
            PruningPolicy::Enabled,
            &mut on,
        );
        let rs_off = tj_fast_indexed(
            &gtp,
            &index,
            summary.summary(),
            doc.labels(),
            &resolver,
            PruningPolicy::Disabled,
            &mut off,
        );
        assert_eq!(rs_on.clone().sorted(), rs_off.sorted());
        assert_eq!(rs_on.sorted(), naive(&doc, &gtp).sorted());
        assert_eq!(off.elements_scanned, 3);
        assert_eq!(on.elements_scanned, 2, "the x/d leaf must be pruned");
    }

    #[test]
    fn indexed_unsatisfiable_short_circuits() {
        use xmlindex::{ElementIndex, PruningPolicy};
        let xml = "<a><b/><c/></a>";
        let doc = parse(xml).unwrap();
        let index = DeweyIndex::build(&doc);
        let summary = ElementIndex::build(&doc);
        let resolver = DeweyResolver::build(&index, doc.labels());
        let gtp = parse_twig("//b/c").unwrap();
        let mut stats = TJFastStats::default();
        let rs = tj_fast_indexed(
            &gtp,
            &index,
            summary.summary(),
            doc.labels(),
            &resolver,
            PruningPolicy::Enabled,
            &mut stats,
        );
        assert!(rs.is_empty());
        assert_eq!(stats.elements_scanned, 0);
    }
}
