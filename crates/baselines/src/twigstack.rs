//! TwigStack (Bruno et al., SIGMOD 2002) — holistic twig joins.
//!
//! The classic comparison system of the paper's evaluation. One sorted
//! element stream and one stack per query node; the `getNext` oracle
//! advances streams so that (for AD-only queries) every pushed element is
//! guaranteed to contribute to some twig match. Root-to-leaf **path
//! solutions** are expanded whenever a leaf element is pushed, and a final
//! merge-join over the shared prefix nodes assembles twig tuples — the
//! post-processing phase that Twig²Stack eliminates and that the paper's
//! Figure 16 measures.
//!
//! With parent-child edges TwigStack is (famously) suboptimal: `getNext`
//! reasons with ancestor-descendant relaxations, so useless path solutions
//! are produced and later dropped by the merge-join. That behaviour is
//! intentional here — it is the effect the paper evaluates.

use crate::pathjoin::{merge_join, root_to_leaf_paths, JoinStats, PathSolutions};
use crate::pathstack::build_pruned_streams;
use gtpquery::{
    Axis, Cell, Gtp, QNodeId, QueryAnalysis, QueryError, ResultSet, Role, SummaryFeasibility,
};
use xmlindex::{ElemStream, IndexView, IndexedElement, PruningPolicy};
use xmldom::{LabelTable, NodeId};

/// Statistics from a TwigStack run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwigStackStats {
    /// Elements consumed from streams.
    pub elements_scanned: usize,
    /// Elements `getNext` bypassed with [`ElemStream::skip_to`] instead of
    /// scanning (pruning enabled only; zero otherwise).
    pub elements_skipped: usize,
    /// Elements pushed onto stacks.
    pub elements_pushed: usize,
    /// Root-to-leaf path solutions emitted.
    pub path_solutions: usize,
    /// Merge-join statistics.
    pub join: JoinStats,
}

struct Run<'g, S> {
    gtp: &'g Gtp,
    streams: Vec<S>,
    policy: PruningPolicy,
    /// Per query node: (element, pointer into parent stack at push time).
    stacks: Vec<Vec<(IndexedElement, u32)>>,
    /// Leaf-indexed accumulated path solutions.
    paths: Vec<Vec<QNodeId>>,
    solutions: Vec<Vec<Vec<NodeId>>>,
    stats: TwigStackStats,
}

impl<S: ElemStream> Run<'_, S> {
    fn next_l(&mut self, q: QNodeId) -> u32 {
        self.streams[q.index()]
            .peek()
            .map_or(u32::MAX, |e| e.region.left)
    }

    fn next_r(&mut self, q: QNodeId) -> u32 {
        self.streams[q.index()]
            .peek()
            .map_or(u32::MAX, |e| e.region.right)
    }

    /// The `getNext` oracle of the TwigStack paper.
    fn get_next(&mut self, q: QNodeId) -> QNodeId {
        if self.gtp.is_leaf(q) {
            return q;
        }
        let children: Vec<QNodeId> = self.gtp.children(q).to_vec();
        let mut n_min = children[0];
        let mut n_max = children[0];
        for &c in &children {
            let r = self.get_next(c);
            if r != c {
                return r;
            }
            if self.next_l(c) < self.next_l(n_min) {
                n_min = c;
            }
            if self.next_l(c) > self.next_l(n_max) {
                n_max = c;
            }
        }
        // Discard head elements of `q` that end before n_max's head can
        // start nesting in them. With pruning on, `skip_to` lets a
        // skip-capable stream gallop over them (block-max jumps on the
        // in-memory index, record drops on disk) instead of delivering
        // each one; with pruning off the classic one-by-one advance keeps
        // the historical scan counts.
        if self.policy.is_enabled() {
            let target = self.next_l(n_max);
            self.stats.elements_skipped += self.streams[q.index()].skip_to(target);
        } else {
            while self.next_r(q) < self.next_l(n_max) {
                self.streams[q.index()].advance();
                self.stats.elements_scanned += 1;
            }
        }
        if self.next_l(q) < self.next_l(n_min) {
            q
        } else {
            n_min
        }
    }

    /// Pop dead elements from one stack. TwigStack cleans only the acting
    /// node's stack and its parent's — never all stacks: sibling branches
    /// may lag arbitrarily far behind, and their live elements' ancestors
    /// must stay on the shared stacks until the lagging branch passes them.
    fn clean_stack(&mut self, q: QNodeId, left: u32) {
        let st = &mut self.stacks[q.index()];
        while st.last().is_some_and(|(t, _)| t.region.right < left) {
            st.pop();
        }
    }

    /// Expand path solutions for a just-pushed leaf element.
    fn show_solutions(&mut self, leaf_path: usize, e: IndexedElement, ptr: u32) {
        let path = self.paths[leaf_path].clone();
        let qi = path.len() - 1;
        let mut partial = Vec::with_capacity(path.len());
        let mut rows = Vec::new();
        self.expand(&path, qi, &e, ptr, &mut partial, &mut rows);
        self.stats.path_solutions += rows.len();
        self.solutions[leaf_path].extend(rows);
    }

    fn expand(
        &self,
        path: &[QNodeId],
        qi: usize,
        e: &IndexedElement,
        ptr: u32,
        partial: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        partial.push(e.id);
        if qi == 0 {
            let mut row = partial.clone();
            row.reverse();
            out.push(row);
        } else {
            let q = path[qi];
            let pc = self.gtp.edge(q).expect("non-root").axis == Axis::Child;
            let parent_stack = &self.stacks[path[qi - 1].index()];
            for &(p, pptr) in &parent_stack[..ptr as usize] {
                // Skip the element itself (same element in adjacent
                // stacks via shared labels or wildcards).
                if !p.region.is_ancestor_of(&e.region) {
                    continue;
                }
                if !pc || p.region.level + 1 == e.region.level {
                    self.expand(path, qi - 1, &p, pptr, partial, out);
                }
            }
        }
        partial.pop();
    }
}

/// Run TwigStack over per-query-node streams (document order, one per
/// query node, indexed by `QNodeId::index()`), producing path solutions
/// per root-to-leaf path.
///
/// # Panics
/// Panics if the query has optional edges (TwigStack pre-dates GTPs).
pub fn twig_stack_solutions<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    stats: &mut TwigStackStats,
) -> Vec<PathSolutions<NodeId>> {
    twig_stack_solutions_with(gtp, streams, PruningPolicy::Disabled, stats)
}

/// [`twig_stack_solutions`] with an explicit [`PruningPolicy`]: when
/// enabled, `getNext`'s discard loop gallops with
/// [`ElemStream::skip_to`] instead of advancing element by element.
///
/// Infallible convenience for in-memory streams; see
/// [`try_twig_stack_solutions_with`] for the fallible (disk-capable)
/// variant this delegates to.
pub fn twig_stack_solutions_with<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    policy: PruningPolicy,
    stats: &mut TwigStackStats,
) -> Vec<PathSolutions<NodeId>> {
    try_twig_stack_solutions_with(gtp, streams, policy, stats)
        .expect("in-memory streams cannot fail")
}

/// Fallible [`twig_stack_solutions_with`]: after the run, every stream is
/// swept with [`ElemStream::take_error`], so a disk stream that hit an I/O
/// error (and reported a premature EOF to `getNext`) surfaces as
/// [`QueryError::Stream`] instead of a silently truncated solution set.
pub fn try_twig_stack_solutions_with<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    policy: PruningPolicy,
    stats: &mut TwigStackStats,
) -> Result<Vec<PathSolutions<NodeId>>, QueryError> {
    assert!(
        gtp.iter().all(|q| gtp.edge(q).is_none_or(|e| !e.optional)),
        "TwigStack does not support optional edges"
    );
    assert!(
        !gtp.has_or_groups(),
        "TwigStack does not support AND/OR twigs"
    );
    assert!(
        !gtp.has_value_preds(),
        "TwigStack operates on structural indexes without element text"
    );
    assert_eq!(streams.len(), gtp.len());
    let _span = twigobs::span(twigobs::Phase::Match);
    let paths = root_to_leaf_paths(gtp);
    let mut run = Run {
        gtp,
        streams,
        policy,
        stacks: vec![Vec::new(); gtp.len()],
        solutions: vec![Vec::new(); paths.len()],
        paths,
        stats: TwigStackStats::default(),
    };
    // Map each leaf query node to its path index.
    let leaf_path: Vec<Option<usize>> = gtp
        .iter()
        .map(|q| run.paths.iter().position(|p| *p.last().unwrap() == q))
        .collect();

    loop {
        let mut q = run.get_next(gtp.root());
        if run.streams[q.index()].peek().is_none() {
            // The chosen node's stream is dry. If every leaf stream is dry
            // we are done. Otherwise we are in the endgame: some branch
            // has exhausted its leaf, so no *new* twig roots can complete,
            // but elements already on the stacks may still head solutions
            // of the remaining leaves — keep draining the smallest head
            // directly (the getNext oracle cannot make progress past a dry
            // subtree; this fallback trades endgame optimality for
            // completeness).
            let all_leaves_dry = gtp
                .iter()
                .filter(|&l| gtp.is_leaf(l))
                .all(|l| run.streams[l.index()].peek().is_none());
            if all_leaves_dry {
                break;
            }
            q = gtp
                .iter()
                .min_by_key(|&n| run.next_l(n))
                .expect("non-empty query");
            if run.streams[q.index()].peek().is_none() {
                break; // only stacks remain; nothing left to scan
            }
        }
        let e = run.streams[q.index()].peek().expect("checked non-dry");
        run.streams[q.index()].advance();
        run.stats.elements_scanned += 1;
        if let Some(p) = gtp.parent(q) {
            run.clean_stack(p, e.region.left);
        }
        run.clean_stack(q, e.region.left);
        let ok = if q == gtp.root() {
            !gtp.is_rooted() || e.region.level == 1
        } else {
            // Needs a *proper* ancestor in the parent stack (stacks are
            // nested chains; the bottom element has the smallest left).
            let parent = gtp.parent(q).expect("non-root");
            run.stacks[parent.index()]
                .first()
                .is_some_and(|(t, _)| t.region.left < e.region.left)
        };
        if !ok {
            continue;
        }
        let ptr = gtp
            .parent(q)
            .map_or(0, |p| run.stacks[p.index()].len() as u32);
        run.stats.elements_pushed += 1;
        twigobs::bump(twigobs::Counter::StackPushes);
        if gtp.is_leaf(q) {
            let lp = leaf_path[q.index()].expect("leaf has a path");
            run.show_solutions(lp, e, ptr);
        } else {
            run.stacks[q.index()].push((e, ptr));
        }
    }

    // Error sweep before results: a failed stream reported EOF to the
    // loop above, so its "completion" may be a truncation.
    for s in run.streams.iter_mut() {
        if let Some(e) = s.take_error() {
            return Err(QueryError::Stream(e));
        }
    }

    let mut out = Vec::new();
    for (path, solutions) in run.paths.iter().zip(run.solutions) {
        out.push(PathSolutions { path: path.clone(), solutions });
    }
    *stats = run.stats;
    Ok(out)
}

/// Full TwigStack pipeline: path solutions + merge-join into a
/// [`ResultSet`] over an all-return twig query.
pub fn twig_stack<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    stats: &mut TwigStackStats,
) -> ResultSet {
    twig_stack_with(gtp, streams, PruningPolicy::Disabled, stats)
}

/// [`twig_stack`] with an explicit [`PruningPolicy`] (see
/// [`twig_stack_solutions_with`]); delegates to [`try_twig_stack_with`].
pub fn twig_stack_with<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    policy: PruningPolicy,
    stats: &mut TwigStackStats,
) -> ResultSet {
    try_twig_stack_with(gtp, streams, policy, stats).expect("in-memory streams cannot fail")
}

/// Fallible [`twig_stack_with`]: stream I/O errors surface as
/// [`QueryError::Stream`] (see [`try_twig_stack_solutions_with`]) instead
/// of producing a truncated [`ResultSet`].
pub fn try_twig_stack_with<S: ElemStream>(
    gtp: &Gtp,
    streams: Vec<S>,
    policy: PruningPolicy,
    stats: &mut TwigStackStats,
) -> Result<ResultSet, QueryError> {
    assert!(
        gtp.iter().all(|q| gtp.role(q) == Role::Return),
        "TwigStack produces full twig matches only (all-return queries)"
    );
    let per_path = try_twig_stack_solutions_with(gtp, streams, policy, stats)?;
    let mut join_stats = JoinStats::default();
    let tuples = merge_join(gtp, per_path, &mut join_stats);
    stats.join = join_stats;

    let analysis = QueryAnalysis::new(gtp);
    let mut rs = ResultSet::new(analysis.columns().to_vec());
    for t in tuples {
        rs.push(
            analysis
                .columns()
                .iter()
                .map(|q| Cell::Node(t[q.index()]))
                .collect(),
        );
    }
    Ok(rs)
}

/// [`twig_stack`] driven from an [`xmlindex::ElementIndex`] with path-summary
/// pruning per `policy`: per-query-node streams restricted to each node's
/// feasible summary ids, galloping past regions no candidate root spans.
/// Results are identical to the unpruned run; an unsatisfiable query
/// short-circuits without reading any stream element.
pub fn twig_stack_indexed<I: IndexView>(
    index: &I,
    labels: &LabelTable,
    gtp: &Gtp,
    policy: PruningPolicy,
    stats: &mut TwigStackStats,
) -> ResultSet {
    let feas = policy
        .is_enabled()
        .then(|| SummaryFeasibility::compute(gtp, index.summary(), labels));
    if feas.as_ref().is_some_and(|f| f.is_unsatisfiable()) {
        return ResultSet::new(QueryAnalysis::new(gtp).columns().to_vec());
    }
    let cover = feas.as_ref().map(|f| f.root_cover(gtp, index.summary()));
    let streams = build_pruned_streams(index, labels, gtp, feas.as_ref(), cover.as_ref());
    twig_stack_with(gtp, streams, policy, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate as naive;
    use crate::pathstack::build_streams;
    use gtpquery::parse_twig;
    use xmlindex::{ElementIndex, SliceStream};
    use xmldom::parse;

    fn run(xml: &str, query: &str) -> (ResultSet, TwigStackStats) {
        let doc = parse(xml).unwrap();
        let gtp = parse_twig(query).unwrap();
        let index = ElementIndex::build(&doc);
        let owned = build_streams(&index, doc.labels(), &gtp);
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut stats = TwigStackStats::default();
        let rs = twig_stack(&gtp, streams, &mut stats);
        (rs, stats)
    }

    const FIG1: &str = "<a><a><a><b><c/><d/></b></a><b><a><b><c/><d><d/></d></b></a><c/></b></a>\
                        <b><d/></b></a>";

    #[test]
    fn figure1_twig() {
        let doc = parse(FIG1).unwrap();
        let gtp = parse_twig("//a/b[//d][c]").unwrap();
        let (rs, stats) = run(FIG1, "//a/b[//d][c]");
        let expected = naive(&doc, &gtp);
        assert_eq!(rs.clone().sorted(), expected.sorted());
        assert!(stats.path_solutions >= rs.len());
    }

    #[test]
    fn matches_oracle_on_twigs() {
        let docs = [
            FIG1,
            "<r><p><x/><y/></p><p><x/></p><p><y/></p></r>",
            "<a><a><b/><a><b><c/></b></a></a><c/></a>",
        ];
        let queries = [
            "//a/b[//d][c]",
            "//a//b",
            "//a/b",
            "//p[x]/y",
            "//p[x][y]",
            "//r[p]/p/x",
            "//a[b]//c",
            "//a/a[b//c]",
        ];
        for xml in docs {
            let doc = parse(xml).unwrap();
            for q in queries {
                let gtp = parse_twig(q).unwrap();
                let (rs, _) = run(xml, q);
                assert_eq!(
                    rs.sorted(),
                    naive(&doc, &gtp).sorted(),
                    "query {q} on {xml}"
                );
            }
        }
    }

    #[test]
    fn rooted_query() {
        let doc = parse("<a><a><b/></a><b/></a>").unwrap();
        let gtp = parse_twig("/a/b").unwrap();
        let (rs, _) = run("<a><a><b/></a><b/></a>", "/a/b");
        assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted());
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn empty_results() {
        let (rs, _) = run("<a><b/></a>", "//a[c]/b");
        assert!(rs.is_empty());
    }

    #[test]
    fn indexed_pruning_matches_unpruned() {
        let docs = [FIG1, "<a><b><x><c/></x><d/></b><b><c/><d/></b></a>"];
        let queries = ["//a/b[//d][c]", "//a//b", "//a/b[c][d]", "//a[b]//c"];
        for xml in docs {
            let doc = parse(xml).unwrap();
            let index = ElementIndex::build(&doc);
            for q in queries {
                let gtp = parse_twig(q).unwrap();
                let mut on = TwigStackStats::default();
                let mut off = TwigStackStats::default();
                let rs_on =
                    twig_stack_indexed(&index, doc.labels(), &gtp, PruningPolicy::Enabled, &mut on);
                let rs_off = twig_stack_indexed(
                    &index,
                    doc.labels(),
                    &gtp,
                    PruningPolicy::Disabled,
                    &mut off,
                );
                assert_eq!(rs_on.sorted(), rs_off.sorted(), "query {q} on {xml}");
                assert!(
                    on.elements_scanned <= off.elements_scanned + off.elements_skipped,
                    "pruning must not read more: query {q} on {xml}"
                );
            }
        }
    }

    #[test]
    fn indexed_unsatisfiable_short_circuits() {
        // d elements exist, but never below a c.
        let doc = parse(FIG1).unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig("//c/d").unwrap();
        let mut stats = TwigStackStats::default();
        let rs = twig_stack_indexed(&index, doc.labels(), &gtp, PruningPolicy::Enabled, &mut stats);
        assert!(rs.is_empty());
        assert_eq!(stats.elements_scanned, 0);
        assert_eq!(stats.elements_skipped, 0);
    }

    #[test]
    fn suboptimal_for_pc_edges() {
        // b1 has a c *descendant* but not a c *child*, so getNext (which
        // reasons with AD relaxations) cannot rule it out: the useless
        // (a, b1, d1) path solution is emitted and the merge-join drops
        // it. This is exactly the PC-suboptimality the paper discusses.
        let xml = "<a><b><x><c/></x><d/></b><b><c/><d/></b></a>";
        let doc = parse(xml).unwrap();
        let gtp = parse_twig("//a/b[c][d]").unwrap();
        let (rs, stats) = run(xml, "//a/b[c][d]");
        assert_eq!(rs.clone().sorted(), naive(&doc, &gtp).sorted());
        assert_eq!(rs.len(), 1);
        // 1 c-path + 2 d-path solutions, only 1 surviving tuple.
        assert_eq!(stats.path_solutions, 3);
    }
}
