//! # twigbaselines — baseline twig-join algorithms
//!
//! The comparison systems from the paper's evaluation, implemented from
//! their original papers:
//!
//! * [`naive`] — an exponential DOM-walk oracle defining GTP semantics;
//!   the ground truth for differential tests (not a paper baseline);
//! * [`pathstack`] — PathStack (Bruno et al., SIGMOD 2002) for linear
//!   paths;
//! * [`pathjoin`] — root-to-leaf path solutions and their merge-join into
//!   twig tuples (shared by TwigStack and TJFast);
//! * [`twigstack`] — TwigStack holistic twig join (Bruno et al. 2002);
//! * [`tjfast`] — TJFast (Lu et al., VLDB 2005): extended-Dewey leaf
//!   streams.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod pathjoin;
pub mod pathstack;
pub mod tjfast;
pub mod twigstack;

pub use naive::{evaluate as naive_evaluate, exists as naive_exists, SatTable};
pub use pathjoin::{merge_join, root_to_leaf_paths, JoinStats, PathSolutions};
pub use pathstack::{
    build_pruned_streams, build_streams, path_stack, path_stack_indexed, PathStackStats,
};
pub use tjfast::{
    tj_fast, tj_fast_indexed, tj_fast_solutions, DeweyKey, DeweyResolver, TJFastStats,
};
pub use twigstack::{
    try_twig_stack_solutions_with, try_twig_stack_with, twig_stack, twig_stack_indexed,
    twig_stack_solutions, twig_stack_solutions_with, twig_stack_with, TwigStackStats,
};
