//! DBLP-like bibliography generator.
//!
//! The real DBLP dataset (paper Figure 14) is wide and shallow: one `dblp`
//! root with millions of flat publication records, max depth 6, average
//! depth ≈ 2.9. This generator reproduces that shape: `inproceedings` and
//! `article` records with `author⁺ title year …` children, and occasional
//! markup (`sub`/`i`) nested inside titles to reach depth 5–6.
//!
//! Selectivity properties relied on by the experiments:
//! * every `inproceedings` has a `title` and ≥1 `author` (DBLP-Q1 is
//!   low-selectivity, as in the paper);
//! * every `article` has `author`, `title` and `year`;
//! * every `inproceedings` has a `booktitle`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, DocumentBuilder};

/// Configuration for [`generate_dblp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DblpConfig {
    /// Number of `inproceedings` records.
    pub inproceedings: usize,
    /// Number of `article` records.
    pub articles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    /// ≈ 60k-element document: large enough to show asymptotic behaviour,
    /// small enough for second-scale experiment loops.
    fn default() -> Self {
        DblpConfig { inproceedings: 4000, articles: 3000, seed: 0x1db1_b00c }
    }
}

impl DblpConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        DblpConfig { inproceedings: 40, articles: 30, seed }
    }

    /// Scale both record counts by `factor`.
    pub fn scaled(self, factor: usize) -> Self {
        DblpConfig {
            inproceedings: self.inproceedings * factor,
            articles: self.articles * factor,
            ..self
        }
    }
}

/// Generate a DBLP-like document.
pub fn generate_dblp(cfg: &DblpConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("dblp").expect("fresh builder");

    // Interleave records the way DBLP does (roughly random order).
    let total = cfg.inproceedings + cfg.articles;
    let mut remaining_inproc = cfg.inproceedings;
    let mut remaining_art = cfg.articles;
    for i in 0..total {
        let pick_inproc = if remaining_art == 0 {
            true
        } else if remaining_inproc == 0 {
            false
        } else {
            rng.gen_ratio(remaining_inproc as u32, (remaining_inproc + remaining_art) as u32)
        };
        if pick_inproc {
            remaining_inproc -= 1;
            emit_inproceedings(&mut b, &mut rng, i);
        } else {
            remaining_art -= 1;
            emit_article(&mut b, &mut rng, i);
        }
    }

    b.end_element().expect("balanced");
    b.finish().expect("complete document")
}

fn emit_title(b: &mut DocumentBuilder, rng: &mut SmallRng, key: usize) {
    b.start_element("title").unwrap();
    b.text(&format!("Paper {key} on twig joins")).unwrap();
    // Occasional nested markup gives DBLP its max depth of ~6
    // (dblp/record/title/sub/...).
    if rng.gen_ratio(1, 12) {
        b.leaf(if rng.gen_bool(0.5) { "sub" } else { "i" }, "x").unwrap();
    }
    b.end_element().unwrap();
}

fn emit_authors(b: &mut DocumentBuilder, rng: &mut SmallRng, key: usize) {
    let n = 1 + rng.gen_range(0usize..4); // 1..=4 authors
    for a in 0..n {
        b.leaf("author", &format!("Author {}", (key * 7 + a) % 997)).unwrap();
    }
}

fn emit_inproceedings(b: &mut DocumentBuilder, rng: &mut SmallRng, key: usize) {
    b.start_element("inproceedings").unwrap();
    b.attr("key", &format!("conf/x/{key}")).unwrap();
    emit_authors(b, rng, key);
    emit_title(b, rng, key);
    if rng.gen_bool(0.9) {
        b.leaf("pages", "1-12").unwrap();
    }
    b.leaf("year", &format!("{}", 1990 + key % 17)).unwrap();
    b.leaf("booktitle", &format!("Conf {}", key % 53)).unwrap();
    if rng.gen_bool(0.5) {
        b.leaf("ee", "http://example.org/paper").unwrap();
    }
    if rng.gen_bool(0.3) {
        b.leaf("crossref", &format!("conf/x/{}", key % 100)).unwrap();
    }
    b.leaf("url", "db/conf/x").unwrap();
    b.end_element().unwrap();
}

fn emit_article(b: &mut DocumentBuilder, rng: &mut SmallRng, key: usize) {
    b.start_element("article").unwrap();
    b.attr("key", &format!("journals/x/{key}")).unwrap();
    emit_authors(b, rng, key);
    emit_title(b, rng, key);
    if rng.gen_bool(0.85) {
        b.leaf("pages", "100-120").unwrap();
    }
    b.leaf("year", &format!("{}", 1985 + key % 22)).unwrap();
    if rng.gen_bool(0.95) {
        b.leaf("volume", &format!("{}", key % 40)).unwrap();
    }
    b.leaf("journal", &format!("Journal {}", key % 31)).unwrap();
    if rng.gen_bool(0.7) {
        b.leaf("number", &format!("{}", key % 12)).unwrap();
    }
    if rng.gen_bool(0.5) {
        b.leaf("ee", "http://example.org/article").unwrap();
    }
    b.leaf("url", "db/journals/x").unwrap();
    b.end_element().unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::DocStats;

    #[test]
    fn deterministic_for_seed() {
        let cfg = DblpConfig::tiny(42);
        let d1 = generate_dblp(&cfg);
        let d2 = generate_dblp(&cfg);
        assert_eq!(d1.len(), d2.len());
        let r1: Vec<_> = d1.iter().map(|n| (d1.label(n), d1.region(n))).collect();
        let r2: Vec<_> = d2.iter().map(|n| (d2.label(n), d2.region(n))).collect();
        // Labels intern in the same order for the same generator, so direct
        // comparison is sound.
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = generate_dblp(&DblpConfig::tiny(1));
        let d2 = generate_dblp(&DblpConfig::tiny(2));
        assert_ne!(d1.len(), d2.len()); // author counts etc. vary
    }

    #[test]
    fn shape_is_wide_and_shallow() {
        let doc = generate_dblp(&DblpConfig { inproceedings: 400, articles: 300, seed: 7 });
        let s = DocStats::compute_without_size(&doc);
        assert!(s.max_depth <= 6, "max depth {}", s.max_depth);
        assert!(s.avg_depth > 2.0 && s.avg_depth < 3.6, "avg depth {}", s.avg_depth);
        assert_eq!(doc.tag_name(doc.root()), "dblp");
    }

    #[test]
    fn record_counts_match_config() {
        let cfg = DblpConfig { inproceedings: 25, articles: 17, seed: 3 };
        let doc = generate_dblp(&cfg);
        let inproc = doc.labels().get("inproceedings").unwrap();
        let art = doc.labels().get("article").unwrap();
        assert_eq!(doc.nodes_with_label(inproc).len(), 25);
        assert_eq!(doc.nodes_with_label(art).len(), 17);
    }

    #[test]
    fn every_inproceedings_has_title_author_booktitle() {
        let doc = generate_dblp(&DblpConfig::tiny(9));
        let inproc = doc.labels().get("inproceedings").unwrap();
        for n in doc.nodes_with_label(inproc) {
            let kids: Vec<&str> = doc.children(n).map(|c| doc.tag_name(c)).collect();
            assert!(kids.contains(&"title"), "{kids:?}");
            assert!(kids.contains(&"author"));
            assert!(kids.contains(&"booktitle"));
        }
    }

    #[test]
    fn scaled_multiplies_counts() {
        let cfg = DblpConfig::tiny(1).scaled(3);
        assert_eq!(cfg.inproceedings, 120);
        assert_eq!(cfg.articles, 90);
    }
}
