//! XMark-like auction-site generator.
//!
//! Reproduces the structural subset of the XMark benchmark schema \[11\] that
//! the paper's queries touch, with document size linear in a scale factor
//! (the paper uses scale factors 1–5 for Figure 17 and 1/10 for Table 1).
//!
//! Shape properties relied on by the experiments:
//!
//! * a single `open_auctions` element containing *all* `open_auction`s —
//!   this is what defeats early result enumeration for XMark-Q1 in Table 1;
//! * `person` and `item` subtrees are small and self-contained — which is
//!   why early result enumeration works so well for XMark-Q2/Q3;
//! * max depth ≈ 12, average ≈ 5.5 (paper Figure 14).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, DocumentBuilder};

/// Configuration for [`generate_xmark`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmarkConfig {
    /// Linear scale factor (XMark's `-f`). Element count grows linearly.
    pub scale: usize,
    /// Base number of persons at scale 1.
    pub base_persons: usize,
    /// Base number of open auctions at scale 1.
    pub base_open_auctions: usize,
    /// Base number of closed auctions at scale 1.
    pub base_closed_auctions: usize,
    /// Base number of items *per region* (6 regions) at scale 1.
    pub base_items_per_region: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XmarkConfig {
    /// Scale 1 ≈ 60k elements: laptop-scale stand-in for XMark f=1.
    fn default() -> Self {
        XmarkConfig {
            scale: 1,
            base_persons: 850,
            base_open_auctions: 400,
            base_closed_auctions: 325,
            base_items_per_region: 120,
            seed: 0x0a0c_710e,
        }
    }
}

impl XmarkConfig {
    /// Default parameters at the given scale factor.
    pub fn at_scale(scale: usize) -> Self {
        XmarkConfig { scale, ..Default::default() }
    }

    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        XmarkConfig {
            scale: 1,
            base_persons: 25,
            base_open_auctions: 12,
            base_closed_auctions: 10,
            base_items_per_region: 4,
            seed,
        }
    }
}

const REGIONS: [&str; 6] = ["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// Generate an XMark-like document rooted at `site`.
pub fn generate_xmark(cfg: &XmarkConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("site").expect("fresh builder");

    // --- regions/items -------------------------------------------------
    b.start_element("regions").unwrap();
    let items_per_region = cfg.base_items_per_region * cfg.scale;
    let mut item_id = 0usize;
    for region in REGIONS {
        b.start_element(region).unwrap();
        for _ in 0..items_per_region {
            emit_item(&mut b, &mut rng, item_id);
            item_id += 1;
        }
        b.end_element().unwrap();
    }
    b.end_element().unwrap();

    // --- categories ------------------------------------------------------
    b.start_element("categories").unwrap();
    for c in 0..(10 * cfg.scale) {
        b.start_element("category").unwrap();
        b.attr("id", &format!("category{c}")).unwrap();
        b.leaf("name", &format!("Category {c}")).unwrap();
        b.start_element("description").unwrap();
        b.leaf("text", "about this category").unwrap();
        b.end_element().unwrap();
        b.end_element().unwrap();
    }
    b.end_element().unwrap();

    // --- people ----------------------------------------------------------
    b.start_element("people").unwrap();
    for p in 0..(cfg.base_persons * cfg.scale) {
        emit_person(&mut b, &mut rng, p);
    }
    b.end_element().unwrap();

    // --- open_auctions -----------------------------------------------
    b.start_element("open_auctions").unwrap();
    for a in 0..(cfg.base_open_auctions * cfg.scale) {
        emit_open_auction(&mut b, &mut rng, a);
    }
    b.end_element().unwrap();

    // --- closed_auctions ----------------------------------------------
    b.start_element("closed_auctions").unwrap();
    for a in 0..(cfg.base_closed_auctions * cfg.scale) {
        emit_closed_auction(&mut b, &mut rng, a);
    }
    b.end_element().unwrap();

    b.end_element().expect("balanced");
    b.finish().expect("complete document")
}

fn emit_item(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize) {
    b.start_element("item").unwrap();
    b.attr("id", &format!("item{id}")).unwrap();
    b.leaf("location", "United States").unwrap();
    b.leaf("quantity", "1").unwrap();
    b.leaf("name", &format!("Item {id}")).unwrap();
    b.start_element("payment").unwrap();
    b.text("Money order").unwrap();
    b.end_element().unwrap();
    emit_description(b, rng);
    b.leaf("shipping", "Will ship internationally").unwrap();
    for c in 0..rng.gen_range(1..3) {
        b.start_element("incategory").unwrap();
        b.attr("category", &format!("category{}", (id + c) % 10)).unwrap();
        b.end_element().unwrap();
    }
    if rng.gen_bool(0.4) {
        b.start_element("mailbox").unwrap();
        for _ in 0..rng.gen_range(1..3) {
            b.start_element("mail").unwrap();
            b.leaf("from", "A").unwrap();
            b.leaf("to", "B").unwrap();
            b.leaf("date", "07/07/2006").unwrap();
            emit_text_with_keywords(b, rng);
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
    }
    b.end_element().unwrap();
}

/// `description` → `text` (with inline `keyword`/`emph`) or
/// `parlist/listitem/text` — gives XMark-Q3 its `description//keyword`
/// matches at varying depths.
fn emit_description(b: &mut DocumentBuilder, rng: &mut SmallRng) {
    b.start_element("description").unwrap();
    if rng.gen_bool(0.6) {
        emit_text_with_keywords(b, rng);
    } else {
        b.start_element("parlist").unwrap();
        for _ in 0..rng.gen_range(1..3) {
            b.start_element("listitem").unwrap();
            emit_text_with_keywords(b, rng);
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
    }
    b.end_element().unwrap();
}

fn emit_text_with_keywords(b: &mut DocumentBuilder, rng: &mut SmallRng) {
    b.start_element("text").unwrap();
    b.text("lorem ipsum ").unwrap();
    for _ in 0..rng.gen_range(0..3) {
        if rng.gen_bool(0.7) {
            b.leaf("keyword", "gold").unwrap();
        } else {
            b.start_element("emph").unwrap();
            if rng.gen_bool(0.5) {
                b.leaf("keyword", "rare").unwrap();
            } else {
                b.text("very").unwrap();
            }
            b.end_element().unwrap();
        }
    }
    b.end_element().unwrap();
}

fn emit_person(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize) {
    b.start_element("person").unwrap();
    b.attr("id", &format!("person{id}")).unwrap();
    b.leaf("name", &format!("Person {id}")).unwrap();
    b.leaf("emailaddress", "mailto:p@example.org").unwrap();
    if rng.gen_bool(0.5) {
        b.leaf("phone", "+1 555 0100").unwrap();
    }
    if rng.gen_bool(0.7) {
        b.start_element("address").unwrap();
        b.leaf("street", "1 Main St").unwrap();
        b.leaf("city", "Cupertino").unwrap();
        b.leaf("country", "United States").unwrap();
        if rng.gen_bool(0.3) {
            b.leaf("province", "CA").unwrap();
        }
        b.leaf("zipcode", "95014").unwrap();
        b.end_element().unwrap();
    }
    if rng.gen_bool(0.3) {
        b.leaf("homepage", "http://example.org").unwrap();
    }
    if rng.gen_bool(0.4) {
        b.leaf("creditcard", "1234 5678").unwrap();
    }
    if rng.gen_bool(0.75) {
        b.start_element("profile").unwrap();
        b.attr("income", "50000").unwrap();
        for _ in 0..rng.gen_range(0..3) {
            b.start_element("interest").unwrap();
            b.attr("category", "category1").unwrap();
            b.end_element().unwrap();
        }
        if rng.gen_bool(0.5) {
            b.leaf("education", "Graduate School").unwrap();
        }
        if rng.gen_bool(0.5) {
            b.leaf("gender", "female").unwrap();
        }
        b.leaf("business", "Yes").unwrap();
        if rng.gen_bool(0.6) {
            b.leaf("age", "30").unwrap();
        }
        b.end_element().unwrap();
    }
    if rng.gen_bool(0.2) {
        b.start_element("watches").unwrap();
        for _ in 0..rng.gen_range(1..3) {
            b.start_element("watch").unwrap();
            b.attr("open_auction", "open_auction0").unwrap();
            b.end_element().unwrap();
        }
        b.end_element().unwrap();
    }
    b.end_element().unwrap();
}

fn emit_open_auction(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize) {
    b.start_element("open_auction").unwrap();
    b.attr("id", &format!("open_auction{id}")).unwrap();
    b.leaf("initial", "15.00").unwrap();
    if rng.gen_bool(0.5) {
        b.leaf("reserve", "30.00").unwrap();
    }
    for bid in 0..rng.gen_range(0..5) {
        b.start_element("bidder").unwrap();
        b.leaf("date", "07/07/2006").unwrap();
        b.leaf("time", "12:00:00").unwrap();
        b.start_element("personref").unwrap();
        b.attr("person", &format!("person{}", (id + bid) % 100)).unwrap();
        b.end_element().unwrap();
        b.leaf("increase", "1.50").unwrap();
        b.end_element().unwrap();
    }
    b.leaf("current", "18.00").unwrap();
    if rng.gen_bool(0.3) {
        b.leaf("privacy", "Yes").unwrap();
    }
    b.start_element("itemref").unwrap();
    b.attr("item", &format!("item{}", id % 50)).unwrap();
    b.end_element().unwrap();
    b.start_element("seller").unwrap();
    b.attr("person", &format!("person{}", id % 100)).unwrap();
    b.end_element().unwrap();
    emit_annotation(b, rng);
    b.leaf("quantity", "1").unwrap();
    b.leaf("type", "Regular").unwrap();
    b.start_element("interval").unwrap();
    b.leaf("start", "01/01/2006").unwrap();
    b.leaf("end", "12/31/2006").unwrap();
    b.end_element().unwrap();
    b.end_element().unwrap();
}

fn emit_closed_auction(b: &mut DocumentBuilder, rng: &mut SmallRng, id: usize) {
    b.start_element("closed_auction").unwrap();
    b.start_element("seller").unwrap();
    b.attr("person", &format!("person{}", id % 100)).unwrap();
    b.end_element().unwrap();
    b.start_element("buyer").unwrap();
    b.attr("person", &format!("person{}", (id + 1) % 100)).unwrap();
    b.end_element().unwrap();
    b.start_element("itemref").unwrap();
    b.attr("item", &format!("item{}", id % 50)).unwrap();
    b.end_element().unwrap();
    b.leaf("price", "42.00").unwrap();
    b.leaf("date", "07/07/2006").unwrap();
    b.leaf("quantity", "1").unwrap();
    b.leaf("type", "Regular").unwrap();
    emit_annotation(b, rng);
    b.end_element().unwrap();
}

fn emit_annotation(b: &mut DocumentBuilder, rng: &mut SmallRng) {
    b.start_element("annotation").unwrap();
    b.start_element("author").unwrap();
    b.attr("person", "person0").unwrap();
    b.end_element().unwrap();
    emit_description(b, rng);
    b.start_element("happiness").unwrap();
    b.text("8").unwrap();
    b.end_element().unwrap();
    b.end_element().unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::DocStats;

    #[test]
    fn deterministic() {
        let cfg = XmarkConfig::tiny(5);
        assert_eq!(generate_xmark(&cfg).len(), generate_xmark(&cfg).len());
    }

    #[test]
    fn scale_is_linear() {
        let n1 = generate_xmark(&XmarkConfig { scale: 1, ..XmarkConfig::tiny(7) }).len();
        let n3 = generate_xmark(&XmarkConfig { scale: 3, ..XmarkConfig::tiny(7) }).len();
        let ratio = n3 as f64 / n1 as f64;
        assert!((2.3..3.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shape_matches_figure14() {
        let doc = generate_xmark(&XmarkConfig::default());
        let s = DocStats::compute_without_size(&doc);
        assert!(s.max_depth >= 8 && s.max_depth <= 13, "max depth {}", s.max_depth);
        assert!(s.avg_depth > 3.5 && s.avg_depth < 6.5, "avg depth {}", s.avg_depth);
        assert!(s.distinct_labels >= 40, "labels {}", s.distinct_labels);
    }

    #[test]
    fn single_open_auctions_container() {
        let doc = generate_xmark(&XmarkConfig::tiny(1));
        let oa = doc.labels().get("open_auctions").unwrap();
        assert_eq!(doc.nodes_with_label(oa).len(), 1);
        let auctions = doc.labels().get("open_auction").unwrap();
        assert_eq!(doc.nodes_with_label(auctions).len(), 12);
    }

    #[test]
    fn queried_labels_present() {
        let doc = generate_xmark(&XmarkConfig::tiny(2));
        for name in [
            "site", "open_auctions", "bidder", "personref", "reserve", "people", "person",
            "address", "zipcode", "profile", "education", "item", "location", "description",
            "keyword",
        ] {
            let l = doc
                .labels()
                .get(name)
                .unwrap_or_else(|| panic!("label {name} missing"));
            assert!(!doc.nodes_with_label(l).is_empty(), "no {name} elements");
        }
    }
}
