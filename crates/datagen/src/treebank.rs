//! TreeBank-like parse-tree generator.
//!
//! The real TreeBank dataset (paper Figure 14) is deep (max depth 36,
//! average ≈ 7.9), narrow, recursive and irregular, with many distinct
//! labels — which makes twig queries over it highly selective. This
//! generator expands a small probabilistic phrase-structure grammar over
//! Penn-Treebank-style non-terminals (`s`, `np`, `vp`, `pp`, `sbar`, …) and
//! pre-terminals (`in`, `dt`, `nn`, `vbn`, `prp_dollar_`, …).
//!
//! Tag names that contain characters illegal in XML names (`PRP$`, `,`)
//! are encoded the way the University of Washington XML repository does:
//! `prp_dollar_`, `_comma_`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, DocumentBuilder};

/// Configuration for [`generate_treebank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreebankConfig {
    /// Number of top-level sentences under the `file` root.
    pub sentences: usize,
    /// Hard recursion cap (the real corpus peaks at depth 36).
    pub max_depth: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig { sentences: 2500, max_depth: 36, seed: 0x07ee_ba2d }
    }
}

impl TreebankConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        TreebankConfig { sentences: 30, max_depth: 20, seed }
    }
}

/// Generate a TreeBank-like document rooted at `file`.
pub fn generate_treebank(cfg: &TreebankConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("file").expect("fresh builder");
    for _ in 0..cfg.sentences {
        b.start_element("empty").unwrap(); // TreeBank wraps sentences in EMPTY
        sentence(&mut b, &mut rng, 3, cfg.max_depth);
        b.end_element().unwrap();
    }
    b.end_element().expect("balanced");
    b.finish().expect("complete document")
}

/// `s → np vp` (with optional leading pp / sbar recursion).
fn sentence(b: &mut DocumentBuilder, rng: &mut SmallRng, depth: u32, max: u32) {
    b.start_element("s").unwrap();
    if depth < max {
        if rng.gen_bool(0.15) {
            pp(b, rng, depth + 1, max);
        }
        np(b, rng, depth + 1, max);
        vp(b, rng, depth + 1, max);
        if rng.gen_bool(0.2) {
            b.leaf("_period_", ".").unwrap();
        }
    } else {
        b.leaf("nn", "w").unwrap();
    }
    b.end_element().unwrap();
}

fn np(b: &mut DocumentBuilder, rng: &mut SmallRng, depth: u32, max: u32) {
    b.start_element("np").unwrap();
    if depth >= max {
        b.leaf("nn", "w").unwrap();
        b.end_element().unwrap();
        return;
    }
    match rng.gen_range(0..10) {
        // dt? jj* (vbn)? nn pp?
        0..=4 => {
            if rng.gen_bool(0.6) {
                b.leaf("dt", "the").unwrap();
            }
            for _ in 0..rng.gen_range(0..2) {
                b.leaf("jj", "big").unwrap();
            }
            if rng.gen_bool(0.25) {
                b.leaf("vbn", "built").unwrap(); // reduced relative: np with vbn child
            }
            b.leaf(if rng.gen_bool(0.8) { "nn" } else { "nns" }, "w").unwrap();
            if rng.gen_bool(0.3) {
                pp(b, rng, depth + 1, max);
            }
        }
        // possessive: prp_dollar_ nn
        5 => {
            b.leaf("prp_dollar_", "its").unwrap();
            b.leaf("nn", "w").unwrap();
        }
        // pronoun
        6 => b.leaf("prp", "it").unwrap(),
        // proper noun
        7 => b.leaf("nnp", "W").unwrap(),
        // np sbar (relative clause) — the deep-recursion path
        8 => {
            np(b, rng, depth + 1, max);
            sbar(b, rng, depth + 1, max);
        }
        // coordination: np cc np
        _ => {
            np(b, rng, depth + 1, max);
            b.leaf("cc", "and").unwrap();
            np(b, rng, depth + 1, max);
        }
    }
    b.end_element().unwrap();
}

fn vp(b: &mut DocumentBuilder, rng: &mut SmallRng, depth: u32, max: u32) {
    b.start_element("vp").unwrap();
    if depth >= max {
        b.leaf("vb", "go").unwrap();
        b.end_element().unwrap();
        return;
    }
    match rng.gen_range(0..10) {
        // v np pp*
        0..=3 => {
            b.leaf(verb(rng), "saw").unwrap();
            np(b, rng, depth + 1, max);
            for _ in 0..rng.gen_range(0..2) {
                pp(b, rng, depth + 1, max);
            }
        }
        // v pp
        4..=5 => {
            b.leaf(verb(rng), "went").unwrap();
            pp(b, rng, depth + 1, max);
        }
        // passive: vbn pp?
        6 => {
            b.leaf("vbn", "seen").unwrap();
            if rng.gen_bool(0.5) {
                pp(b, rng, depth + 1, max);
            }
        }
        // flat colloquial: vb dt nn (gives //vp[dt] matches for TB-Q3)
        7 => {
            b.leaf("vb", "take").unwrap();
            b.leaf("dt", "a").unwrap();
            b.leaf("nn", "walk").unwrap();
            if rng.gen_bool(0.3) {
                np(b, rng, depth + 1, max);
            }
        }
        // vp sbar (clausal complement) — recursion
        8 => {
            b.leaf(verb(rng), "said").unwrap();
            sbar(b, rng, depth + 1, max);
        }
        // vp cc vp
        _ => {
            vp(b, rng, depth + 1, max);
            b.leaf("cc", "and").unwrap();
            vp(b, rng, depth + 1, max);
        }
    }
    b.end_element().unwrap();
}

fn pp(b: &mut DocumentBuilder, rng: &mut SmallRng, depth: u32, max: u32) {
    b.start_element("pp").unwrap();
    b.leaf("in", "of").unwrap();
    if depth < max {
        np(b, rng, depth + 1, max);
    } else {
        b.leaf("nn", "w").unwrap();
    }
    b.end_element().unwrap();
}

fn sbar(b: &mut DocumentBuilder, rng: &mut SmallRng, depth: u32, max: u32) {
    b.start_element("sbar").unwrap();
    if depth < max {
        if rng.gen_bool(0.5) {
            b.start_element("whnp").unwrap();
            b.leaf("wp", "who").unwrap();
            b.end_element().unwrap();
        } else {
            b.leaf("in", "that").unwrap();
        }
        sentence(b, rng, depth + 1, max);
    } else {
        b.leaf("in", "that").unwrap();
    }
    b.end_element().unwrap();
}

fn verb(rng: &mut SmallRng) -> &'static str {
    match rng.gen_range(0..4) {
        0 => "vb",
        1 => "vbd",
        2 => "vbz",
        _ => "vbp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::DocStats;

    #[test]
    fn deterministic() {
        let cfg = TreebankConfig::tiny(5);
        let d1 = generate_treebank(&cfg);
        let d2 = generate_treebank(&cfg);
        assert_eq!(d1.len(), d2.len());
    }

    #[test]
    fn deep_and_recursive() {
        let doc = generate_treebank(&TreebankConfig { sentences: 300, max_depth: 36, seed: 11 });
        let s = DocStats::compute_without_size(&doc);
        assert!(s.max_depth >= 15, "max depth only {}", s.max_depth);
        assert!(s.max_depth <= 36 + 2);
        assert!(s.avg_depth > 5.0, "avg depth {}", s.avg_depth);
        assert!(s.distinct_labels >= 15, "labels {}", s.distinct_labels);
    }

    #[test]
    fn recursion_capped() {
        let doc = generate_treebank(&TreebankConfig { sentences: 100, max_depth: 12, seed: 3 });
        let (max, _) = doc.depth_stats();
        // Grammar may add up to ~2 leaf levels below the cap.
        assert!(max <= 15, "depth {max} exceeds cap");
    }

    #[test]
    fn queried_labels_present() {
        let doc = generate_treebank(&TreebankConfig { sentences: 500, max_depth: 30, seed: 1 });
        for name in ["s", "vp", "np", "pp", "in", "dt", "vbn", "prp_dollar_"] {
            let l = doc
                .labels()
                .get(name)
                .unwrap_or_else(|| panic!("label {name} missing"));
            assert!(!doc.nodes_with_label(l).is_empty(), "no {name} elements");
        }
    }
}
