//! # xmlgen — seeded synthetic XML dataset generators
//!
//! Stand-ins for the three datasets of the paper's evaluation (Figure 14):
//!
//! * [`dblp`] — wide, shallow bibliography records (DBLP-like);
//! * [`treebank`] — deep, recursive, irregular parse trees (TreeBank-like);
//! * [`xmark`] — the XMark auction-site schema subset, linear in a scale
//!   factor;
//! * [`random`] — unstructured random labelled trees for property tests;
//! * [`mutate`] — structure-preserving document mutations (subtree
//!   removal/extraction) used by the fuzzer's shrinker.
//!
//! All generators are deterministic given a seed, so benchmarks and tests
//! are reproducible. Only document *shape* matters to the twig-join
//! algorithms (labels + region encodings), so text payloads are small
//! placeholder strings.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod mutate;
pub mod random;
pub mod treebank;
pub mod xmark;

pub use dblp::{generate_dblp, DblpConfig};
pub use mutate::{extract_subtree, remove_subtree};
pub use random::{generate_random_tree, RandomTreeConfig};
pub use treebank::{generate_treebank, TreebankConfig};
pub use xmark::{generate_xmark, XmarkConfig};
