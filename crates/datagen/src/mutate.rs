//! Structure-preserving document mutations for shrinking.
//!
//! The fuzzer's shrinker (`twigfuzz`) minimizes a failing (document,
//! query) pair by repeatedly deleting document subtrees and re-checking
//! the failure. These helpers rebuild a [`Document`] through the normal
//! [`DocumentBuilder`] path — labels, regions, and parent pointers are
//! recomputed from scratch, so a mutated document is indistinguishable
//! from one parsed directly — while carrying over attributes and direct
//! text payloads.

use xmldom::{Document, DocumentBuilder, NodeId};

/// Copy of `doc` with the subtree rooted at `target` deleted.
///
/// Returns `None` when `target` is the document root (a document cannot
/// be empty).
pub fn remove_subtree(doc: &Document, target: NodeId) -> Option<Document> {
    doc.parent(target)?;
    let root = doc.iter().next().expect("documents are non-empty");
    let mut b = DocumentBuilder::new();
    copy_subtree(doc, root, Some(target), &mut b);
    Some(b.finish().expect("balanced rebuild"))
}

/// New document consisting of just the subtree rooted at `node`
/// (inclusive). Useful for large shrinking jumps: a failure often
/// reproduces inside one branch of the original document.
pub fn extract_subtree(doc: &Document, node: NodeId) -> Document {
    let mut b = DocumentBuilder::new();
    copy_subtree(doc, node, None, &mut b);
    b.finish().expect("balanced rebuild")
}

/// Recursively re-emit `n` (attributes, direct text, children) into `b`,
/// skipping the subtree rooted at `skip`.
fn copy_subtree(doc: &Document, n: NodeId, skip: Option<NodeId>, b: &mut DocumentBuilder) {
    if skip == Some(n) {
        return;
    }
    let name = doc.labels().name(doc.label(n));
    b.start_element(name).expect("builder accepts elements");
    for (k, v) in doc.attributes(n) {
        b.attr(k, v).expect("open element");
    }
    if let Some(t) = doc.text(n) {
        b.text(t).expect("open element");
    }
    for c in doc.children(n) {
        copy_subtree(doc, c, skip, b);
    }
    b.end_element().expect("balanced");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn remove_root_is_none() {
        let doc = parse("<a><b/></a>").unwrap();
        let root = doc.iter().next().unwrap();
        assert!(remove_subtree(&doc, root).is_none());
    }

    #[test]
    fn removes_inner_subtree_keeping_payloads() {
        let doc = parse("<a x='1'>t<b><c/></b><d>u</d></a>").unwrap();
        let b = doc.iter().find(|&n| doc.labels().name(doc.label(n)) == "b").unwrap();
        let out = remove_subtree(&doc, b).unwrap();
        assert_eq!(out.len(), 2); // a, d
        let root = out.iter().next().unwrap();
        assert_eq!(out.text(root), Some("t"));
        assert_eq!(out.attribute(root, "x"), Some("1"));
        let d = out.children(root).next().unwrap();
        assert_eq!(out.labels().name(out.label(d)), "d");
        assert_eq!(out.text(d), Some("u"));
    }

    #[test]
    fn extract_keeps_only_the_branch() {
        let doc = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let b = doc.iter().find(|&n| doc.labels().name(doc.label(n)) == "b").unwrap();
        let out = extract_subtree(&doc, b);
        assert_eq!(out.len(), 2); // b, c
        let root = out.iter().next().unwrap();
        assert_eq!(out.labels().name(out.label(root)), "b");
        let c = out.children(root).next().unwrap();
        assert_eq!(out.text(c), Some("x"));
    }

    #[test]
    fn regions_are_recomputed() {
        let doc = parse("<a><b/><c><d/></c></a>").unwrap();
        let bnode = doc.iter().find(|&n| doc.labels().name(doc.label(n)) == "b").unwrap();
        let out = remove_subtree(&doc, bnode).unwrap();
        // Fresh region encoding: root spans everything, levels start at 1.
        let root = out.iter().next().unwrap();
        assert_eq!(out.region(root).level, 1);
        for n in out.iter().skip(1) {
            assert!(out.is_ancestor(root, n));
        }
    }
}
