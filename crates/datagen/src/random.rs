//! Random labelled trees for property-based differential testing.
//!
//! The proptest suites compare every matcher in this workspace against the
//! naive oracle on documents drawn from this generator: small alphabets and
//! shallow-to-moderate depths maximize the density of twig matches (and of
//! tricky recursive same-label nestings, the hard case for hierarchical
//! stacks).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, DocumentBuilder};

/// Configuration for [`generate_random_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomTreeConfig {
    /// Total number of elements (≥ 1).
    pub nodes: usize,
    /// Alphabet size: labels are `a`, `b`, … (≤ 26).
    pub alphabet: usize,
    /// Maximum depth of the tree.
    pub max_depth: u32,
    /// Bias towards attaching to the most recent open path: 0 = attach to
    /// a uniformly random existing node (bushy), 100 = always deepen.
    pub depth_bias: u32,
    /// RNG seed.
    pub seed: u64,
    /// Text vocabulary size: 0 disables text (the historical behaviour);
    /// `k > 0` gives each element, with probability one half, a direct
    /// text payload drawn from `v0`, …, `v{k-1}`. Small vocabularies make
    /// value-predicate queries testable on random trees (repeated values
    /// ⇒ non-vacuous predicates).
    pub text_vocab: usize,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            nodes: 100,
            alphabet: 4,
            max_depth: 12,
            depth_bias: 50,
            seed: 0,
            text_vocab: 0,
        }
    }
}

/// Generate a random document.
///
/// The tree is built in one left-to-right pass: we keep the current
/// root-to-cursor path and, for every new node, either descend (attach as a
/// child of the path tip) or pop up a random number of levels first. This
/// produces exactly `nodes` elements with depth ≤ `max_depth` and a shape
/// controlled by `depth_bias`.
pub fn generate_random_tree(cfg: &RandomTreeConfig) -> Document {
    assert!(cfg.nodes >= 1, "need at least one node");
    assert!((1..=26).contains(&cfg.alphabet), "alphabet must be 1..=26");
    assert!(cfg.max_depth >= 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = DocumentBuilder::new();
    let label = |rng: &mut SmallRng| -> String {
        char::from(b'a' + rng.gen_range(0..cfg.alphabet) as u8).to_string()
    };
    // Optional text payload for the element just opened. Text draws come
    // from a second RNG stream so the element structure for a given seed
    // is identical whether or not text is enabled.
    let mut text_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    let maybe_text = |rng: &mut SmallRng, b: &mut DocumentBuilder| {
        if cfg.text_vocab > 0 && rng.gen_bool(0.5) {
            let v = rng.gen_range(0..cfg.text_vocab);
            b.text(&format!("v{v}")).expect("open element");
        }
    };
    b.start_element(&label(&mut rng)).expect("fresh builder");
    maybe_text(&mut text_rng, &mut b);
    let mut depth = 1u32;
    for _ in 1..cfg.nodes {
        // Decide how far to pop before attaching the next node. Popping to
        // depth 0 is not allowed (single root).
        let descend = depth < cfg.max_depth && rng.gen_range(0u32..100) < cfg.depth_bias;
        if !descend && depth > 1 {
            let pops = rng.gen_range(1..depth); // keep at least the root open
            for _ in 0..pops {
                b.end_element().expect("balanced");
            }
            depth -= pops;
        } else if depth >= cfg.max_depth && depth > 1 {
            b.end_element().expect("balanced");
            depth -= 1;
        }
        b.start_element(&label(&mut rng)).expect("open");
        maybe_text(&mut text_rng, &mut b);
        depth += 1;
    }
    while depth > 0 {
        b.end_element().expect("balanced");
        depth -= 1;
    }
    b.finish().expect("complete document")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_count() {
        for n in [1, 2, 3, 10, 257] {
            let doc = generate_random_tree(&RandomTreeConfig {
                nodes: n,
                ..Default::default()
            });
            assert_eq!(doc.len(), n);
        }
    }

    #[test]
    fn respects_max_depth() {
        let doc = generate_random_tree(&RandomTreeConfig {
            nodes: 500,
            max_depth: 5,
            depth_bias: 90,
            ..Default::default()
        });
        let (max, _) = doc.depth_stats();
        assert!(max <= 5, "depth {max}");
    }

    #[test]
    fn alphabet_respected() {
        let doc = generate_random_tree(&RandomTreeConfig {
            nodes: 200,
            alphabet: 2,
            ..Default::default()
        });
        assert!(doc.labels().len() <= 2);
        for (_, name) in doc.labels().iter() {
            assert!(name == "a" || name == "b");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = RandomTreeConfig { nodes: 97, seed: 123, ..Default::default() };
        let d1 = generate_random_tree(&cfg);
        let d2 = generate_random_tree(&cfg);
        let r1: Vec<_> = d1.iter().map(|n| d1.region(n)).collect();
        let r2: Vec<_> = d2.iter().map(|n| d2.region(n)).collect();
        assert_eq!(r1, r2);
    }

    #[test]
    fn text_vocab_zero_is_textless_and_seed_stable() {
        let plain = RandomTreeConfig { nodes: 120, seed: 7, ..Default::default() };
        let doc = generate_random_tree(&plain);
        assert!(doc.iter().all(|n| doc.text(n).is_none()));
        // Same seed with text enabled: identical element structure.
        let texty = generate_random_tree(&RandomTreeConfig { text_vocab: 3, ..plain });
        let shape = |d: &Document| -> Vec<_> { d.iter().map(|n| d.region(n)).collect() };
        assert_eq!(shape(&doc), shape(&texty));
    }

    #[test]
    fn text_vocab_draws_from_vocabulary() {
        let doc = generate_random_tree(&RandomTreeConfig {
            nodes: 200,
            text_vocab: 2,
            seed: 11,
            ..Default::default()
        });
        let texts: Vec<&str> = doc.iter().filter_map(|n| doc.text(n)).collect();
        assert!(!texts.is_empty());
        assert!(texts.iter().all(|t| *t == "v0" || *t == "v1"));
    }

    #[test]
    fn depth_bias_changes_shape() {
        let shallow = generate_random_tree(&RandomTreeConfig {
            nodes: 1000,
            depth_bias: 10,
            max_depth: 30,
            seed: 1,
            ..Default::default()
        });
        let deep = generate_random_tree(&RandomTreeConfig {
            nodes: 1000,
            depth_bias: 95,
            max_depth: 30,
            seed: 1,
            ..Default::default()
        });
        let (_, avg_s) = shallow.depth_stats();
        let (_, avg_d) = deep.depth_stats();
        assert!(avg_d > avg_s, "deep {avg_d} vs shallow {avg_s}");
    }
}
