//! Pinned planner decisions on the figure-16 workloads (DESIGN.md §14).
//!
//! The adaptive planner's value proposition is concrete, measured calls:
//! on XMark-Q2 every `person` element sits inside the query's region
//! cover, so pruning scans the same 101 elements as the full streams and
//! only adds skip-probe overhead — the planner must turn it off. On
//! TreeBank-Q1 pruning skips ~80% of the candidate elements — the
//! planner must keep it. These tests pin those two calls (plus the
//! forced-mode default) so a cost-model change that flips either shows
//! up as a test failure, not a silent perf regression in Fig A.

use twigbench::workload::{treebank, treebank_queries, xmark, xmark_queries, Profile};
use twigbench::Dataset;
use twigserve::{PlanEngine, PlannerMode, QueryService, ServiceConfig};

fn adaptive(ds: &Dataset) -> QueryService {
    QueryService::new(
        ds.doc.clone(),
        ds.index.clone(),
        ServiceConfig { planner: PlannerMode::Adaptive, ..ServiceConfig::default() },
    )
}

#[test]
fn adaptive_disables_pruning_on_xmark_q2() {
    let ds = xmark(Profile::Quick, 1);
    let q = &xmark_queries()[1];
    assert_eq!(q.name, "XMark-Q2");

    let svc = adaptive(&ds);
    let d = svc.planned(q.text).expect("plan XMark-Q2");
    assert!(d.adaptive, "service in Adaptive mode must produce adaptive decisions");
    assert_eq!(d.engine, PlanEngine::Twig2Stack);
    assert!(
        !d.policy.is_enabled(),
        "pruning hurts on XMark-Q2 (cover holds every person element); \
         the planner must disable it, got {:?}",
        d.policy
    );
}

#[test]
fn adaptive_keeps_pruning_on_treebank_q1() {
    let ds = treebank(Profile::Quick);
    let q = &treebank_queries()[0];
    assert_eq!(q.name, "TreeBank-Q1");

    let svc = adaptive(&ds);
    let d = svc.planned(q.text).expect("plan TreeBank-Q1");
    assert!(d.adaptive);
    assert_eq!(d.engine, PlanEngine::Twig2Stack);
    assert!(
        d.policy.is_enabled(),
        "pruning skips ~80% of TreeBank-Q1's candidate elements; \
         the planner must keep it, got {:?}",
        d.policy
    );
}

#[test]
fn forced_default_pins_twig2stack_with_config_pruning() {
    // The default service (PlannerMode::Forced(Twig2Stack)) must not
    // second-guess the configured pruning policy — pinned-behaviour
    // tests across the repo rely on this.
    let ds = xmark(Profile::Quick, 1);
    let svc = QueryService::new(ds.doc.clone(), ds.index.clone(), ServiceConfig::default());
    for q in xmark_queries() {
        let d = svc.planned(q.text).expect("plan");
        assert!(!d.adaptive, "{}: forced decisions are not adaptive", q.name);
        assert_eq!(d.engine, PlanEngine::Twig2Stack, "{}", q.name);
        assert!(d.policy.is_enabled(), "{}: forced mode keeps the config policy", q.name);
    }
}

#[test]
fn pinned_decisions_survive_cache_round_trips_and_match_execution() {
    // planned() on a warm cache must return the same decision the cold
    // planning pass produced, and executing afterwards must agree with
    // the forced default service byte-for-byte.
    let ds = treebank(Profile::Quick);
    let svc = adaptive(&ds);
    let oracle =
        QueryService::new(ds.doc.clone(), ds.index.clone(), ServiceConfig::default());
    for q in treebank_queries() {
        let cold = svc.planned(q.text).expect("cold plan");
        let warm = svc.planned(q.text).expect("warm plan");
        assert_eq!(cold, warm, "{}: cached decision drifted", q.name);
        let got = svc.execute(q.text).expect("adaptive execute");
        let want = oracle.execute(q.text).expect("forced execute");
        assert_eq!(got, want, "{}: adaptive results differ from forced", q.name);
    }
}
