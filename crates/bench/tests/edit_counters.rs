//! Pinned edit-path observability (obs is compiled in under twigbench's
//! default `obs` feature, so the counters are live here).
//!
//! Two things are pinned: the renumber-on-overflow fix — repeated
//! same-slot inserts must exhaust the stride-16 gap budget and surface
//! as `renumber_events`, with the renumbered snapshot still correct —
//! and the service-level edit counters (`edits_applied`,
//! `snapshot_rotations`, `edit_elements_reindexed`,
//! `plan_cache_invalidations`) that Fig E reads.

use twigobs::Counter;
use twigserve::{QueryService, ServiceConfig};
use xmldom::{apply_op, parse, EditOp, NodeId};

#[test]
fn gap_exhaustion_renumbers_and_counts_renumber_events() {
    twigobs::take(); // isolate this thread's counters
    let mut doc = parse("<a><b/><c/></a>").unwrap();
    let root = NodeId::from_index(0);
    // Same-slot inserts between the root's start tag and its first
    // child: the first insert renumbers a dense document, and the
    // stride-16 gap it leaves is exhausted again within a handful of
    // single-element grafts into the same shrinking interval.
    const INSERTS: usize = 24;
    for _ in 0..INSERTS {
        let op = EditOp::InsertSubtree {
            parent: Some(root),
            position: 0,
            subtree: parse("<b/>").unwrap(),
        };
        let (next, _) = apply_op(&doc, &op).expect("insert applies");
        doc = next;
    }
    let m = twigobs::take();
    assert_eq!(m.get(Counter::EditsApplied), INSERTS as u64);
    assert!(
        m.get(Counter::RenumberEvents) >= 2,
        "expected the gap budget to exhaust repeatedly, saw {} renumber(s)",
        m.get(Counter::RenumberEvents)
    );
    // The renumbered snapshot is correct: every graft landed, order intact.
    assert_eq!(doc.len(), 3 + INSERTS);
    let gtp = gtpquery::parse_twig("//a/b").unwrap();
    assert_eq!(twig2stack::evaluate(&doc, &gtp).len(), INSERTS + 1);
}

#[test]
fn service_edits_report_rotation_and_invalidation_counters() {
    twigobs::take();
    let svc = QueryService::build(
        parse("<a><b><c/></b><d/></a>").unwrap(),
        ServiceConfig::default(),
    );
    svc.execute("//b/c").unwrap();
    svc.execute("//d").unwrap();
    let root = svc.snapshot().doc().root();
    // Dense document: the first edit renumbers, rebuilds, and drops
    // both cached plans.
    svc.apply_edit(&EditOp::InsertSubtree {
        parent: Some(root),
        position: 0,
        subtree: parse("<b><c/></b>").unwrap(),
    })
    .unwrap();
    let m = twigobs::take();
    assert_eq!(m.get(Counter::EditsApplied), 1);
    assert_eq!(m.get(Counter::SnapshotRotations), 1);
    assert_eq!(m.get(Counter::RenumberEvents), 1);
    assert_eq!(m.get(Counter::PlanCacheInvalidations), 2);
    assert!(
        m.get(Counter::EditElementsReindexed) >= 5,
        "a rebuild reindexes the whole edited document"
    );
    // The obs counters and the always-live ServiceStats agree.
    let stats = svc.stats();
    assert_eq!(stats.edits_applied, 1);
    assert_eq!(stats.snapshot_rotations, 1);
    assert_eq!(stats.plan_cache_invalidations, 2);
}
