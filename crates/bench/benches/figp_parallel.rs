//! Criterion bench for Figure P: parallel partitioned evaluation of
//! XMark-Q1 over thread counts. The per-thread-count medians trace the
//! speedup curve; `threads = 1` is the serial-fallback baseline. Absolute
//! speedups depend on the machine's core count — single-core CI traces a
//! flat curve, which is still the correct measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use twig2stack::evaluate_parallel;
use twigbench::workload::{xmark, xmark_queries, Profile};

fn figp(c: &mut Criterion) {
    let nq = &xmark_queries()[0]; // XMark-Q1
    for scale in [1usize, 2, 3] {
        let ds = xmark(Profile::Quick, scale);
        let mut group = c.benchmark_group(format!("figP/XMark-Q1/s={scale}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600))
            .throughput(Throughput::Elements(ds.doc.len() as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("threads", threads),
                &ds,
                |b, ds| b.iter(|| evaluate_parallel(&ds.doc, &nq.gtp, threads).len()),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, figp);
criterion_main!(benches);
