//! Criterion bench for the multi-document catalog: scatter-gather vs
//! serial per-document iteration, and the Bloom router's skip path.
//!
//! Besides the console report, the run exports `BENCH_catalog.json` at
//! the repo root (schema `twig2stack.bench/v1`) with best-of-3
//! wall-clock numbers plus the Figure U arms at quick scale, so future
//! changes have a recorded trajectory to compare against:
//!
//! ```text
//! cargo bench -p twigbench --bench catalog
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use twigbench::workload::{catalog_docs, catalog_queries, Profile};
use twigbench::{figu, FigURow};
use twigserve::{CatalogConfig, CatalogService};

fn catalog(shards: usize) -> CatalogService {
    CatalogService::build_heap(
        catalog_docs(Profile::Quick),
        CatalogConfig { shards, workers: shards, ..CatalogConfig::default() },
    )
}

/// One mixed-traffic pass (every catalog query once) through the given
/// execution path.
fn traffic(cat: &CatalogService, serial: bool) -> usize {
    catalog_queries()
        .iter()
        .map(|nq| {
            let hits = if serial {
                cat.execute_serial(nq.text).expect("serial request")
            } else {
                cat.execute(nq.text).expect("scatter-gather request")
            };
            hits.iter().map(|h| h.rows.len()).sum::<usize>()
        })
        .sum()
}

/// Scatter-gather at 1/2/4 shard workers vs serial iteration, same
/// mixed traffic.
fn scatter_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog/traffic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let serial_cat = catalog(1);
    group.bench_function("serial", |b| b.iter(|| traffic(&serial_cat, true)));
    for shards in [1usize, 2, 4] {
        let cat = catalog(shards);
        group.bench_with_input(BenchmarkId::new("scatter", shards), &cat, |b, cat| {
            b.iter(|| traffic(cat, false))
        });
    }
    group.finish();
}

/// The router alone: feasibility + Bloom membership over the whole
/// catalog for a family query (routes 1/4) and a miss query (routes 0).
fn routing(c: &mut Criterion) {
    let cat = catalog(4);
    let mut group = c.benchmark_group("catalog/route");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_function("family", |b| {
        b.iter(|| cat.routed_docs("//rec0[a0/d0]/b0").expect("family routing").len())
    });
    group.bench_function("miss", |b| {
        b.iter(|| cat.routed_docs("//zzz/qqq").expect("miss routing").len())
    });
    group.finish();
}

fn best_of_3(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Export `BENCH_catalog.json` at the repo root: best-of-3 traffic-pass
/// latencies plus the quick-scale Figure U rows.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"catalog\",\n  \"profile\": \"quick\",\n");

    let serial_cat = catalog(1);
    let scatter_cat = catalog(4);
    let serial = best_of_3(|| {
        std::hint::black_box(traffic(&serial_cat, true));
    });
    let scatter = best_of_3(|| {
        std::hint::black_box(traffic(&scatter_cat, false));
    });
    json.push_str(&format!(
        "  \"traffic_pass\": {{\"docs\": {}, \"serial_ns\": {}, \"scatter4_ns\": {}}},\n",
        serial_cat.doc_count(),
        serial.as_nanos(),
        scatter.as_nanos()
    ));

    json.push_str("  \"figU\": [\n");
    let (rows, _) = figu(Profile::Quick);
    for (i, r) in rows.iter().enumerate() {
        let FigURow {
            arm,
            shards,
            queries_run,
            qps,
            speedup,
            docs_routed,
            docs_skipped,
            skip_rate,
            p50,
            p99,
            deadline_misses,
            ..
        } = r;
        json.push_str(&format!(
            "    {{\"arm\": \"{arm}\", \"shards\": {shards}, \"queries\": {queries_run}, \
             \"qps\": {qps:.0}, \"speedup\": {speedup:.2}, \"routed\": {docs_routed}, \
             \"skipped\": {docs_skipped}, \"skip_rate\": {skip_rate:.3}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"deadline_misses\": {deadline_misses}}}{}\n",
            p50.as_nanos(),
            p99.as_nanos(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_catalog.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, scatter_vs_serial, routing, export_json);
criterion_main!(benches);
