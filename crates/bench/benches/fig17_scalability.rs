//! Criterion benches for paper Figure 17: query processing time over
//! XMark documents of increasing scale factor. The paper's claim is that
//! all three algorithms grow linearly in document size (with Twig²Stack
//! lowest); compare the per-scale medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use twigbench::metrics::{tjfast_query_once, twig2stack_query_once, twigstack_query_once};
use twigbench::workload::{xmark, xmark_queries, Profile};

fn fig17(c: &mut Criterion) {
    for nq in xmark_queries() {
        let mut group = c.benchmark_group(format!("fig17/{}", nq.name));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
        for scale in [1usize, 2, 3] {
            let ds = xmark(Profile::Quick, scale);
            group.throughput(Throughput::Elements(ds.doc.len() as u64));
            group.bench_with_input(
                BenchmarkId::new("TwigStack", scale),
                &ds,
                |b, ds| b.iter(|| twigstack_query_once(ds, &nq.gtp).1.len()),
            );
            group.bench_with_input(BenchmarkId::new("TJFast", scale), &ds, |b, ds| {
                b.iter(|| tjfast_query_once(ds, &nq.gtp).1.len())
            });
            group.bench_with_input(
                BenchmarkId::new("Twig2Stack", scale),
                &ds,
                |b, ds| b.iter(|| twig2stack_query_once(ds, &nq.gtp).1.len()),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, fig17);
criterion_main!(benches);
