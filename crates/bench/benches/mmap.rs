//! Criterion bench for the zero-copy mapped (v3) index: cold start to
//! first answer — heap build vs map-and-verify — at quick and scaled
//! (~100× quick, XMark s=32) document sizes.
//!
//! Besides the console report, the run exports `BENCH_mmap.json` at the
//! repo root (schema `twig2stack.bench/v1`) with both profiles' Figure M
//! rows — cold-start wall time per arm, heap vs file vs resident bytes,
//! and the pruned-stream counters (asserted identical between arms by
//! `figm` itself) — so future changes have a recorded trajectory:
//!
//! ```text
//! cargo bench -p twigbench --bench mmap
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use twig2stack::evaluate_indexed;
use twigbench::workload::{documents, Profile};
use twigbench::{figm, FigMRow};
use xmlindex::{write_mapped_index, ElementIndex, MappedIndex, PruningPolicy};

/// Cold start per arm under the criterion harness: quick-profile
/// documents only (the scaled rows come from `figm` in `export_json`,
/// best-of-3, to keep the harness run in seconds).
fn cold_start(c: &mut Criterion) {
    for (name, doc) in &documents(Profile::Quick) {
        let path = std::env::temp_dir().join(format!(
            "t2s-bench-mmap-{}-{name}.t2sidx",
            std::process::id()
        ));
        write_mapped_index(doc, &path).unwrap();
        let first = first_query(name);

        let mut group = c.benchmark_group(format!("mmap/cold_start/{name}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400));
        group.bench_with_input(BenchmarkId::new("arm", "heap_build"), doc, |b, doc| {
            b.iter(|| {
                let index = ElementIndex::build(doc);
                evaluate_indexed(doc, &index, &first, PruningPolicy::Enabled).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("arm", "mapped_open"), doc, |b, doc| {
            b.iter(|| {
                let mapped = MappedIndex::open(&path).unwrap();
                evaluate_indexed(doc, &mapped, &first, PruningPolicy::Enabled).len()
            })
        });
        group.finish();
        std::fs::remove_file(&path).ok();
    }
}

/// The dataset's first Figure 15 query (the one `figm` boots with).
fn first_query(dataset: &str) -> gtpquery::Gtp {
    use twigbench::workload::{dblp_queries, treebank_queries, xmark_queries};
    let set = match dataset {
        "DBLP" => dblp_queries(),
        "XMark" => xmark_queries(),
        _ => treebank_queries(),
    };
    set[0].gtp.clone()
}

fn push_rows(json: &mut String, rows: &[FigMRow]) {
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"elements\": {}, \"heap_cold_ns\": {}, \"mapped_cold_ns\": {}, \"heap_bytes\": {}, \"file_bytes\": {}, \"resident_bytes\": {}, \"scanned\": {}, \"stream_skips\": {}, \"results\": {}}}{}\n",
            r.dataset,
            r.elements,
            r.heap_cold.as_nanos(),
            r.mapped_cold.as_nanos(),
            r.heap_bytes,
            r.file_bytes,
            r.resident_bytes,
            r.scanned_mapped,
            r.skips_mapped,
            r.results,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
}

/// Export `BENCH_mmap.json` at the repo root: the Figure M rows at both
/// the quick and the scaled (~100×) profile. `figm` asserts inside that
/// the mapped arm's results and stream counters are byte-identical to
/// the heap arm's, so every number below describes verified-equivalent
/// executions.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"mmap\",\n");

    json.push_str("  \"quick\": [\n");
    let (quick_rows, _) = figm(Profile::Quick);
    push_rows(&mut json, &quick_rows);
    json.push_str("  ],\n");

    json.push_str("  \"scaled\": [\n");
    let (scaled_rows, _) = figm(Profile::Scaled);
    push_rows(&mut json, &scaled_rows);
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_mmap.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, cold_start, export_json);
criterion_main!(benches);
