//! Criterion bench for the cost-based planner: adaptive vs forced-arm
//! request latency per figure-16 query, plus the planning decision cost
//! itself (the extra work an adaptive plan-cache miss pays).
//!
//! Besides the console report, the run exports `BENCH_planner.json` at
//! the repo root (schema `twig2stack.bench/v1`) with the quick-scale
//! Figure A rows — adaptive vs best-forced wall clock, the chosen engine
//! and pruning policy, and the prediction-vs-actual scan columns — so
//! future cost-model changes have a recorded trajectory:
//!
//! ```text
//! cargo bench -p twigbench --bench planner
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use twigbench::workload::{treebank, treebank_queries, xmark, xmark_queries, Profile};
use twigbench::{figa, FigARow};
use twigserve::{PlanEngine, PlannerMode, QueryService, ServiceConfig};

fn service(ds: &twigbench::Dataset, mode: PlannerMode) -> QueryService {
    QueryService::new(
        ds.doc.clone(),
        ds.index.clone(),
        ServiceConfig { planner: mode, ..ServiceConfig::default() },
    )
}

/// Adaptive vs pinned-engine request latency on the two queries where the
/// decision matters most: XMark-Q2 (pruning hurts; the planner turns it
/// off) and TreeBank-Q1 (pruning saves 80%; the planner keeps it).
fn adaptive_vs_forced(c: &mut Criterion) {
    let cases = [
        (xmark(Profile::Quick, 1), xmark_queries().swap_remove(1)),
        (treebank(Profile::Quick), treebank_queries().swap_remove(0)),
    ];
    let mut group = c.benchmark_group("planner/request");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for (ds, nq) in &cases {
        let adaptive = service(ds, PlannerMode::Adaptive);
        let forced = service(ds, PlannerMode::Forced(PlanEngine::Twig2Stack));
        adaptive.execute(nq.text).expect("warm the adaptive cache");
        forced.execute(nq.text).expect("warm the forced cache");
        group.bench_with_input(BenchmarkId::new("adaptive", nq.name), &adaptive, |b, svc| {
            b.iter(|| svc.execute(nq.text).expect("adaptive request").len())
        });
        group.bench_with_input(BenchmarkId::new("forced", nq.name), &forced, |b, svc| {
            b.iter(|| svc.execute(nq.text).expect("forced request").len())
        });
    }
    group.finish();
}

/// The planning overhead itself: an adaptive plan-cache miss runs the
/// cost estimate on top of the feasibility analysis a forced miss runs.
fn planning_cost(c: &mut Criterion) {
    let ds = treebank(Profile::Quick);
    let q = treebank_queries().swap_remove(0);
    let mut group = c.benchmark_group("planner/miss");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for (label, mode) in [
        ("forced", PlannerMode::Forced(PlanEngine::Twig2Stack)),
        ("adaptive", PlannerMode::Adaptive),
    ] {
        // Capacity 0 keeps every lookup on the miss path.
        let svc = QueryService::new(
            ds.doc.clone(),
            ds.index.clone(),
            ServiceConfig {
                planner: mode,
                plan_cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        group.bench_function(label, |b| {
            b.iter(|| svc.execute(q.text).expect("uncached request").len())
        });
    }
    group.finish();
}

/// Export `BENCH_planner.json` at the repo root: the quick-scale Figure A
/// rows (this also re-runs Fig A's soundness and ≤1.1×-of-best-forced
/// assertions as part of the bench).
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"planner\",\n  \"profile\": \"quick\",\n");
    json.push_str("  \"figA\": [\n");
    let (rows, _) = figa(Profile::Quick);
    for (i, r) in rows.iter().enumerate() {
        let FigARow {
            dataset,
            query,
            engine,
            pruned,
            predicted_scan,
            actual_scan,
            predicted_results,
            results,
            mispredicted,
            time_adaptive,
            best_forced,
            time_best_forced,
            ..
        } = r;
        json.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"query\": \"{query}\", \
             \"engine\": \"{engine}\", \"pruned\": {pruned}, \
             \"predicted_scan\": {predicted_scan}, \"actual_scan\": {actual_scan}, \
             \"predicted_results\": {predicted_results}, \"results\": {results}, \
             \"mispredicted\": {mispredicted}, \
             \"adaptive_ns\": {}, \"best_forced\": \"{best_forced}\", \
             \"best_forced_ns\": {}}}{}\n",
            time_adaptive.as_nanos(),
            time_best_forced.as_nanos(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_planner.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, adaptive_vs_forced, planning_cost, export_json);
criterion_main!(benches);
