//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the existence-checking optimization (§3.5) on vs off,
//! * early result enumeration (§4.4) vs pure bottom-up,
//! * streaming (SAX events, no DOM) vs DOM-driven matching,
//! * matching vs enumeration cost split (what the hierarchical encoding
//!   saves vs what tuple materialization costs).

use criterion::{criterion_group, criterion_main, Criterion};
use gtpquery::parse_twig;
use std::time::Duration;
use twig2stack::{
    count_results, enumerate, evaluate_early, evaluate_streaming, match_document, MatchOptions,
};
use twigbench::workload::{dblp, Profile};
use xmldom::{write, Indent};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
}

fn existence_opt(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    // B-return-only form of DBLP-Q1: title and author become
    // existence-checking when the optimization is on.
    let gtp = parse_twig("//dblp!/inproceedings[title!]/author!").unwrap();
    let mut group = c.benchmark_group("ablation/existence_opt");
    configure(&mut group);
    for (label, on) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (tm, stats) =
                    match_document(&ds.doc, &gtp, MatchOptions { existence_opt: on });
                let rs = enumerate(&tm);
                (rs.len(), stats.peak_bytes)
            })
        });
    }
    group.finish();
}

fn early_vs_pure(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let gtp = parse_twig("//dblp!/inproceedings[title!]/author").unwrap();
    let mut group = c.benchmark_group("ablation/early_enumeration");
    configure(&mut group);
    group.bench_function("pure_bottom_up", |b| {
        b.iter(|| {
            let (tm, _) = match_document(&ds.doc, &gtp, MatchOptions::default());
            enumerate(&tm).len()
        })
    });
    group.bench_function("early_hybrid", |b| {
        b.iter(|| {
            evaluate_early(&ds.doc, &gtp, MatchOptions::default())
                .expect("query shape supports early mode")
                .0
                .len()
        })
    });
    group.finish();
}

fn streaming_vs_dom(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let xml = write(&ds.doc, Indent::None);
    let gtp = parse_twig("//dblp/inproceedings[title]/author").unwrap();
    let mut group = c.benchmark_group("ablation/streaming");
    configure(&mut group);
    group.bench_function("dom_events", |b| {
        b.iter(|| {
            let (tm, _) = match_document(&ds.doc, &gtp, MatchOptions::default());
            enumerate(&tm).len()
        })
    });
    group.bench_function("sax_streaming_no_dom", |b| {
        b.iter(|| {
            evaluate_streaming(&xml, &gtp, MatchOptions::default())
                .expect("well-formed")
                .0
                .len()
        })
    });
    group.finish();
}

fn match_vs_enumerate(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let gtp = parse_twig("//dblp/inproceedings[title]/author").unwrap();
    let mut group = c.benchmark_group("ablation/phase_split");
    configure(&mut group);
    group.bench_function("match_only", |b| {
        b.iter(|| match_document(&ds.doc, &gtp, MatchOptions::default()).1.elements_pushed)
    });
    group.bench_function("match_plus_enumerate", |b| {
        b.iter(|| {
            let (tm, _) = match_document(&ds.doc, &gtp, MatchOptions::default());
            enumerate(&tm).len()
        })
    });
    group.finish();
}

fn count_vs_materialize(c: &mut Criterion) {
    // XMark-Q1's output is quadratic (bidders × reserves through the one
    // open_auctions container); counting over the factorized encoding is
    // O(encoding) and stays linear.
    let ds = twigbench::workload::xmark(Profile::Quick, 2);
    let gtp = parse_twig("/site/open_auctions[.//bidder/personref]//reserve").unwrap();
    let mut group = c.benchmark_group("ablation/count_vs_materialize");
    configure(&mut group);
    group.bench_function("materialize_tuples", |b| {
        b.iter(|| {
            let (tm, _) = match_document(&ds.doc, &gtp, MatchOptions::default());
            enumerate(&tm).len()
        })
    });
    group.bench_function("count_only", |b| {
        b.iter(|| {
            let (tm, _) = match_document(&ds.doc, &gtp, MatchOptions::default());
            count_results(&tm)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    existence_opt,
    early_vs_pure,
    streaming_vs_dom,
    match_vs_enumerate,
    count_vs_materialize
);
criterion_main!(benches);
