//! Criterion bench for the continuous-subscription engine: one shared
//! prefix-merged automaton pass vs solo-per-query streaming.
//!
//! Besides the console report, the run exports `BENCH_subscribe.json`
//! at the repo root (schema `twig2stack.bench/v1`) with best-of-3
//! wall-clock numbers plus the Figure V arms at quick scale, so future
//! changes have a recorded trajectory to compare against:
//!
//! ```text
//! cargo bench -p twigbench --bench subscribe
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtpquery::Gtp;
use std::time::{Duration, Instant};
use twig2stack::{run_subscriptions, MatchOptions, SharedAutomaton};
use twigbench::workload::Profile;
use twigbench::{figv, subscription_queries, FigVRow};
use xmlgen::{generate_random_tree, RandomTreeConfig};

fn stream() -> String {
    let doc = generate_random_tree(&RandomTreeConfig {
        nodes: 2_000,
        alphabet: 12,
        max_depth: 10,
        depth_bias: 50,
        seed: 0xF165,
        text_vocab: 0,
    });
    xmldom::write(&doc, xmldom::Indent::None)
}

fn gtps(count: usize) -> Vec<Gtp> {
    subscription_queries(count)
        .iter()
        .map(|q| gtpquery::parse_twig(q).expect("bench query parses"))
        .collect()
}

/// The shared automaton at 1/10/100 registered subscriptions vs running
/// ten subscriptions solo, same stream.
fn shared_vs_solo(c: &mut Criterion) {
    let xml = stream();
    let mut group = c.benchmark_group("subscribe/stream");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for k in [1usize, 10, 100] {
        let auto = SharedAutomaton::build(gtps(k));
        group.bench_with_input(BenchmarkId::new("shared", k), &auto, |b, auto| {
            b.iter(|| run_subscriptions(&xml, auto, MatchOptions::default()).expect("shared pass"))
        });
    }
    let solo = gtps(10);
    group.bench_function("solo-10", |b| {
        b.iter(|| {
            for gtp in &solo {
                std::hint::black_box(
                    twig2stack::evaluate_streaming(&xml, gtp, MatchOptions::default())
                        .expect("solo pass"),
                );
            }
        })
    });
    group.finish();
}

/// Automaton construction alone — registration-time cost.
fn build(c: &mut Criterion) {
    let mut group = c.benchmark_group("subscribe/build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for k in [10usize, 100] {
        let qs = gtps(k);
        group.bench_with_input(BenchmarkId::new("automaton", k), &qs, |b, qs| {
            b.iter(|| SharedAutomaton::build(qs.clone()).state_count())
        });
    }
    group.finish();
}

fn best_of_3(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Export `BENCH_subscribe.json` at the repo root: best-of-3 shared-pass
/// latencies plus the quick-scale Figure V rows.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"subscribe\",\n  \"profile\": \"quick\",\n");

    let xml = stream();
    json.push_str("  \"shared_pass\": [\n");
    let ks = [1usize, 10, 100];
    for (i, &k) in ks.iter().enumerate() {
        let auto = SharedAutomaton::build(gtps(k));
        let best = best_of_3(|| {
            std::hint::black_box(
                run_subscriptions(&xml, &auto, MatchOptions::default()).expect("shared pass"),
            );
        });
        json.push_str(&format!(
            "    {{\"subscriptions\": {k}, \"states\": {}, \"best_ns\": {}}}{}\n",
            auto.state_count(),
            best.as_nanos(),
            if i + 1 < ks.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"figV\": [\n");
    let (rows, _) = figv(Profile::Quick);
    for (i, r) in rows.iter().enumerate() {
        let FigVRow {
            subscriptions,
            states,
            events,
            shared_elapsed,
            shared_eps,
            solo_elapsed,
            speedup,
            matcher_feeds,
            feed_fraction,
        } = r;
        json.push_str(&format!(
            "    {{\"subscriptions\": {subscriptions}, \"states\": {states}, \
             \"events\": {events}, \"shared_ns\": {}, \"events_per_sec\": {shared_eps:.0}, \
             \"solo_ns\": {}, \"speedup\": {speedup:.2}, \"matcher_feeds\": {matcher_feeds}, \
             \"feed_fraction\": {feed_fraction:.4}}}{}\n",
            shared_elapsed.as_nanos(),
            solo_elapsed.as_nanos(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_subscribe.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, shared_vs_solo, build, export_json);
criterion_main!(benches);
