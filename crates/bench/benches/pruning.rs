//! Criterion bench for the path-summary pruning subsystem: summary
//! construction cost per dataset, and pruned vs full stream evaluation on
//! representative Figure 16 queries.
//!
//! Besides the console report, the run exports `BENCH_pruning.json` at the
//! repo root (schema `twig2stack.bench/v1`) with its own best-of-3
//! wall-clock numbers and the stream read counters from Figure S, so
//! future changes have a recorded trajectory to compare against:
//!
//! ```text
//! cargo bench -p twigbench --bench pruning
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};
use twig2stack::evaluate_indexed;
use twigbench::workload::{dblp, treebank, xmark, Dataset, Profile};
use twigbench::{figs, Algo};
use xmlindex::{PathSummary, PruningPolicy};

fn datasets() -> Vec<Dataset> {
    vec![
        dblp(Profile::Quick),
        xmark(Profile::Quick, 1),
        treebank(Profile::Quick),
    ]
}

/// Summary construction: one pre-order pass over the document.
fn summary_build(c: &mut Criterion) {
    for ds in datasets() {
        let mut group = c.benchmark_group("pruning/summary_build");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400))
            .throughput(Throughput::Elements(ds.doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("dataset", &ds.name), &ds, |b, ds| {
            b.iter(|| PathSummary::build(&ds.doc).len())
        });
        group.finish();
    }
}

/// Pruned vs full stream evaluation, Twig²Stack indexed driver, on one
/// representative query per dataset (the one with the deepest pruning
/// opportunity: labels that occur outside the query's feasible paths).
fn queries() -> Vec<(Dataset, &'static str, usize)> {
    // (dataset, query-set name, query index): DBLP-Q2, XMark-Q2, TreeBank-Q2.
    vec![
        (dblp(Profile::Quick), "DBLP-Q2", 1),
        (xmark(Profile::Quick, 1), "XMark-Q2", 1),
        (treebank(Profile::Quick), "TreeBank-Q2", 1),
    ]
}

fn query_for(ds: &Dataset, idx: usize) -> gtpquery::Gtp {
    use twigbench::workload::{dblp_queries, treebank_queries, xmark_queries};
    let set = if ds.name.starts_with("DBLP") {
        dblp_queries()
    } else if ds.name.starts_with("XMark") {
        xmark_queries()
    } else {
        treebank_queries()
    };
    set[idx].gtp.clone()
}

fn pruned_vs_full(c: &mut Criterion) {
    for (ds, qname, idx) in queries() {
        let gtp = query_for(&ds, idx);
        let mut group = c.benchmark_group(format!("pruning/evaluate/{qname}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400));
        group.bench_with_input(BenchmarkId::new("streams", "full"), &ds, |b, ds| {
            b.iter(|| evaluate_indexed(&ds.doc, &ds.index, &gtp, PruningPolicy::Disabled).len())
        });
        group.bench_with_input(BenchmarkId::new("streams", "pruned"), &ds, |b, ds| {
            b.iter(|| evaluate_indexed(&ds.doc, &ds.index, &gtp, PruningPolicy::Enabled).len())
        });
        group.finish();
    }
}

fn best_of_3(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Export `BENCH_pruning.json` at the repo root. The vendored criterion
/// stand-in keeps its measurements private, so this takes its own
/// best-of-3 numbers (same estimator) and folds in the Figure S counters.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"pruning\",\n  \"profile\": \"quick\",\n");

    json.push_str("  \"summary_build\": [\n");
    let sets = datasets();
    for (i, ds) in sets.iter().enumerate() {
        let mut len = 0usize;
        let best = best_of_3(|| len = std::hint::black_box(PathSummary::build(&ds.doc)).len());
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"doc_nodes\": {}, \"summary_nodes\": {}, \"best_ns\": {}}}{}\n",
            ds.name,
            ds.doc.len(),
            len,
            best.as_nanos(),
            if i + 1 < sets.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"evaluate\": [\n");
    let qs = queries();
    for (i, (ds, qname, idx)) in qs.iter().enumerate() {
        let gtp = query_for(ds, *idx);
        let full = best_of_3(|| {
            std::hint::black_box(evaluate_indexed(
                &ds.doc,
                &ds.index,
                &gtp,
                PruningPolicy::Disabled,
            ));
        });
        let pruned = best_of_3(|| {
            std::hint::black_box(evaluate_indexed(
                &ds.doc,
                &ds.index,
                &gtp,
                PruningPolicy::Enabled,
            ));
        });
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"full_ns\": {}, \"pruned_ns\": {}}}{}\n",
            qname,
            full.as_nanos(),
            pruned.as_nanos(),
            if i + 1 < qs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    // Stream read counters for the whole Figure 16 workload (Twig²Stack
    // rows of Figure S); zero when the obs feature is compiled out.
    json.push_str("  \"figS_twig2stack\": [\n");
    let (rows, _) = figs(Profile::Quick);
    let t2s: Vec<_> = rows
        .iter()
        .filter(|r| r.algo == Algo::Twig2Stack)
        .collect();
    for (i, r) in t2s.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"scanned_full\": {}, \"scanned_pruned\": {}, \"elements_pruned\": {}, \"stream_skips\": {}, \"results\": {}}}{}\n",
            r.query,
            r.scanned_full,
            r.scanned_pruned,
            r.elements_pruned,
            r.stream_skips,
            r.results,
            if i + 1 < t2s.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pruning.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, summary_build, pruned_vs_full, export_json);
criterion_main!(benches);
