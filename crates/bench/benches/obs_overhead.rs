//! Criterion bench measuring the overhead of the observability layer on
//! the matching hot path. Run twice and compare medians:
//!
//! ```text
//! cargo bench -p twigbench --bench obs_overhead --no-default-features   # obs off
//! cargo bench -p twigbench --bench obs_overhead                        # obs on
//! ```
//!
//! With the `obs` feature off every `twigobs` hook compiles to an empty
//! inline function, so the two runs should be within noise of each other
//! (the acceptance budget is ≤1%). The bench prints whether recording is
//! compiled in so the two runs cannot be confused.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use twig2stack::evaluate;
use twigbench::workload::{xmark, xmark_queries, Profile};

fn obs_overhead(c: &mut Criterion) {
    eprintln!(
        "obs recording compiled in: {} (compare against the other configuration)",
        twigobs::ENABLED
    );
    let nq = &xmark_queries()[0]; // XMark-Q1
    for scale in [1usize, 2, 3] {
        let ds = xmark(Profile::Quick, scale);
        let mut group = c.benchmark_group(format!("obs_overhead/XMark-Q1/s={scale}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600))
            .throughput(Throughput::Elements(ds.doc.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("obs", twigobs::ENABLED),
            &ds,
            |b, ds| b.iter(|| evaluate(&ds.doc, &nq.gtp).len()),
        );
        group.finish();
    }
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
