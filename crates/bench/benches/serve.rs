//! Criterion bench for the query-service layer: single-request latency
//! through the service (plan cache hit vs miss path) and batch vs
//! one-by-one submission.
//!
//! Besides the console report, the run exports `BENCH_serve.json` at the
//! repo root (schema `twig2stack.bench/v1`) with best-of-3 wall-clock
//! numbers plus the Figure T throughput rows at quick scale, so future
//! changes have a recorded trajectory to compare against:
//!
//! ```text
//! cargo bench -p twigbench --bench serve
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use twigbench::workload::{dblp, dblp_queries, Profile};
use twigbench::{figt, FigTRow};
use twigserve::{QueryService, ServiceConfig};

fn hit_service() -> QueryService {
    let ds = dblp(Profile::Quick);
    QueryService::new(ds.doc, ds.index, ServiceConfig::default())
}

fn miss_service() -> QueryService {
    let ds = dblp(Profile::Quick);
    let config = ServiceConfig { plan_cache_capacity: 0, ..ServiceConfig::default() };
    QueryService::new(ds.doc, ds.index, config)
}

/// Cache-hit vs cache-miss request latency on DBLP-Q1.
fn request_path(c: &mut Criterion) {
    let queries = dblp_queries();
    let q = queries[0].text;
    let hit = hit_service();
    hit.execute(q).expect("warm the cache");
    let miss = miss_service();
    let mut group = c.benchmark_group("serve/request");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_with_input(BenchmarkId::new("plan", "cached"), &hit, |b, svc| {
        b.iter(|| svc.execute(q).expect("cached request").len())
    });
    group.bench_with_input(BenchmarkId::new("plan", "uncached"), &miss, |b, svc| {
        b.iter(|| svc.execute(q).expect("uncached request").len())
    });
    group.finish();
}

/// Batch submission (one shared scan for same-label-set queries) vs the
/// same queries one by one.
fn batch_vs_single(c: &mut Criterion) {
    let queries = dblp_queries();
    let texts: Vec<&str> = queries.iter().map(|nq| nq.text).collect();
    let svc = hit_service();
    let mut group = c.benchmark_group("serve/batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_function("batched", |b| {
        b.iter(|| {
            svc.execute_batch(&texts)
                .into_iter()
                .map(|r| r.expect("batch member").len())
                .sum::<usize>()
        })
    });
    group.bench_function("one_by_one", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|q| svc.execute(q).expect("single request").len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn best_of_3(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Export `BENCH_serve.json` at the repo root: best-of-3 request
/// latencies plus the quick-scale Figure T rows.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"serve\",\n  \"profile\": \"quick\",\n");

    let queries = dblp_queries();
    let q = queries[0].text;
    let hit = hit_service();
    hit.execute(q).expect("warm the cache");
    let miss = miss_service();
    let cached = best_of_3(|| {
        std::hint::black_box(hit.execute(q).expect("cached request"));
    });
    let uncached = best_of_3(|| {
        std::hint::black_box(miss.execute(q).expect("uncached request"));
    });
    json.push_str(&format!(
        "  \"request\": {{\"query\": \"DBLP-Q1\", \"cached_ns\": {}, \"uncached_ns\": {}}},\n",
        cached.as_nanos(),
        uncached.as_nanos()
    ));

    json.push_str("  \"figT\": [\n");
    let (rows, _) = figt(Profile::Quick, &[1, 4]);
    for (i, r) in rows.iter().enumerate() {
        let FigTRow { dataset, threads, cache_on, queries_run, qps, analyses_run, .. } = r;
        json.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"threads\": {threads}, \"cache\": {cache_on}, \
             \"queries\": {queries_run}, \"qps\": {qps:.0}, \"analyses\": {analyses_run}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, request_path, batch_vs_single, export_json);
criterion_main!(benches);
