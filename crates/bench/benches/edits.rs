//! Criterion bench for the edit path: incremental index maintenance
//! ([`xmlindex::ElementIndex::apply_edit`]) vs rebuild-from-scratch on a
//! gap-fitting insert, and the full service-level edit (rotation plus
//! plan-cache invalidation) through [`twigserve::QueryService`].
//!
//! Besides the console report, the run exports `BENCH_edits.json` at the
//! repo root (schema `twig2stack.bench/v1`) with best-of-3 wall-clock
//! numbers plus the Figure E rows at quick scale, so future changes have
//! a recorded trajectory to compare against:
//!
//! ```text
//! cargo bench -p twigbench --bench edits
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use twigbench::workload::{dblp, Profile};
use twigbench::{fige, FigERow};
use twigserve::{QueryService, ServiceConfig};
use xmldom::{apply_op, parse, Document, EditOp};
use xmlindex::ElementIndex;

/// A gap-carrying DBLP document and the record insert used by every
/// bench below: apply one priming edit (the renumber leaves stride
/// gaps), then measure steady-state inserts of a small known-path
/// record at the front of the root.
fn primed() -> (Document, ElementIndex, EditOp) {
    let ds = dblp(Profile::Quick);
    let record =
        parse("<article><author>bench</author><title>t</title><year>2006</year></article>")
            .unwrap();
    let prime = EditOp::InsertSubtree {
        parent: Some(ds.doc.root()),
        position: 0,
        subtree: record.clone(),
    };
    let (doc, delta) = apply_op(&ds.doc, &prime).expect("priming insert applies");
    let (index, _) = ds.index.apply_edit(&doc, &delta);
    let op = EditOp::InsertSubtree { parent: Some(doc.root()), position: 0, subtree: record };
    (doc, index, op)
}

/// Steady-state incremental patch vs full rebuild for one gap-fitting
/// insert on quick-scale DBLP.
fn patch_vs_rebuild(c: &mut Criterion) {
    let (doc, index, op) = primed();
    let (edited, delta) = apply_op(&doc, &op).expect("bench insert applies");
    let mut group = c.benchmark_group("edits/one-insert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_function("apply_edit", |b| {
        b.iter(|| {
            let (next, how) = index.apply_edit(&edited, &delta);
            assert_eq!(how, xmlindex::EditApply::Patched, "steady state must patch");
            next
        })
    });
    group.bench_function("rebuild", |b| b.iter(|| ElementIndex::build(&edited)));
    group.finish();
}

/// The whole service edit: apply, rotate the snapshot, invalidate
/// touched plans. Each iteration alternates insert/delete so the
/// document does not grow across the measurement.
fn service_edit(c: &mut Criterion) {
    let (doc, index, op) = primed();
    let svc = QueryService::new(doc, index, ServiceConfig::default());
    svc.execute("//article/author").expect("cache a plan to invalidate");
    let mut group = c.benchmark_group("edits/service");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    group.bench_function("apply+rotate", |b| {
        b.iter(|| {
            let receipt = svc.apply_edit(&op).expect("insert applies");
            let snap = svc.snapshot();
            let target = snap.doc().children(snap.doc().root()).next().unwrap();
            svc.apply_edit(&EditOp::DeleteSubtree { target }).expect("delete applies");
            receipt.version
        })
    });
    group.finish();
}

fn best_of_3(mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Export `BENCH_edits.json` at the repo root: best-of-3 single-edit
/// latencies plus the quick-scale Figure E rows.
fn export_json(_c: &mut Criterion) {
    let mut json = String::from("{\n  \"schema\": \"twig2stack.bench/v1\",\n");
    json.push_str("  \"name\": \"edits\",\n  \"profile\": \"quick\",\n");

    let (doc, index, op) = primed();
    let (edited, delta) = apply_op(&doc, &op).expect("bench insert applies");
    let patch = best_of_3(|| {
        std::hint::black_box(index.apply_edit(&edited, &delta));
    });
    let rebuild = best_of_3(|| {
        std::hint::black_box(ElementIndex::build(&edited));
    });
    json.push_str(&format!(
        "  \"one_insert\": {{\"dataset\": \"DBLP\", \"elements\": {}, \"patch_ns\": {}, \
         \"rebuild_ns\": {}}},\n",
        edited.len(),
        patch.as_nanos(),
        rebuild.as_nanos()
    ));

    json.push_str("  \"figE\": [\n");
    let (rows, _) = fige(Profile::Quick);
    for (i, r) in rows.iter().enumerate() {
        let FigERow {
            dataset,
            elements,
            edits,
            patched,
            incr_total,
            rebuild_total,
            reindexed_incr,
            reindexed_rebuild,
            results,
            reader_rounds,
        } = r;
        json.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"elements\": {elements}, \"edits\": {edits}, \
             \"patched\": {patched}, \"incr_ns\": {}, \"rebuild_ns\": {}, \
             \"reindexed_incr\": {reindexed_incr}, \"reindexed_rebuild\": {reindexed_rebuild}, \
             \"results\": {results}, \"reader_rounds\": {reader_rounds}}}{}\n",
            incr_total.as_nanos(),
            rebuild_total.as_nanos(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_edits.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, patch_vs_rebuild, service_edit, export_json);
criterion_main!(benches);
