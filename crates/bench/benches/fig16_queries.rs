//! Criterion benches for paper Figure 16: full twig query processing time
//! per dataset × query × algorithm.
//!
//! One criterion group per dataset; each group benches the nine
//! (query, algorithm) cells of that dataset's panel. IO time is measured
//! separately by the `experiments` binary (criterion would just bench the
//! page cache).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use twigbench::metrics::{tjfast_query_once, twig2stack_query_once, twigstack_query_once};
use twigbench::workload::{
    dblp, dblp_queries, treebank, treebank_queries, xmark, xmark_queries, Dataset, NamedQuery,
    Profile,
};

fn bench_dataset(c: &mut Criterion, label: &str, ds: &Dataset, queries: &[NamedQuery]) {
    let mut group = c.benchmark_group(format!("fig16/{label}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for nq in queries {
        group.bench_function(format!("{}/TwigStack", nq.name), |b| {
            b.iter(|| twigstack_query_once(ds, &nq.gtp).1.len())
        });
        group.bench_function(format!("{}/TJFast", nq.name), |b| {
            b.iter(|| tjfast_query_once(ds, &nq.gtp).1.len())
        });
        group.bench_function(format!("{}/Twig2Stack", nq.name), |b| {
            b.iter(|| twig2stack_query_once(ds, &nq.gtp).1.len())
        });
    }
    group.finish();
}

fn fig16(c: &mut Criterion) {
    let profile = Profile::Quick;
    bench_dataset(c, "dblp", &dblp(profile), &dblp_queries());
    bench_dataset(c, "xmark", &xmark(profile, 1), &xmark_queries());
    bench_dataset(c, "treebank", &treebank(profile), &treebank_queries());
}

criterion_group!(benches, fig16);
criterion_main!(benches);
