//! Benches for the substrate costs around the matching algorithms:
//! dataset generation (Figure 14's corpora), index construction (region
//! and extended-Dewey), and XML parsing — the fixed costs every system in
//! the comparison shares.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use twigbench::workload::{dblp, Profile};
use xmlindex::{DeweyIndex, ElementIndex};
use xmlgen::{generate_dblp, generate_treebank, generate_xmark, DblpConfig, TreebankConfig, XmarkConfig};
use xmldom::{parse, write, Indent};

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/generate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("dblp", |b| {
        b.iter(|| generate_dblp(&DblpConfig::tiny(1)).len())
    });
    group.bench_function("treebank", |b| {
        b.iter(|| generate_treebank(&TreebankConfig::tiny(1)).len())
    });
    group.bench_function("xmark", |b| {
        b.iter(|| generate_xmark(&XmarkConfig::tiny(1)).len())
    });
    group.finish();
}

fn indexing(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let mut group = c.benchmark_group("substrate/index");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("region_index", |b| {
        b.iter(|| ElementIndex::build(&ds.doc).label_count())
    });
    group.bench_function("dewey_index", |b| {
        b.iter(|| DeweyIndex::build(&ds.doc).schema().root_label())
    });
    group.finish();
}

fn parsing(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let xml = write(&ds.doc, Indent::None);
    let mut group = c.benchmark_group("substrate/xml");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.bench_function("parse_dom", |b| b.iter(|| parse(&xml).unwrap().len()));
    group.bench_function("serialize", |b| {
        b.iter(|| write(&ds.doc, Indent::None).len())
    });
    group.finish();
}

criterion_group!(benches, generation, indexing, parsing);
criterion_main!(benches);
