//! Criterion benches for paper Figures 18 and 19: GTP query processing
//! with Twig²Stack — non-return nodes, group returns and optional axes.
//! The baselines are excluded exactly as in the paper (§5.3): they cannot
//! process GTPs without bolting on post-processing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use twigbench::metrics::twig2stack_query_once;
use twigbench::workload::{dblp, fig18_variants, fig19_variants, xmark, Profile};

fn fig18(c: &mut Criterion) {
    let ds = dblp(Profile::Quick);
    let mut group = c.benchmark_group("fig18/dblp_gtp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for nq in fig18_variants() {
        group.bench_function(nq.name, |b| {
            b.iter(|| twig2stack_query_once(&ds, &nq.gtp).1.len())
        });
    }
    group.finish();
}

fn fig19(c: &mut Criterion) {
    let ds = xmark(Profile::Quick, 1);
    let mut group = c.benchmark_group("fig19/xmark_gtp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for nq in fig19_variants() {
        group.bench_function(nq.name, |b| {
            b.iter(|| twig2stack_query_once(&ds, &nq.gtp).1.len())
        });
    }
    group.finish();
}

criterion_group!(benches, fig18, fig19);
criterion_main!(benches);
