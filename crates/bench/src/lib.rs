//! # twigbench — benchmark harness for the Twig²Stack reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! * [`workload`] — the datasets (Figure 14) and queries (Figure 15,
//!   plus the GTP variants of Figures 18–19);
//! * [`metrics`] — per-algorithm timing runners and the real-IO stream
//!   scanner (the paper's query-processing / total-execution split);
//! * [`experiments`] — one driver per figure/table, shared by the
//!   `experiments` binary, the criterion benches, and the tests;
//! * [`sidecar`] — `*.metrics.json` observability sidecars written next
//!   to each figure run (see DESIGN.md §7).
//!
//! Run `cargo run -p twigbench --release --bin experiments -- all` to
//! regenerate the full evaluation.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod sidecar;
pub mod workload;

pub use experiments::{
    fig14, fig15, fig16, fig17, fig18, fig19, figa, fige, figm, figp, figs, figt, figu, figv,
    subscription_queries, table1, Algo, FigARow, FigERow, FigMRow, FigSRow, FigTRow, FigURow,
    FigVRow,
};
pub use metrics::{run_tjfast, run_twig2stack, run_twigstack, QueryCost};
pub use sidecar::{latest_sidecar, run_id, write_sidecar};
pub use workload::{
    catalog_docs, catalog_queries, dblp, dblp_queries, documents, fig18_variants, fig19_variants,
    treebank, treebank_queries, xmark, xmark_queries, Dataset, NamedQuery, Profile,
    CATALOG_FAMILIES,
};
