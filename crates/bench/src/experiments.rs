//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! Every function returns structured rows *and* a rendered text report, so
//! the `experiments` binary, the criterion benches and the integration
//! tests share one implementation. The absolute numbers are machine-local;
//! what reproduces the paper is the *shape* (see EXPERIMENTS.md).

use crate::metrics::{
    human_bytes, ms, render_table, run_tjfast, run_twig2stack, run_twigstack, tjfast_indexed_once,
    twig2stack_indexed_once, twig2stack_query, twigstack_indexed_once, QueryCost,
};
use crate::workload::{
    catalog_docs, catalog_queries, dblp, dblp_queries, documents, fig18_variants, fig19_variants,
    treebank, treebank_queries, xmark, xmark_queries, Dataset, NamedQuery, Profile,
    CATALOG_FAMILIES,
};
use gtpquery::{Gtp, ResultSet};
use std::time::{Duration, Instant};
use twig2stack::{
    evaluate_early, evaluate_indexed, evaluate_parallel, match_document, match_document_parallel,
    parallel_plan, MatchOptions, ParallelPlan,
};
use xmldom::DocStats;
use xmlindex::PruningPolicy;

/// The three compared algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// TwigStack (Bruno et al. 2002).
    TwigStack,
    /// TJFast (Lu et al. 2005).
    TJFast,
    /// Twig²Stack (this paper).
    Twig2Stack,
}

impl Algo {
    /// All three, in the paper's presentation order.
    pub const ALL: [Algo; 3] = [Algo::TwigStack, Algo::TJFast, Algo::Twig2Stack];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::TwigStack => "TwigStack",
            Algo::TJFast => "TJFast",
            Algo::Twig2Stack => "Twig2Stack",
        }
    }

    /// Run the algorithm with IO measurement.
    pub fn run(self, ds: &mut Dataset, gtp: &gtpquery::Gtp) -> QueryCost {
        match self {
            Algo::TwigStack => run_twigstack(ds, gtp),
            Algo::TJFast => run_tjfast(ds, gtp),
            Algo::Twig2Stack => run_twig2stack(ds, gtp),
        }
    }
}

/// Figure 14: dataset statistics.
pub fn fig14(profile: Profile) -> String {
    let mut rows = Vec::new();
    let mut sets: Vec<Dataset> = vec![dblp(profile), treebank(profile)];
    for s in 1..=5 {
        sets.push(xmark(profile, s));
    }
    for ds in &sets {
        let st = DocStats::compute_without_size(&ds.doc);
        rows.push(vec![
            ds.name.clone(),
            format!("{}", st.nodes),
            format!("{}", st.distinct_labels),
            format!("{}/{:.1}", st.max_depth, st.avg_depth),
        ]);
    }
    format!(
        "Figure 14 — dataset statistics\n{}",
        render_table(&["dataset", "nodes", "labels", "max/avg depth"], &rows)
    )
}

/// Figure 15: the query set.
pub fn fig15() -> String {
    let mut rows = Vec::new();
    for nq in dblp_queries()
        .into_iter()
        .chain(xmark_queries())
        .chain(treebank_queries())
    {
        rows.push(vec![nq.name.to_string(), nq.text.to_string()]);
    }
    format!(
        "Figure 15 — twig queries\n{}",
        render_table(&["query", "twig"], &rows)
    )
}

/// One measured cell of Figure 16.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: &'static str,
    /// Algorithm.
    pub algo: Algo,
    /// Measured cost.
    pub cost: QueryCost,
}

/// Figure 16: full twig query processing on DBLP, XMark (s=1), TreeBank —
/// query processing time, total execution time, and IO time per algorithm.
pub fn fig16(profile: Profile) -> (Vec<Fig16Row>, String) {
    let mut out = Vec::new();
    let datasets: Vec<(Dataset, Vec<NamedQuery>)> = vec![
        (dblp(profile), dblp_queries()),
        (xmark(profile, 1), xmark_queries()),
        (treebank(profile), treebank_queries()),
    ];
    for (mut ds, queries) in datasets {
        for nq in &queries {
            for algo in Algo::ALL {
                let cost = algo.run(&mut ds, &nq.gtp);
                out.push(Fig16Row {
                    dataset: ds.name.clone(),
                    query: nq.name,
                    algo,
                    cost,
                });
            }
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.query.to_string(),
                r.algo.name().to_string(),
                ms(r.cost.query),
                ms(r.cost.io),
                ms(r.cost.total()),
                human_bytes(r.cost.io_bytes as usize),
                format!("{}", r.cost.results),
            ]
        })
        .collect();
    let report = format!(
        "Figure 16 — full twig query processing\n{}",
        render_table(
            &[
                "dataset",
                "query",
                "algorithm",
                "query ms",
                "io ms",
                "total ms",
                "io bytes",
                "results"
            ],
            &rows
        )
    );
    (out, report)
}

/// One measured point of Figure 17.
#[derive(Debug, Clone)]
pub struct Fig17Row {
    /// XMark scale factor.
    pub scale: usize,
    /// Query name.
    pub query: &'static str,
    /// Algorithm.
    pub algo: Algo,
    /// Query processing time.
    pub query_time: Duration,
    /// Result tuples.
    pub results: usize,
}

/// Figure 17: scalability over XMark scale factors 1..=5 (query
/// processing time).
///
/// Note: XMark-Q1's *output* is inherently quadratic in the scale factor
/// (bidders × reserves join freely through the single `open_auctions`
/// container), so its curve includes that output cost; Q2/Q3 show the
/// paper's linear shape directly.
pub fn fig17(profile: Profile, scales: &[usize]) -> (Vec<Fig17Row>, String) {
    let mut out = Vec::new();
    for &s in scales {
        let ds = xmark(profile, s);
        for nq in xmark_queries() {
            for algo in Algo::ALL {
                let (t, rs) = match algo {
                    Algo::TwigStack => crate::metrics::twigstack_query(&ds, &nq.gtp),
                    Algo::TJFast => crate::metrics::tjfast_query(&ds, &nq.gtp),
                    Algo::Twig2Stack => twig2stack_query(&ds, &nq.gtp),
                };
                out.push(Fig17Row {
                    scale: s,
                    query: nq.name,
                    algo,
                    query_time: t,
                    results: rs.len(),
                });
            }
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.scale),
                r.query.to_string(),
                r.algo.name().to_string(),
                ms(r.query_time),
                format!("{}", r.results),
            ]
        })
        .collect();
    let mut report = format!(
        "Figure 17 — scalability (XMark, query processing time)\n{}",
        render_table(
            &["scale", "query", "algorithm", "query ms", "results"],
            &rows
        )
    );
    // Companion table: Twig²Stack matching + O(encoding) counting. The
    // output-size blowup of Q1 disappears, leaving the paper's linear
    // scalability shape for all three queries.
    let mut count_rows = Vec::new();
    for &s in scales {
        let ds = xmark(profile, s);
        for nq in xmark_queries() {
            let t0 = std::time::Instant::now();
            let (tm, _) = match_document(&ds.doc, &nq.gtp, MatchOptions::default());
            let n = twig2stack::count_results(&tm);
            count_rows.push(vec![
                format!("{s}"),
                nq.name.to_string(),
                ms(t0.elapsed()),
                format!("{n}"),
            ]);
        }
    }
    report.push_str(&format!(
        "\nFigure 17 companion — Twig2Stack match + count (no tuple materialization)\n{}",
        render_table(&["scale", "query", "ms", "count"], &count_rows)
    ));
    (out, report)
}

/// One measured GTP variant (Figures 18 / 19).
#[derive(Debug, Clone)]
pub struct GtpRow {
    /// Variant name.
    pub variant: &'static str,
    /// Twig²Stack query processing time (matching + enumeration).
    pub query_time: Duration,
    /// Result tuples.
    pub results: usize,
    /// Total element references across all result cells.
    pub element_refs: usize,
}

fn run_gtp_variants(ds: &Dataset, variants: Vec<NamedQuery>) -> Vec<GtpRow> {
    variants
        .into_iter()
        .map(|nq| {
            let (t, rs) = twig2stack_query(ds, &nq.gtp);
            GtpRow {
                variant: nq.name,
                query_time: t,
                results: rs.len(),
                element_refs: rs.element_refs(),
            }
        })
        .collect()
}

fn gtp_report(title: &str, rows: &[GtpRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                ms(r.query_time),
                format!("{}", r.results),
                format!("{}", r.element_refs),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        render_table(&["variant", "query ms", "tuples", "element refs"], &body)
    )
}

/// Figure 18: GTP variants of DBLP-Q1 (Twig²Stack only — the baselines
/// cannot process GTPs, which is the paper's point in §5.3).
pub fn fig18(profile: Profile) -> (Vec<GtpRow>, String) {
    let ds = dblp(profile);
    let rows = run_gtp_variants(&ds, fig18_variants());
    let report = gtp_report("Figure 18 — GTP query processing on DBLP", &rows);
    (rows, report)
}

/// Figure 19: GTP variants of XMark-Q1.
pub fn fig19(profile: Profile) -> (Vec<GtpRow>, String) {
    let ds = xmark(profile, 1);
    let rows = run_gtp_variants(&ds, fig19_variants());
    let report = gtp_report("Figure 19 — GTP query processing on XMark", &rows);
    (rows, report)
}

/// One measured cell of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: &'static str,
    /// Peak bytes, pure bottom-up (no early result enumeration).
    pub peak_without_erm: usize,
    /// Peak bytes with early result enumeration.
    pub peak_with_erm: usize,
    /// Early-enumeration trigger count.
    pub triggers: usize,
    /// Elements whose label matched some query node (pure mode).
    pub elements_considered: usize,
    /// Elements pushed into hierarchical stacks (pure mode).
    pub elements_pushed: usize,
    /// Result edges recorded (pure mode).
    pub edges_created: usize,
    /// Results, counted over the encoding without materializing tuples.
    pub results: u64,
}

/// Table 1: runtime memory usage with and without early result
/// enumeration (ERM), on the Figure 16 workload. XMark runs two scale
/// factors like the paper (1 and 4 here — laptop-scale stand-ins for the
/// paper's 100MB and 1GB documents).
pub fn table1(profile: Profile) -> (Vec<Table1Row>, String) {
    let mut out = Vec::new();
    let mut workloads: Vec<(Dataset, Vec<NamedQuery>)> = vec![
        (dblp(profile), dblp_queries()),
        (treebank(profile), treebank_queries()),
        (xmark(profile, 1), xmark_queries()),
        (xmark(profile, 4), xmark_queries()),
    ];
    for (ds, queries) in &mut workloads {
        for nq in queries {
            let (tm, stats) = match_document(&ds.doc, &nq.gtp, MatchOptions::default());
            let results = twig2stack::count_results(&tm);
            let (erm_peak, triggers) =
                match evaluate_early(&ds.doc, &nq.gtp, MatchOptions::default()) {
                    Ok((_, es)) => (es.peak_bytes, es.triggers),
                    Err(_) => (stats.peak_bytes, 0), // fallback: pure mode
                };
            out.push(Table1Row {
                dataset: ds.name.clone(),
                query: nq.name,
                peak_without_erm: stats.peak_bytes,
                peak_with_erm: erm_peak,
                triggers,
                elements_considered: stats.elements_considered,
                elements_pushed: stats.elements_pushed,
                edges_created: stats.edges_created,
                results,
            });
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.query.to_string(),
                human_bytes(r.peak_without_erm),
                human_bytes(r.peak_with_erm),
                format!("{}", r.triggers),
                format!(
                    "{:.0}x",
                    r.peak_without_erm as f64 / r.peak_with_erm.max(1) as f64
                ),
                format!("{}", r.elements_considered),
                format!("{}", r.elements_pushed),
                format!("{}", r.edges_created),
                format!("{}", r.results),
            ]
        })
        .collect();
    let report = format!(
        "Table 1 — runtime memory usage (peak bytes, -ERM vs +ERM) with match counters\n{}",
        render_table(
            &[
                "dataset",
                "query",
                "-ERM",
                "+ERM",
                "triggers",
                "reduction",
                "considered",
                "pushed",
                "edges",
                "results",
            ],
            &rows
        )
    );
    (out, report)
}

/// One measured point of Figure P.
#[derive(Debug, Clone)]
pub struct FigPRow {
    /// XMark scale factor.
    pub scale: usize,
    /// Requested worker threads (1 = serial fallback, the baseline).
    pub threads: usize,
    /// Chunks the partitioner produced (0 on the serial path).
    pub chunks: usize,
    /// Worker tasks (0 on the serial path).
    pub tasks: usize,
    /// Best-of-3 match + enumerate wall time.
    pub query_time: Duration,
    /// Baseline (threads=1) time divided by this row's time.
    pub speedup: f64,
    /// True concurrent peak bytes across all threads.
    pub peak_bytes: usize,
    /// Result tuples (must match the serial engine).
    pub results: usize,
}

/// Figure P (not in the paper): parallel partitioned evaluation speedup
/// on XMark-Q1 over scale factors and thread counts. The speedup column
/// is relative to the same binary at `threads = 1` (the serial fallback
/// path); its ceiling is the machine's core count, so absolute values are
/// machine-local — the reproducible shape is a monotone curve that
/// saturates near `min(threads, cores, tasks)`.
pub fn figp(profile: Profile, scales: &[usize], threads: &[usize]) -> (Vec<FigPRow>, String) {
    let nq = &xmark_queries()[0]; // XMark-Q1
    let mut out = Vec::new();
    for &s in scales {
        let ds = xmark(profile, s);
        let mut baseline = Duration::ZERO;
        for &t in threads {
            let mut best: Option<Duration> = None;
            let mut results = 0usize;
            for _ in 0..3 {
                let t0 = Instant::now();
                let rs = evaluate_parallel(&ds.doc, &nq.gtp, t);
                let dt = t0.elapsed();
                results = rs.len();
                best = Some(best.map_or(dt, |b| b.min(dt)));
            }
            let query_time = best.expect("3 reps");
            if baseline.is_zero() {
                baseline = query_time;
            }
            let (chunks, tasks) = match parallel_plan(&ds.doc, &nq.gtp, t) {
                ParallelPlan::Partitioned { chunks, tasks, .. } => (chunks, tasks),
                ParallelPlan::Serial(_) => (0, 0),
            };
            let (_, stats) = match_document_parallel(&ds.doc, &nq.gtp, MatchOptions::default(), t);
            out.push(FigPRow {
                scale: s,
                threads: t,
                chunks,
                tasks,
                query_time,
                speedup: baseline.as_secs_f64() / query_time.as_secs_f64().max(1e-9),
                peak_bytes: stats.peak_bytes,
                results,
            });
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.scale),
                format!("{}", r.threads),
                format!("{}/{}", r.chunks, r.tasks),
                ms(r.query_time),
                format!("{:.2}x", r.speedup),
                human_bytes(r.peak_bytes),
                format!("{}", r.results),
            ]
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = format!(
        "Figure P — parallel partitioned evaluation (XMark-Q1, {cores} cores available)\n{}",
        render_table(
            &[
                "scale",
                "threads",
                "chunks/tasks",
                "query ms",
                "speedup",
                "peak bytes",
                "results"
            ],
            &rows
        )
    );
    (out, report)
}

/// One measured cell of Figure S: an algorithm × query pair run through
/// its indexed driver with path-summary pruning on and off.
#[derive(Debug, Clone)]
pub struct FigSRow {
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: &'static str,
    /// Algorithm.
    pub algo: Algo,
    /// Stream elements delivered with pruning off.
    pub scanned_full: u64,
    /// Stream elements delivered with pruning on.
    pub scanned_pruned: u64,
    /// Elements the pruned run filtered or skipped without delivering.
    pub elements_pruned: u64,
    /// `skip_to` jump events in the pruned run.
    pub stream_skips: u64,
    /// Best-of-3 wall time, pruning off.
    pub time_full: Duration,
    /// Best-of-3 wall time, pruning on.
    pub time_pruned: Duration,
    /// Result tuples (identical under both policies, asserted).
    pub results: usize,
}

fn indexed_once(
    ds: &Dataset,
    gtp: &Gtp,
    algo: Algo,
    policy: PruningPolicy,
) -> (Duration, ResultSet) {
    match algo {
        Algo::TwigStack => twigstack_indexed_once(ds, gtp, policy),
        Algo::TJFast => tjfast_indexed_once(ds, gtp, policy),
        Algo::Twig2Stack => twig2stack_indexed_once(ds, gtp, policy),
    }
}

/// Figure S (not in the paper): path-summary pruned streams vs full
/// streams, per Figure 16 query and algorithm. Reports the stream read
/// counters (`elements_scanned` off vs on, plus what pruning filtered and
/// how many `skip_to` jumps fired) and best-of-3 wall time for each
/// policy. Panics if any pruned run's result set differs from the full
/// run's — the pruning soundness contract — so the `figS` smoke stage in
/// `ci.sh` doubles as an end-to-end equivalence check.
///
/// The counters come from the `twigobs` thread-local accumulator: each
/// counted run is bracketed by [`twigobs::take`], and every snapshot is
/// re-absorbed afterwards so the binary's metrics sidecar still sees the
/// run's totals. With the `obs` feature disabled the counter columns read
/// zero; the equivalence assertions still run.
pub fn figs(profile: Profile) -> (Vec<FigSRow>, String) {
    let mut out = Vec::new();
    let xmark_qs = if profile == Profile::Scaled {
        // XMark-Q1's full-twig output is quadratic in scale: every
        // `bidder/personref` pair joins with every `//reserve` under the
        // *single* `open_auctions` container, hundreds of millions of
        // tuples at s=32. The scaled profile anchors the same two
        // branches at the per-record `open_auction` element instead
        // (≤1 reserve, ≤4 bidders each), keeping the query shape and
        // stream labels while the output stays linear.
        let mut qs = xmark_queries();
        let text = "//open_auction[.//bidder/personref]//reserve";
        qs[0] = NamedQuery {
            name: "XMark-Q1s",
            text,
            gtp: gtpquery::parse_twig(text).expect("scaled XMark-Q1 variant parses"),
        };
        qs
    } else {
        xmark_queries()
    };
    let datasets: Vec<(Dataset, Vec<NamedQuery>)> = vec![
        (dblp(profile), dblp_queries()),
        (xmark(profile, 1), xmark_qs),
        (treebank(profile), treebank_queries()),
    ];
    for (ds, queries) in &datasets {
        for nq in queries {
            for algo in Algo::ALL {
                // Counted single runs, one per policy, each isolated by a
                // thread-local drain so the counters attribute exactly.
                let ambient = twigobs::take();
                let (t_on, rs_on) = indexed_once(ds, &nq.gtp, algo, PruningPolicy::Enabled);
                let on = twigobs::take();
                let (t_off, rs_off) = indexed_once(ds, &nq.gtp, algo, PruningPolicy::Disabled);
                let off = twigobs::take();
                twigobs::absorb(&ambient);
                twigobs::absorb(&on);
                twigobs::absorb(&off);
                assert_eq!(
                    rs_on.clone().sorted(),
                    rs_off.sorted(),
                    "pruning changed {} results on {}/{}",
                    algo.name(),
                    ds.name,
                    nq.name
                );
                // Wall clock: fold two more reps per policy into a
                // best-of-3 (counters from these reps are absorbed into
                // the ambient accumulator, not attributed to a policy).
                let mut time_pruned = t_on;
                let mut time_full = t_off;
                for _ in 0..2 {
                    time_pruned =
                        time_pruned.min(indexed_once(ds, &nq.gtp, algo, PruningPolicy::Enabled).0);
                    time_full =
                        time_full.min(indexed_once(ds, &nq.gtp, algo, PruningPolicy::Disabled).0);
                }
                out.push(FigSRow {
                    dataset: ds.name.clone(),
                    query: nq.name,
                    algo,
                    scanned_full: off.get(twigobs::Counter::ElementsScanned),
                    scanned_pruned: on.get(twigobs::Counter::ElementsScanned),
                    elements_pruned: on.get(twigobs::Counter::ElementsPruned),
                    stream_skips: on.get(twigobs::Counter::StreamSkips),
                    time_full,
                    time_pruned,
                    results: rs_on.len(),
                });
            }
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            let reduction = if r.scanned_full > 0 {
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - r.scanned_pruned as f64 / r.scanned_full as f64)
                )
            } else {
                "-".to_string()
            };
            vec![
                r.dataset.clone(),
                r.query.to_string(),
                r.algo.name().to_string(),
                format!("{}", r.scanned_full),
                format!("{}", r.scanned_pruned),
                reduction,
                format!("{}", r.elements_pruned),
                format!("{}", r.stream_skips),
                ms(r.time_full),
                ms(r.time_pruned),
                format!("{}", r.results),
            ]
        })
        .collect();
    let report = format!(
        "Figure S — path-summary pruned streams vs full streams\n{}",
        render_table(
            &[
                "dataset",
                "query",
                "algorithm",
                "scan full",
                "scan pruned",
                "reduction",
                "pruned",
                "skips",
                "full ms",
                "pruned ms",
                "results",
            ],
            &rows
        )
    );
    (out, report)
}

/// One measured cell of Figure T: a dataset served at a concurrency
/// level with the plan cache on or off.
#[derive(Debug, Clone)]
pub struct FigTRow {
    /// Dataset name.
    pub dataset: String,
    /// Client threads hammering the service.
    pub threads: usize,
    /// Whether the plan cache was enabled for this arm.
    pub cache_on: bool,
    /// Total queries executed (threads × rounds).
    pub queries_run: u64,
    /// Wall time for the whole hammering run.
    pub elapsed: Duration,
    /// Sustained throughput, queries per second.
    pub qps: f64,
    /// Plan-cache hits observed by the service.
    pub plan_cache_hits: u64,
    /// Feasibility analyses actually run (the cost the cache amortizes).
    pub analyses_run: u64,
    /// Queries shed by the overload policy (asserted zero: the run is
    /// sized to queue, not shed).
    pub rejected: u64,
}

/// Figure T (not in the paper): query-service throughput vs concurrency,
/// plan cache on vs off. Each cell builds a [`twigserve::QueryService`]
/// over the dataset, then hammers it from `threads` client threads, each
/// running the dataset's three Figure 16 queries round-robin. Every
/// result is asserted byte-identical to serial, uncached evaluation, the
/// overload policy is asserted silent (the wait queue is sized for the
/// offered load), and the cache-on arm is asserted to run *strictly
/// fewer* feasibility analyses than the cache-off arm at the same cell —
/// the plan-cache hit path being cheaper than the miss path, shown by
/// counters rather than by (noisy) wall time alone.
pub fn figt(profile: Profile, threads: &[usize]) -> (Vec<FigTRow>, String) {
    use twigserve::{QueryService, ServiceConfig};

    let rounds = match profile {
        Profile::Quick => 8,
        Profile::Full | Profile::Scaled => 40,
    };
    let mut out: Vec<FigTRow> = Vec::new();
    let sources: Vec<(Dataset, Vec<NamedQuery>)> = vec![
        (dblp(profile), dblp_queries()),
        (xmark(profile, 1), xmark_queries()),
        (treebank(profile), treebank_queries()),
    ];
    for (ds, queries) in &sources {
        // Serial, uncached ground truth for the differential assertion.
        let expected: Vec<ResultSet> = queries
            .iter()
            .map(|nq| twig2stack::evaluate(&ds.doc, &nq.gtp))
            .collect();
        for &t in threads {
            let t = t.max(1);
            let mut analyses_by_arm = [0u64; 2];
            // Cache-off arm first so the strictly-fewer-analyses
            // assertion reads in declaration order.
            for cache_on in [false, true] {
                let config = ServiceConfig {
                    max_concurrency: t,
                    // Size the queue for the whole offered load: Fig T
                    // measures throughput, not shedding.
                    max_waiting: t * rounds * queries.len(),
                    plan_cache_capacity: if cache_on { 64 } else { 0 },
                    ..ServiceConfig::default()
                };
                let svc = QueryService::new(ds.doc.clone(), ds.index.clone(), config);
                let started = Instant::now();
                std::thread::scope(|scope| {
                    for w in 0..t {
                        let svc = &svc;
                        let expected = &expected;
                        scope.spawn(move || {
                            for r in 0..rounds {
                                let i = (w + r) % queries.len();
                                let rs = svc
                                    .execute(queries[i].text)
                                    .expect("figT query must not fail");
                                assert_eq!(
                                    rs, expected[i],
                                    "service result diverged from serial evaluation \
                                     ({} on {})",
                                    queries[i].name, ds.name
                                );
                            }
                        });
                    }
                });
                let elapsed = started.elapsed();
                let stats = svc.stats();
                let queries_run = (t * rounds) as u64;
                assert_eq!(stats.queries_admitted, queries_run);
                assert_eq!(
                    stats.queries_rejected, 0,
                    "the wait queue is sized for the load; nothing sheds"
                );
                if cache_on {
                    assert!(stats.plan_cache_hits >= 1, "repeated queries must hit");
                }
                analyses_by_arm[cache_on as usize] = stats.analyses_run;
                out.push(FigTRow {
                    dataset: ds.name.clone(),
                    threads: t,
                    cache_on,
                    queries_run,
                    elapsed,
                    qps: queries_run as f64 / elapsed.as_secs_f64().max(1e-9),
                    plan_cache_hits: stats.plan_cache_hits,
                    analyses_run: stats.analyses_run,
                    rejected: stats.queries_rejected,
                });
            }
            assert!(
                analyses_by_arm[1] < analyses_by_arm[0],
                "plan-cache hit path must run strictly fewer analyses \
                 ({} cached vs {} uncached on {} at {} threads)",
                analyses_by_arm[1],
                analyses_by_arm[0],
                ds.name,
                t
            );
        }
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.threads),
                if r.cache_on { "on" } else { "off" }.to_string(),
                format!("{}", r.queries_run),
                ms(r.elapsed),
                format!("{:.0}", r.qps),
                format!("{}", r.plan_cache_hits),
                format!("{}", r.analyses_run),
                format!("{}", r.rejected),
            ]
        })
        .collect();
    let report = format!(
        "Figure T — query-service throughput vs concurrency (plan cache on/off)\n{}",
        render_table(
            &[
                "dataset", "threads", "cache", "queries", "elapsed", "qps", "hits", "analyses",
                "rejected",
            ],
            &rows
        )
    );
    (out, report)
}

/// One query row of Figure A: the adaptive planner vs every forced arm.
#[derive(Debug, Clone)]
pub struct FigARow {
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: &'static str,
    /// Engine the adaptive planner chose.
    pub engine: &'static str,
    /// Whether the adaptive planner kept path-summary pruning on.
    pub pruned: bool,
    /// The planner's predicted stream scan (elements).
    pub predicted_scan: u64,
    /// Stream elements actually delivered by the counted adaptive run
    /// (zero when the `obs` feature is off).
    pub actual_scan: u64,
    /// The planner's predicted result rows (lower bound).
    pub predicted_results: u64,
    /// Actual result rows.
    pub results: usize,
    /// Whether the counted run tripped the misprediction alarm.
    pub mispredicted: bool,
    /// Per-execution wall time of the adaptive arm (best-of-3 over an
    /// iteration loop).
    pub time_adaptive: Duration,
    /// Per-execution wall time of each forced arm, in
    /// [`twigserve::PlanEngine::ALL`] order.
    pub time_forced: [Duration; 4],
    /// Name of the fastest forced arm.
    pub best_forced: &'static str,
    /// Its wall time.
    pub time_best_forced: Duration,
}

/// Figure A (not in the paper): cost-based adaptive engine selection vs
/// every forced arm, over the Figure 16 queries. Per query, five
/// [`twigserve::QueryService`]s answer from the same index — one
/// adaptive, four with a forced engine — and the experiment asserts:
///
/// 1. **soundness** — every arm's result rows are byte-identical (after
///    document-order canonicalization);
/// 2. **no regression** — the adaptive arm's per-execution wall time is
///    within 1.1× of the *best* forced arm (plus a small absolute slack
///    absorbing scheduler noise on microsecond-scale queries);
/// 3. **the Fig S misprediction is gone** — on XMark-Q2, the one
///    figure-16 query where pruning *hurts* (the feasibility filters
///    pass ≥ 15/16 of every stream, so the pruned run pays overhead for
///    nothing), the planner turns pruning off.
///
/// The prediction columns put the cost model's estimates next to the
/// counted run's actuals — the same pairing the serve sidecar records as
/// `plan_predicted_scan` vs `elements_scanned`.
pub fn figa(profile: Profile) -> (Vec<FigARow>, String) {
    use twigserve::{PlanEngine, PlannerMode, QueryService, ServiceConfig};

    let iters: u32 = match profile {
        Profile::Quick => 6,
        Profile::Full | Profile::Scaled => 12,
    };
    let xmark_qs = if profile == Profile::Scaled {
        // Same output-size guard as Figure S: anchor XMark-Q1 at the
        // per-record element so the scaled profile's output stays linear.
        let mut qs = xmark_queries();
        let text = "//open_auction[.//bidder/personref]//reserve";
        qs[0] = NamedQuery {
            name: "XMark-Q1s",
            text,
            gtp: gtpquery::parse_twig(text).expect("scaled XMark-Q1 variant parses"),
        };
        qs
    } else {
        xmark_queries()
    };
    let sources: Vec<(Dataset, Vec<NamedQuery>)> = vec![
        (dblp(profile), dblp_queries()),
        (xmark(profile, 1), xmark_qs),
        (treebank(profile), treebank_queries()),
    ];
    let mut out = Vec::new();
    for (ds, queries) in &sources {
        let svc_for = |mode: PlannerMode| {
            QueryService::new(
                ds.doc.clone(),
                ds.index.clone(),
                ServiceConfig {
                    planner: mode,
                    ..ServiceConfig::default()
                },
            )
        };
        let adaptive = svc_for(PlannerMode::Adaptive);
        let forced: Vec<(PlanEngine, QueryService)> = PlanEngine::ALL
            .into_iter()
            .map(|e| (e, svc_for(PlannerMode::Forced(e))))
            .collect();
        for nq in queries {
            // Warm every arm (plans cached before anything is timed) and
            // assert all five result sets agree byte for byte.
            let expected = adaptive
                .execute(nq.text)
                .expect("figA adaptive query must not fail")
                .sorted();
            for (engine, svc) in &forced {
                let rs = svc
                    .execute(nq.text)
                    .expect("figA forced query must not fail")
                    .sorted();
                assert_eq!(
                    rs,
                    expected,
                    "forced {} diverged from adaptive on {}/{}",
                    engine.name(),
                    ds.name,
                    nq.name
                );
            }
            let decision = adaptive.planned(nq.text).expect("plan is cached");
            // One counted adaptive run: actual stream scan next to the
            // prediction, and the misprediction alarm's verdict.
            let before = adaptive.stats().plan_mispredictions;
            let ambient = twigobs::take();
            adaptive.execute(nq.text).expect("counted figA run");
            let counted = twigobs::take();
            twigobs::absorb(&ambient);
            twigobs::absorb(&counted);
            let mispredicted = adaptive.stats().plan_mispredictions > before;
            // Wall time per arm: best-of-3 over an `iters`-iteration
            // loop, amortizing timer and scheduler noise on
            // microsecond-scale queries.
            let time_arm = |svc: &QueryService| -> Duration {
                let mut best = Duration::MAX;
                for _ in 0..3 {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(svc.execute(nq.text).expect("timed figA run"));
                    }
                    best = best.min(t0.elapsed() / iters);
                }
                best
            };
            let time_adaptive = time_arm(&adaptive);
            let mut time_forced = [Duration::ZERO; 4];
            for (slot, (_, svc)) in time_forced.iter_mut().zip(&forced) {
                *slot = time_arm(svc);
            }
            let (best_idx, &time_best_forced) = time_forced
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| **t)
                .expect("four forced arms");
            assert!(
                time_adaptive <= time_best_forced.mul_f64(1.1) + Duration::from_micros(60),
                "adaptive arm regressed past 1.1x the best forced arm on {}/{}: \
                 adaptive {:?} vs best forced {} {:?}",
                ds.name,
                nq.name,
                time_adaptive,
                PlanEngine::ALL[best_idx].name(),
                time_best_forced
            );
            out.push(FigARow {
                dataset: ds.name.clone(),
                query: nq.name,
                engine: decision.engine.name(),
                pruned: decision.policy.is_enabled(),
                predicted_scan: decision.predicted_scan,
                actual_scan: counted.get(twigobs::Counter::ElementsScanned),
                predicted_results: decision.predicted_results,
                results: expected.len(),
                mispredicted,
                time_adaptive,
                time_forced,
                best_forced: PlanEngine::ALL[best_idx].name(),
                time_best_forced,
            });
        }
    }
    // The Fig S pruning-hurts case: the whole point of per-query pruning
    // decisions is that XMark-Q2 stops paying for filters that never
    // prune.
    let q2 = out
        .iter()
        .find(|r| r.query == "XMark-Q2")
        .expect("XMark-Q2 is in the figure-16 set");
    assert!(
        !q2.pruned,
        "the planner must turn pruning off for XMark-Q2 (its feasibility \
         filters pass almost every stream element; see Fig S)"
    );
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.query.to_string(),
                r.engine.to_string(),
                if r.pruned { "on" } else { "off" }.to_string(),
                format!("{}", r.predicted_scan),
                format!("{}", r.actual_scan),
                format!("{}", r.predicted_results),
                format!("{}", r.results),
                if r.mispredicted { "MISS" } else { "ok" }.to_string(),
                ms(r.time_adaptive),
                ms(r.time_best_forced),
                r.best_forced.to_string(),
            ]
        })
        .collect();
    let report = format!(
        "Figure A — adaptive engine selection vs forced arms\n{}",
        render_table(
            &[
                "dataset",
                "query",
                "engine",
                "pruning",
                "pred scan",
                "scan",
                "pred rows",
                "rows",
                "alarm",
                "adaptive",
                "best forced",
                "arm",
            ],
            &rows
        )
    );
    (out, report)
}

/// One dataset row of Figure M: heap index vs mapped (v3) index.
#[derive(Debug, Clone)]
pub struct FigMRow {
    /// Dataset name.
    pub dataset: String,
    /// Document size in nodes.
    pub elements: usize,
    /// Best-of-3 cold start to first answer, heap arm: build the
    /// in-memory index from the parsed document, then run the dataset's
    /// first Figure 15 query to completion.
    pub heap_cold: Duration,
    /// Best-of-3 cold start to first answer, mapped arm: open the v3
    /// file (map + checksum verification), then run the same query.
    pub mapped_cold: Duration,
    /// Heap bytes owned by the in-memory index's posting arrays.
    pub heap_bytes: u64,
    /// Size of the v3 file on disk.
    pub file_bytes: u64,
    /// Bytes of the mapping actually resident after the query workload
    /// (`mincore`; equals `file_bytes` rounded up to pages on platforms
    /// without residency introspection).
    pub resident_bytes: u64,
    /// Elements delivered by pruned streams, whole query set, heap arm.
    pub scanned_heap: u64,
    /// Same counter for the mapped arm (asserted equal to the heap arm).
    pub scanned_mapped: u64,
    /// `skip_to` jump events, whole query set, heap arm.
    pub skips_heap: u64,
    /// Same counter for the mapped arm (asserted equal to the heap arm).
    pub skips_mapped: u64,
    /// Total result tuples over the query set (identical in both arms,
    /// asserted).
    pub results: usize,
}

/// Figure M (not in the paper): zero-copy mapped (v3) index vs heap
/// index. For each Figure 14 dataset the driver measures *cold start to
/// first answer* — the heap arm rebuilds the in-memory index from the
/// document, the mapped arm maps and checksums the pre-serialized v3
/// file, and both then run the dataset's first Figure 15 query — plus
/// memory residency (heap bytes vs file bytes vs `mincore`-resident
/// bytes) and the pruned-stream read counters over the whole query set.
/// Panics if the two arms disagree on any result set or on any stream
/// counter: the mapped index must be observationally identical to the
/// heap index, down to how many elements its streams deliver and skip.
pub fn figm(profile: Profile) -> (Vec<FigMRow>, String) {
    use xmlindex::{ElementIndex, MappedIndex};

    let mut out = Vec::new();
    for (name, doc) in &documents(profile) {
        // Only queries whose output is linear in document size: XMark-Q1
        // pairs every `bidder/personref` with every `//reserve` under the
        // one `open_auctions` element, a product quadratic in scale that
        // would swamp the boot cost being measured here (hundreds of
        // millions of tuples at s=32). All other Figure 15 queries bind
        // their result nodes under a per-record ancestor.
        let queries: Vec<NamedQuery> = match name.as_str() {
            "DBLP" => dblp_queries(),
            "XMark" => xmark_queries().into_iter().skip(1).collect(),
            _ => treebank_queries(),
        };
        let path =
            std::env::temp_dir().join(format!("t2s-figm-{}-{name}.t2sidx", std::process::id()));
        xmlindex::write_mapped_index(doc, &path).expect("serialize v3 index");
        let file_bytes = std::fs::metadata(&path).expect("stat v3 index").len();

        // Cold start to first answer, best of 3 per arm. Each repetition
        // pays the full boot cost again: the heap arm re-derives every
        // posting array from the document, the mapped arm re-maps and
        // re-checksums the file.
        let first = &queries[0].gtp;
        let mut heap_cold = Duration::MAX;
        let mut mapped_cold = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let index = ElementIndex::build(doc);
            std::hint::black_box(evaluate_indexed(doc, &index, first, PruningPolicy::Enabled));
            heap_cold = heap_cold.min(t0.elapsed());

            let t0 = Instant::now();
            let mapped = MappedIndex::open(&path).expect("open v3 index");
            std::hint::black_box(evaluate_indexed(
                doc,
                &mapped,
                first,
                PruningPolicy::Enabled,
            ));
            mapped_cold = mapped_cold.min(t0.elapsed());
        }

        // Counted runs over the whole query set, one snapshot per arm
        // (same take/absorb bracketing as Figure S), with the residency
        // gauges recorded inside each arm's bracket. Each query runs
        // through both the Twig²Stack driver (document-order drain) and
        // the TwigStack driver (skip-join): the latter is what exercises
        // `skip_to` galloping, so its skip counters prove the mapped
        // block-max path jumps exactly like the heap path.
        let run_arm = |run: &dyn Fn(&Gtp, PruningPolicy) -> (ResultSet, ResultSet)| {
            queries
                .iter()
                .map(|nq| run(&nq.gtp, PruningPolicy::Enabled))
                .collect::<Vec<_>>()
        };
        let index = ElementIndex::build(doc);
        let mapped = MappedIndex::open(&path).expect("open v3 index");
        let ambient = twigobs::take();
        let heap_rs = run_arm(&|gtp, policy| {
            let mut stats = twigbaselines::TwigStackStats::default();
            (
                evaluate_indexed(doc, &index, gtp, policy),
                twigbaselines::twig_stack_indexed(&index, doc.labels(), gtp, policy, &mut stats),
            )
        });
        twigobs::gauge(twigobs::Gauge::BytesResident, index.heap_bytes() as u64);
        twigobs::gauge(twigobs::Gauge::IndexBytes, index.heap_bytes() as u64);
        let heap_obs = twigobs::take();
        let mapped_rs = run_arm(&|gtp, policy| {
            let mut stats = twigbaselines::TwigStackStats::default();
            (
                evaluate_indexed(doc, &mapped, gtp, policy),
                twigbaselines::twig_stack_indexed(&mapped, doc.labels(), gtp, policy, &mut stats),
            )
        });
        twigobs::gauge(
            twigobs::Gauge::BytesResident,
            mapped.resident_bytes() as u64,
        );
        twigobs::gauge(twigobs::Gauge::IndexBytes, file_bytes);
        let mapped_obs = twigobs::take();
        twigobs::absorb(&ambient);
        twigobs::absorb(&heap_obs);
        twigobs::absorb(&mapped_obs);

        let mut results = 0usize;
        for (nq, ((h_t2s, h_ts), (m_t2s, m_ts))) in
            queries.iter().zip(heap_rs.into_iter().zip(mapped_rs))
        {
            let h_t2s = h_t2s.sorted();
            results += h_t2s.len();
            assert_eq!(
                h_t2s,
                m_t2s.sorted(),
                "mapped index changed Twig2Stack {} results on {name}",
                nq.name
            );
            assert_eq!(
                h_ts.sorted(),
                m_ts.sorted(),
                "mapped index changed TwigStack {} results on {name}",
                nq.name
            );
        }
        for c in [
            twigobs::Counter::ElementsScanned,
            twigobs::Counter::ElementsPruned,
            twigobs::Counter::StreamSkips,
        ] {
            assert_eq!(
                heap_obs.get(c),
                mapped_obs.get(c),
                "mapped index changed counter {} on {name}",
                c.name()
            );
        }

        out.push(FigMRow {
            dataset: name.clone(),
            elements: doc.len(),
            heap_cold,
            mapped_cold,
            heap_bytes: index.heap_bytes() as u64,
            file_bytes,
            resident_bytes: mapped.resident_bytes() as u64,
            scanned_heap: heap_obs.get(twigobs::Counter::ElementsScanned),
            scanned_mapped: mapped_obs.get(twigobs::Counter::ElementsScanned),
            skips_heap: heap_obs.get(twigobs::Counter::StreamSkips),
            skips_mapped: mapped_obs.get(twigobs::Counter::StreamSkips),
            results,
        });
        std::fs::remove_file(&path).ok();
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            let speedup = if r.mapped_cold.as_nanos() > 0 {
                format!(
                    "{:.1}x",
                    r.heap_cold.as_secs_f64() / r.mapped_cold.as_secs_f64()
                )
            } else {
                "-".to_string()
            };
            vec![
                r.dataset.clone(),
                format!("{}", r.elements),
                ms(r.heap_cold),
                ms(r.mapped_cold),
                speedup,
                human_bytes(r.heap_bytes as usize),
                human_bytes(r.file_bytes as usize),
                human_bytes(r.resident_bytes as usize),
                format!("{}", r.scanned_mapped),
                format!("{}", r.skips_mapped),
                format!("{}", r.results),
            ]
        })
        .collect();
    let report = format!(
        "Figure M — mapped (v3) index vs heap index: cold start and residency\n{}",
        render_table(
            &[
                "dataset",
                "elements",
                "heap cold",
                "mapped cold",
                "speedup",
                "heap bytes",
                "file bytes",
                "resident",
                "scanned",
                "skips",
                "results",
            ],
            &rows
        )
    );
    (out, report)
}

/// One Figure E row (one dataset's edit chain).
pub struct FigERow {
    /// Dataset name.
    pub dataset: String,
    /// Document size in nodes before any edit.
    pub elements: usize,
    /// Edits in the chain.
    pub edits: usize,
    /// Steps the incremental maintenance patched in place (the rest
    /// fell back to a rebuild: the priming renumber, gap exhaustion).
    pub patched: usize,
    /// Total wall-clock of chained [`xmlindex::ElementIndex::apply_edit`]
    /// calls (reported, not asserted — the asserted comparison is the
    /// deterministic reindex-work one).
    pub incr_total: Duration,
    /// Total wall-clock of building a fresh index after every edit.
    pub rebuild_total: Duration,
    /// Elements reindexed by the incremental arm over the whole chain
    /// (`edit_elements_reindexed`; asserted ≤ `reindexed_rebuild`).
    pub reindexed_incr: u64,
    /// Elements a rebuild-per-edit strategy reindexes (Σ post-edit
    /// document sizes).
    pub reindexed_rebuild: u64,
    /// Result rows over the dataset's query set on the final document
    /// (asserted identical between the incremental and rebuilt index,
    /// per query).
    pub results: usize,
    /// Reader rounds completed by the concurrent arm while the same
    /// chain rotated through a [`twigserve::QueryService`].
    pub reader_rounds: u64,
}

/// Edits per dataset in the Figure E chain — enough to cross the
/// priming renumber, repeated same-slot gap consumption, and a delete.
const FIGE_EDITS: usize = 12;

/// The k-th Figure E edit against the document as it stands: a "record
/// churn" workload. The container with the most children (DBLP's root,
/// XMark's `people`, TreeBank's sentence list) takes two record inserts
/// (copies of existing records, so every path is known to the summary)
/// followed by one record delete — small edits against a large
/// document, the case incremental maintenance exists for.
fn fige_op(k: usize, doc: &xmldom::Document) -> xmldom::EditOp {
    let container = doc
        .iter()
        .max_by_key(|&n| doc.children(n).count())
        .expect("figE documents are non-empty");
    let records: Vec<_> = doc.children(container).collect();
    if k % 3 == 2 {
        xmldom::EditOp::DeleteSubtree {
            target: *records.last().expect("container has records"),
        }
    } else {
        xmldom::EditOp::InsertSubtree {
            parent: Some(container),
            position: 0,
            subtree: xmlgen::extract_subtree(doc, records[k % records.len()]),
        }
    }
}

/// Figure E (not in the paper): incremental index maintenance vs
/// rebuild-from-scratch under an edit-heavy workload, per Figure 14
/// dataset.
///
/// For every edit in the chain the driver times the incremental
/// [`apply_edit`](xmlindex::ElementIndex::apply_edit) against a full
/// [`ElementIndex::build`](xmlindex::ElementIndex::build) of the edited
/// document and asserts, on every (dataset, query) cell, that the two
/// indexes produce byte-equal results — wall-clock is reported but the
/// *asserted* cost comparison is the deterministic reindex-work one
/// (`edit_elements_reindexed` ≤ Σ document sizes), which cannot flake
/// on a loaded machine. A concurrent arm replays the same chain through
/// a [`twigserve::QueryService`] under a 4-thread reader hammer and
/// asserts rotation never blocks or sheds an in-flight reader.
pub fn fige(profile: Profile) -> (Vec<FigERow>, String) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use twigserve::{QueryService, ServiceConfig};
    use xmldom::apply_op;
    use xmlindex::{EditApply, ElementIndex};

    let mut out = Vec::new();
    for (name, doc) in &documents(profile) {
        // Same query subset as Figure M: XMark-Q1's product output is
        // quadratic in scale and would swamp the maintenance cost.
        let queries: Vec<NamedQuery> = match name.as_str() {
            "DBLP" => dblp_queries(),
            "XMark" => xmark_queries().into_iter().skip(1).collect(),
            _ => treebank_queries(),
        };

        // Measured arm: chain the edits over one incrementally
        // maintained index; rebuild from scratch after every edit for
        // comparison. Obs brackets follow the Figure M pattern.
        let mut carry = twigobs::take();
        let mut cur = doc.clone();
        let mut incr = ElementIndex::build(&cur);
        carry.merge(&twigobs::take());
        let mut patched = 0usize;
        let mut incr_total = Duration::ZERO;
        let mut rebuild_total = Duration::ZERO;
        let mut reindexed_incr = 0u64;
        let mut reindexed_rebuild = 0u64;
        for k in 0..FIGE_EDITS {
            let op = fige_op(k, &cur);
            let (next, delta) = apply_op(&cur, &op).expect("figE edit applies");
            let t0 = Instant::now();
            let (nidx, how) = incr.apply_edit(&next, &delta);
            incr_total += t0.elapsed();
            let step_obs = twigobs::take();
            let step_work = step_obs.get(twigobs::Counter::EditElementsReindexed);
            carry.merge(&step_obs);
            let t0 = Instant::now();
            let rebuilt = ElementIndex::build(&next);
            rebuild_total += t0.elapsed();
            carry.merge(&twigobs::take());
            reindexed_incr += step_work;
            reindexed_rebuild += next.len() as u64;
            if how == EditApply::Patched {
                patched += 1;
                assert!(
                    step_work <= next.len() as u64,
                    "[figE {name} edit {k}] a patch reindexed more than a full rebuild would"
                );
            }
            // Chain honesty per step, on the dataset's first query.
            assert_eq!(
                evaluate_indexed(&next, &nidx, &queries[0].gtp, PruningPolicy::Enabled),
                evaluate_indexed(&next, &rebuilt, &queries[0].gtp, PruningPolicy::Enabled),
                "[figE {name} edit {k}] incremental index diverged on {}",
                queries[0].name
            );
            incr = nidx;
            cur = next;
        }
        assert!(
            patched >= 1,
            "[figE {name}] no edit took the incremental patch path"
        );
        assert!(
            reindexed_incr <= reindexed_rebuild,
            "[figE {name}] incremental maintenance did more total reindex work \
             ({reindexed_incr}) than rebuilding after every edit ({reindexed_rebuild})"
        );

        // Every (dataset, query) cell on the final document.
        let rebuilt = ElementIndex::build(&cur);
        let mut results = 0usize;
        for nq in &queries {
            let a = evaluate_indexed(&cur, &incr, &nq.gtp, PruningPolicy::Enabled);
            let b = evaluate_indexed(&cur, &rebuilt, &nq.gtp, PruningPolicy::Enabled);
            assert_eq!(
                a, b,
                "[figE {name}] incremental vs rebuilt results differ on {}",
                nq.name
            );
            results += a.len();
        }
        carry.merge(&twigobs::take());

        // Liveness arm: the same chain through a QueryService while four
        // reader threads hammer the query set. Readers always finish the
        // round they are in, so every request overlapping a rotation
        // must complete — never block on the writer, never be shed.
        let svc = QueryService::new(
            doc.clone(),
            ElementIndex::build(doc),
            ServiceConfig {
                max_concurrency: 4,
                max_waiting: 64,
                ..ServiceConfig::default()
            },
        );
        let done = AtomicBool::new(false);
        let mut reader_rounds = 0u64;
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let svc = &svc;
                let done = &done;
                let queries = &queries;
                readers.push(scope.spawn(move || {
                    let mut rounds = 0u64;
                    loop {
                        let finishing = done.load(Ordering::Acquire);
                        for nq in queries {
                            svc.execute(nq.text).unwrap_or_else(|e| {
                                panic!("[figE reader] {} failed mid-rotation: {e}", nq.name)
                            });
                        }
                        rounds += 1;
                        if finishing {
                            return rounds;
                        }
                    }
                }));
            }
            for k in 0..FIGE_EDITS {
                let snap = svc.snapshot();
                let op = fige_op(k, snap.doc());
                svc.apply_edit(&op).expect("figE service edit applies");
            }
            done.store(true, Ordering::Release);
            reader_rounds = readers
                .into_iter()
                .map(|h| h.join().expect("reader thread"))
                .sum();
        });
        let stats = svc.stats();
        assert_eq!(stats.snapshot_rotations, FIGE_EDITS as u64);
        assert_eq!(
            stats.queries_rejected, 0,
            "[figE {name}] rotation shed a reader"
        );
        assert!(reader_rounds > 0, "[figE {name}] readers made no progress");
        carry.merge(&twigobs::take());
        twigobs::absorb(&carry);

        out.push(FigERow {
            dataset: name.clone(),
            elements: doc.len(),
            edits: FIGE_EDITS,
            patched,
            incr_total,
            rebuild_total,
            reindexed_incr,
            reindexed_rebuild,
            results,
            reader_rounds,
        });
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            let speedup = if r.incr_total.as_nanos() > 0 {
                format!(
                    "{:.1}x",
                    r.rebuild_total.as_secs_f64() / r.incr_total.as_secs_f64()
                )
            } else {
                "-".to_string()
            };
            vec![
                r.dataset.clone(),
                format!("{}", r.elements),
                format!("{}", r.edits),
                format!("{}", r.patched),
                ms(r.incr_total),
                ms(r.rebuild_total),
                speedup,
                format!("{}", r.reindexed_incr),
                format!("{}", r.reindexed_rebuild),
                format!("{}", r.results),
                format!("{}", r.reader_rounds),
            ]
        })
        .collect();
    let report = format!(
        "Figure E — incremental index maintenance vs rebuild-from-scratch under edits\n{}",
        render_table(
            &[
                "dataset",
                "elements",
                "edits",
                "patched",
                "incr total",
                "rebuild total",
                "speedup",
                "reindexed incr",
                "reindexed rebuild",
                "results",
                "reader rounds",
            ],
            &rows
        )
    );
    (out, report)
}

/// One measured arm of Figure U.
#[derive(Debug, Clone)]
pub struct FigURow {
    /// Arm name ("serial", "1 shard", …, "4 shards + deadlines").
    pub arm: String,
    /// Shard workers (0 on the serial arm).
    pub shards: usize,
    /// Requests issued by the arm.
    pub queries_run: u64,
    /// Wall time for the whole traffic run.
    pub elapsed: Duration,
    /// Sustained throughput, requests per second.
    pub qps: f64,
    /// Throughput relative to the serial arm.
    pub speedup: f64,
    /// (query, document) pairs the router sent to shards.
    pub docs_routed: u64,
    /// (query, document) pairs the router proved irrelevant.
    pub docs_skipped: u64,
    /// `docs_skipped / (docs_routed + docs_skipped)` (0 on the serial
    /// arm, which never routes).
    pub skip_rate: f64,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency — the tail the deadline arm caps.
    pub p99: Duration,
    /// Requests cut by their deadline (deadline arm only).
    pub deadline_misses: u64,
}

/// Sorted-latency percentile (nearest-rank).
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Figure U (not in the paper): the sharded multi-document catalog under
/// mixed query traffic — the repo's first tail-latency experiment.
///
/// The catalog holds [`catalog_docs`] (10,000 documents at full scale,
/// 240 at quick) drawn from [`CATALOG_FAMILIES`] label-disjoint schema
/// families; the traffic is [`catalog_queries`] round-robin. The driver
/// asserts, before timing anything:
///
/// 1. **merge contract** — scatter-gather over 4 shards returns results
///    byte-equal to serial iteration over all documents, per query;
/// 2. **zero routing false negatives** — every document with a hit was
///    routed;
/// 3. **routing selectivity** — the Bloom router skips documents (the
///    families are label-disjoint, so it must), reported as skip-rate;
/// 4. **once-per-schema planning** — the schema-plan count stays a small
///    constant while routed (query, document) pairs grow with the
///    catalog.
///
/// Then the throughput grid runs the same traffic serially (the full
/// per-document pipeline on every document, no routing) and at 1/2/4
/// shard workers, asserting **≥ 2× throughput at 4 workers vs serial**
/// — on a single-core machine that margin comes from routing skips,
/// shared schema plans, and unsatisfiability short-circuits, not thread
/// parallelism. A final arm replays the 4-worker traffic under a cycling
/// per-request deadline distribution (expired-on-arrival / 1ms / 5ms /
/// ∞) and reports p50/p99 latency with the deadline-missed count —
/// deadline-cut requests fail with `DeadlineExceeded`, they are never
/// silently truncated.
pub fn figu(profile: Profile) -> (Vec<FigURow>, String) {
    use gtpquery::{CancelToken, QueryError};
    use twigserve::{CatalogConfig, CatalogService, ServeError};

    let docs = catalog_docs(profile);
    let queries = catalog_queries();
    let rounds = match profile {
        Profile::Quick => 8,
        Profile::Full | Profile::Scaled => 2,
    };
    let build = |shards: usize| {
        CatalogService::build_heap(
            docs.clone(),
            CatalogConfig {
                shards,
                workers: shards,
                ..CatalogConfig::default()
            },
        )
    };

    // Correctness pass (untimed): merge contract, routing guarantee,
    // selectivity, and schema-plan amortization on a 4-shard catalog.
    let cat = build(4);
    for nq in &queries {
        let serial = cat.execute_serial(nq.text).expect("figU serial oracle");
        let scattered = cat.execute(nq.text).expect("figU scatter-gather");
        assert_eq!(
            scattered, serial,
            "scatter-gather broke the serial merge contract on {}",
            nq.name
        );
        let routed = cat.routed_docs(nq.text).expect("figU routing");
        for hit in &serial {
            assert!(
                routed.contains(&hit.doc),
                "routing false negative: doc {} matches {} but was not routed",
                hit.doc,
                nq.name
            );
        }
    }
    let s = cat.stats();
    assert!(
        s.docs_skipped > s.docs_routed,
        "label-disjoint families must make the router skip most of the catalog \
         (routed {}, skipped {})",
        s.docs_routed,
        s.docs_skipped
    );
    assert!(
        s.schema_plans <= (queries.len() * CATALOG_FAMILIES) as u64,
        "schema plans must stay bounded by queries × families, got {}",
        s.schema_plans
    );
    assert!(
        s.schema_plans < s.docs_routed,
        "once-per-schema planning must amortize across routed documents"
    );

    let mut out: Vec<FigURow> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn push_arm(
        out: &mut Vec<FigURow>,
        arm: String,
        shards: usize,
        elapsed: Duration,
        lat: &mut [Duration],
        routed: u64,
        skipped: u64,
        misses: u64,
        serial_qps: f64,
    ) {
        lat.sort();
        let queries_run = lat.len() as u64;
        let qps = queries_run as f64 / elapsed.as_secs_f64().max(1e-9);
        out.push(FigURow {
            arm,
            shards,
            queries_run,
            elapsed,
            qps,
            speedup: if serial_qps > 0.0 {
                qps / serial_qps
            } else {
                1.0
            },
            docs_routed: routed,
            docs_skipped: skipped,
            skip_rate: skipped as f64 / ((routed + skipped) as f64).max(1.0),
            p50: percentile(lat, 50),
            p99: percentile(lat, 99),
            deadline_misses: misses,
        });
    }

    // Serial baseline: the full per-document pipeline over every
    // document on every request — what serving N documents costs
    // without the catalog's routing and schema reuse.
    let serial_cat = build(1);
    let mut lat = Vec::new();
    let t0 = Instant::now();
    for r in 0..rounds {
        for nq in &queries {
            let _ = r;
            let q0 = Instant::now();
            std::hint::black_box(
                serial_cat
                    .execute_serial(nq.text)
                    .expect("figU serial request"),
            );
            lat.push(q0.elapsed());
        }
    }
    let serial_elapsed = t0.elapsed();
    let serial_qps = lat.len() as f64 / serial_elapsed.as_secs_f64().max(1e-9);
    push_arm(
        &mut out,
        "serial".into(),
        0,
        serial_elapsed,
        &mut lat,
        0,
        0,
        0,
        serial_qps,
    );

    // The shard-count grid under the same traffic.
    for shards in [1usize, 2, 4] {
        let cat = build(shards);
        let mut lat = Vec::new();
        let t0 = Instant::now();
        for _ in 0..rounds {
            for nq in &queries {
                let q0 = Instant::now();
                std::hint::black_box(cat.execute(nq.text).expect("figU grid request"));
                lat.push(q0.elapsed());
            }
        }
        let elapsed = t0.elapsed();
        let s = cat.stats();
        push_arm(
            &mut out,
            format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
            shards,
            elapsed,
            &mut lat,
            s.docs_routed,
            s.docs_skipped,
            0,
            serial_qps,
        );
    }
    let four = out.last().expect("4-shard arm just pushed");
    assert!(
        four.qps >= 2.0 * serial_qps,
        "4 shard workers must sustain >= 2x serial throughput \
         ({:.0} qps vs {:.0} qps serial)",
        four.qps,
        serial_qps
    );

    // Tail-latency arm: same traffic, per-request deadlines cycling
    // through a budget distribution. Misses must surface as
    // DeadlineExceeded — a cut scatter is an error, not a short answer.
    let budgets = [
        Some(Duration::ZERO),
        Some(Duration::from_millis(1)),
        Some(Duration::from_millis(5)),
        None,
    ];
    let cat = build(4);
    let mut lat = Vec::new();
    let mut misses = 0u64;
    let t0 = Instant::now();
    for round in 0..rounds {
        for (qi, nq) in queries.iter().enumerate() {
            let token = match budgets[(round * queries.len() + qi) % budgets.len()] {
                Some(budget) => CancelToken::with_deadline(budget),
                None => CancelToken::never(),
            };
            let q0 = Instant::now();
            match cat.execute_with(nq.text, token) {
                Ok(hits) => {
                    std::hint::black_box(hits);
                }
                Err(ServeError::Query(QueryError::DeadlineExceeded)) => misses += 1,
                Err(e) => panic!("figU deadline arm failed on {}: {e}", nq.name),
            }
            lat.push(q0.elapsed());
        }
    }
    let elapsed = t0.elapsed();
    let s = cat.stats();
    push_arm(
        &mut out,
        "4 shards + deadlines".into(),
        4,
        elapsed,
        &mut lat,
        s.docs_routed,
        s.docs_skipped,
        misses,
        serial_qps,
    );

    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                r.arm.clone(),
                format!("{}", r.queries_run),
                ms(r.elapsed),
                format!("{:.0}", r.qps),
                format!("{:.1}x", r.speedup),
                format!("{}", r.docs_routed),
                format!("{}", r.docs_skipped),
                format!("{:.0}%", 100.0 * r.skip_rate),
                ms(r.p50),
                ms(r.p99),
                format!("{}", r.deadline_misses),
            ]
        })
        .collect();
    let report = format!(
        "Figure U — sharded catalog scatter-gather: throughput and tail latency \
         ({} documents, {} families)\n{}",
        docs.len(),
        CATALOG_FAMILIES,
        render_table(
            &[
                "arm",
                "requests",
                "elapsed",
                "qps",
                "speedup",
                "routed",
                "skipped",
                "skip rate",
                "p50",
                "p99",
                "deadline misses",
            ],
            &rows
        )
    );
    (out, report)
}

/// One subscription-count arm of Figure V.
#[derive(Debug, Clone)]
pub struct FigVRow {
    /// Registered subscriptions driven by the shared automaton.
    pub subscriptions: usize,
    /// NFA states in the shared automaton (prefix merging keeps this
    /// well under total query size).
    pub states: usize,
    /// Element events in the stream (one per element close).
    pub events: u64,
    /// Wall time for one shared-automaton pass over the stream.
    pub shared_elapsed: Duration,
    /// Events per second through the shared automaton.
    pub shared_eps: f64,
    /// Wall time to run every subscription solo through
    /// `evaluate_streaming` (the no-sharing baseline).
    pub solo_elapsed: Duration,
    /// `solo_elapsed / shared_elapsed` — the amortization win.
    pub speedup: f64,
    /// Per-subscription matcher feeds the NFA let through.
    pub matcher_feeds: u64,
    /// `matcher_feeds / (events × subscriptions)` — the fraction of the
    /// naive per-query work the relevance filter actually performs.
    pub feed_fraction: f64,
}

/// Deterministic value-pred-free subscription workload over the random
/// tree's `a..l` alphabet: child/descendant steps, predicates,
/// wildcards, OR-groups, optional edges — every GTP feature the
/// subscription engine resolves at accepting states (value predicates
/// excluded: the structure-only stream cannot evaluate them).
pub fn subscription_queries(count: usize) -> Vec<String> {
    const LABELS: [&str; 12] = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"];
    (0..count)
        .map(|i| {
            let a = LABELS[i % 12];
            let b = LABELS[(i / 12 + i + 1) % 12];
            let c = LABELS[(i / 7 + 2 * i + 3) % 12];
            match i % 6 {
                0 => format!("//{a}/{b}"),
                1 => format!("//{a}//{b}"),
                2 => format!("//{a}[{b}]/{c}"),
                3 => format!("//{a}/*/{b}"),
                4 => format!("//{a}[{b}! or {c}!]"),
                _ => format!("//{a}[?{b}]//{c}"),
            }
        })
        .collect()
}

/// Figure V (not in the paper): continuous multi-query subscriptions —
/// per-event cost vs registered-subscription count (DESIGN.md §17).
///
/// N standing GTPs are registered into one shared prefix-merged
/// automaton (`twig2stack::subscribe`) and driven over a single XML
/// event stream; the baseline runs each subscription solo through
/// `evaluate_streaming`, re-scanning the stream per query. Before any
/// timing, the driver asserts **byte-equality**: every subscription's
/// match set from the shared pass equals its solo run's. The grid then
/// pins the two scaling claims:
///
/// 1. **amortization** — at 100 subscriptions the shared automaton
///    sustains ≥ 4× the throughput of solo-per-query evaluation;
/// 2. **sublinear per-event cost** — going 1 → 100 subscriptions grows
///    the shared pass < 50× (the NFA fires only transitions whose
///    prefixes are live, and prefix merging shares them), with the
///    structural `feed fraction` column showing how few of the naive
///    `events × N` matcher feeds survive the relevance filter.
pub fn figv(profile: Profile) -> (Vec<FigVRow>, String) {
    use std::collections::HashMap;
    use twig2stack::{run_subscriptions, SharedAutomaton};
    use xmlgen::{generate_random_tree, RandomTreeConfig};

    let nodes = match profile {
        Profile::Quick => 2_000,
        Profile::Full | Profile::Scaled => 20_000,
    };
    let reps = match profile {
        Profile::Quick => 3,
        Profile::Full | Profile::Scaled => 5,
    };
    let doc = generate_random_tree(&RandomTreeConfig {
        nodes,
        alphabet: 12,
        max_depth: 10,
        depth_bias: 50,
        seed: 0xF165,
        text_vocab: 0,
    });
    let xml = xmldom::write(&doc, xmldom::Indent::None);
    let queries = subscription_queries(100);
    let gtps: Vec<Gtp> = queries
        .iter()
        .map(|q| gtpquery::parse_twig(q).expect("figV query parses"))
        .collect();
    let options = MatchOptions::default();

    // Solo oracle per distinct query text, shared across arms.
    let mut solo_cache: HashMap<&str, ResultSet> = HashMap::new();

    let mut out = Vec::new();
    for &k in &[1usize, 10, 50, 100] {
        let auto = SharedAutomaton::build(gtps[..k].to_vec());

        // Byte-equality first, untimed: every subscription's matches
        // from the shared pass equal its solo `evaluate_streaming` run.
        let (results, stats) = run_subscriptions(&xml, &auto, options).expect("figV shared pass");
        for (i, rs) in results.iter().enumerate() {
            let solo = solo_cache.entry(queries[i].as_str()).or_insert_with(|| {
                twig2stack::evaluate_streaming(&xml, &gtps[i], options)
                    .expect("figV solo oracle")
                    .0
            });
            assert_eq!(
                rs, solo,
                "subscription {i} ({}) diverged from its solo run at K={k}",
                queries[i]
            );
        }

        // Timed arms, best-of-`reps` each.
        let mut shared_elapsed = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(run_subscriptions(&xml, &auto, options).expect("figV shared arm"));
            shared_elapsed = shared_elapsed.min(t0.elapsed());
        }
        let mut solo_elapsed = Duration::MAX;
        for _ in 0..reps {
            let t0 = Instant::now();
            for gtp in &gtps[..k] {
                std::hint::black_box(
                    twig2stack::evaluate_streaming(&xml, gtp, options).expect("figV solo arm"),
                );
            }
            solo_elapsed = solo_elapsed.min(t0.elapsed());
        }

        let events = stats.elements;
        out.push(FigVRow {
            subscriptions: k,
            states: auto.state_count(),
            events,
            shared_elapsed,
            shared_eps: events as f64 / shared_elapsed.as_secs_f64().max(1e-9),
            solo_elapsed,
            speedup: solo_elapsed.as_secs_f64() / shared_elapsed.as_secs_f64().max(1e-9),
            matcher_feeds: stats.matcher_feeds,
            feed_fraction: stats.matcher_feeds as f64 / (events * k as u64) as f64,
        });
    }

    let one = &out[0];
    let hundred = out.last().expect("K=100 arm");
    assert!(
        hundred.speedup >= 4.0,
        "the shared automaton must sustain >= 4x solo-per-query throughput at \
         100 subscriptions, got {:.1}x",
        hundred.speedup
    );
    assert!(
        hundred.shared_elapsed < one.shared_elapsed * 50,
        "per-event cost must grow sublinearly in subscriptions: 1 -> 100 subs \
         grew the shared pass {:?} -> {:?}",
        one.shared_elapsed,
        hundred.shared_elapsed
    );
    assert!(
        hundred.feed_fraction < 1.0,
        "the relevance filter must feed fewer than events x subscriptions \
         matcher closes, got fraction {:.2}",
        hundred.feed_fraction
    );

    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.subscriptions),
                format!("{}", r.states),
                format!("{}", r.events),
                ms(r.shared_elapsed),
                format!("{:.0}", r.shared_eps),
                ms(r.solo_elapsed),
                format!("{:.1}x", r.speedup),
                format!("{}", r.matcher_feeds),
                format!("{:.1}%", 100.0 * r.feed_fraction),
            ]
        })
        .collect();
    let report = format!(
        "Figure V — continuous subscriptions: shared automaton vs solo-per-query \
         streaming ({} element stream, best of {reps})\n{}",
        doc.len(),
        render_table(
            &[
                "subs",
                "nfa states",
                "events",
                "shared",
                "events/s",
                "solo",
                "speedup",
                "feeds",
                "feed fraction",
            ],
            &rows
        )
    );
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_shape_holds_at_quick_scale() {
        let (rows, report) = fig16(Profile::Quick);
        assert_eq!(rows.len(), 27);
        assert!(report.contains("DBLP-Q1"));
        // All algorithms agree on result counts per (dataset, query).
        for chunk in rows.chunks(3) {
            assert_eq!(chunk[0].cost.results, chunk[1].cost.results);
            assert_eq!(chunk[0].cost.results, chunk[2].cost.results);
        }
        // TJFast scans fewer or equal elements than region algorithms on
        // queries with non-leaf nodes — proxy: its bytes differ.
        assert!(rows.iter().all(|r| r.cost.io_bytes > 0));
    }

    #[test]
    fn fig17_runs_at_two_scales() {
        let (rows, _) = fig17(Profile::Quick, &[1, 2]);
        assert_eq!(rows.len(), 2 * 3 * 3);
        // Result counts grow with scale for every query.
        for q in ["XMark-Q1", "XMark-Q2", "XMark-Q3"] {
            let s1: usize = rows
                .iter()
                .find(|r| r.scale == 1 && r.query == q)
                .unwrap()
                .results;
            let s2: usize = rows
                .iter()
                .find(|r| r.scale == 2 && r.query == q)
                .unwrap()
                .results;
            assert!(s2 > s1, "{q}: {s2} !> {s1}");
        }
    }

    #[test]
    fn fig18_variants_shrink_work() {
        let (rows, _) = fig18(Profile::Quick);
        assert_eq!(rows.len(), 4);
        // (b) returns as many tuples as (a); (d) groups them into fewer.
        assert_eq!(rows[0].results, rows[1].results);
        assert!(
            rows[3].results < rows[1].results,
            "grouping must shrink tuples"
        );
        // (c) title-only rows: one per inproceedings with authors.
        assert!(rows[2].results <= rows[0].results);
    }

    #[test]
    fn fig19_optional_axes_add_matches() {
        let (rows, _) = fig19(Profile::Quick);
        assert_eq!(rows.len(), 5);
        let full = rows[0].results;
        let opt_addr = rows[3].results;
        let opt_both = rows[4].results;
        assert!(opt_addr >= full, "optional axis cannot lose matches");
        assert!(opt_both >= opt_addr);
        assert!(rows[2].results <= rows[1].results);
    }

    #[test]
    fn figp_parallel_agrees_with_serial() {
        use crate::metrics::twig2stack_query_once;
        let (rows, report) = figp(Profile::Quick, &[1, 2], &[1, 2, 4]);
        assert_eq!(rows.len(), 6);
        assert!(report.contains("Figure P"));
        for r in &rows {
            // Every thread count returns exactly the serial result count.
            let ds = xmark(Profile::Quick, r.scale);
            let (_, rs) = twig2stack_query_once(&ds, &xmark_queries()[0].gtp);
            assert_eq!(r.results, rs.len(), "s={} t={}", r.scale, r.threads);
            assert!(r.peak_bytes > 0);
        }
        // Multi-threaded rows actually partition (XMark refines below the
        // single heavy `site` child).
        assert!(
            rows.iter().filter(|r| r.threads > 1).all(|r| r.chunks >= 2),
            "expected partitioned plans"
        );
        // No speedup assertion: CI machines may expose a single core; the
        // curve itself is the deliverable (see EXPERIMENTS.md, figP).
    }

    #[test]
    fn figs_pruning_equivalence_and_scan_reduction() {
        let (rows, report) = figs(Profile::Quick);
        assert_eq!(rows.len(), 27);
        assert!(report.contains("Figure S"));
        // figs() itself asserts pruned == full per cell; here check the
        // three algorithms also agree with each other per (dataset, query).
        for chunk in rows.chunks(3) {
            assert_eq!(chunk[0].results, chunk[1].results, "{}", chunk[0].query);
            assert_eq!(chunk[0].results, chunk[2].results, "{}", chunk[0].query);
        }
        if twigobs::ENABLED {
            // Pruning never delivers more than the full scan.
            for r in &rows {
                assert!(
                    r.scanned_pruned <= r.scanned_full,
                    "{}/{}/{}: pruned {} > full {}",
                    r.dataset,
                    r.query,
                    r.algo.name(),
                    r.scanned_pruned,
                    r.scanned_full
                );
            }
            // The headline claim: Twig²Stack reads strictly fewer stream
            // elements on most of the Figure 16 workload.
            let t2s: Vec<_> = rows.iter().filter(|r| r.algo == Algo::Twig2Stack).collect();
            assert_eq!(t2s.len(), 9);
            let reduced = t2s
                .iter()
                .filter(|r| r.scanned_pruned < r.scanned_full)
                .count();
            assert!(
                reduced >= 6,
                "scan reduction on only {reduced}/9 figure-16 queries"
            );
        }
    }

    #[test]
    fn fige_incremental_maintenance_matches_rebuild() {
        // fige() itself asserts per-cell result equality, the
        // reindex-work bound, and reader liveness; here check the row
        // shape and that the chain actually exercised both paths.
        let (rows, report) = fige(Profile::Quick);
        assert_eq!(rows.len(), 3);
        assert!(report.contains("Figure E"));
        for r in &rows {
            assert_eq!(r.edits, FIGE_EDITS, "{}", r.dataset);
            assert!(r.patched >= 1, "{}: nothing patched", r.dataset);
            assert!(
                r.patched < r.edits,
                "{}: the priming renumber must rebuild",
                r.dataset
            );
            assert!(r.reindexed_incr <= r.reindexed_rebuild, "{}", r.dataset);
            assert!(r.reader_rounds > 0, "{}", r.dataset);
        }
    }

    #[test]
    fn figm_mapped_arm_is_observationally_identical() {
        // figm() itself asserts result sets and stream counters match
        // between the heap and mapped arms; here check the row shape and
        // the residency accounting.
        let (rows, report) = figm(Profile::Quick);
        assert_eq!(rows.len(), 3);
        assert!(report.contains("Figure M"));
        for r in &rows {
            assert!(r.elements > 0, "{}: empty document", r.dataset);
            assert!(r.file_bytes > 0, "{}: empty v3 file", r.dataset);
            assert!(r.resident_bytes > 0, "{}: nothing resident", r.dataset);
            assert_eq!(r.scanned_heap, r.scanned_mapped, "{}", r.dataset);
            assert_eq!(r.skips_heap, r.skips_mapped, "{}", r.dataset);
            // TreeBank's quick-profile queries are too selective to
            // guarantee matches; the other two workloads always produce.
            if r.dataset != "TreeBank" {
                assert!(
                    r.results > 0,
                    "{}: no results over the query set",
                    r.dataset
                );
            }
        }
    }

    #[test]
    fn figt_service_throughput_holds_at_quick_scale() {
        // figt() itself asserts the differential (service == serial),
        // zero rejections, ≥1 cache hit, and strictly fewer analyses on
        // the cached arm; this pins the row shape on top.
        let (rows, report) = figt(Profile::Quick, &[2]);
        assert_eq!(rows.len(), 3 * 2, "3 datasets × {{off, on}}");
        assert!(report.contains("Figure T"));
        for pair in rows.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.cache_on && on.cache_on);
            assert_eq!(off.queries_run, on.queries_run);
            assert_eq!(off.plan_cache_hits, 0, "disabled cache cannot hit");
            assert!(on.analyses_run < off.analyses_run);
            assert_eq!(off.rejected + on.rejected, 0);
        }
    }

    #[test]
    fn figu_catalog_contracts_hold_at_quick_scale() {
        // figu() itself asserts the merge contract, zero routing false
        // negatives, routing selectivity, schema-plan amortization, and
        // the ≥2× four-worker throughput margin; this pins the row
        // shape on top.
        let (rows, report) = figu(Profile::Quick);
        assert_eq!(rows.len(), 5, "serial + 3 grid arms + deadline arm");
        assert!(report.contains("Figure U"));
        let serial = &rows[0];
        assert_eq!(
            (serial.shards, serial.docs_routed, serial.docs_skipped),
            (0, 0, 0)
        );
        assert!((serial.speedup - 1.0).abs() < 1e-9);
        for r in &rows[1..] {
            assert_eq!(r.queries_run, serial.queries_run);
            assert!(
                r.docs_skipped > r.docs_routed,
                "{}: router must skip most docs",
                r.arm
            );
            assert!(r.p99 >= r.p50, "{}: percentiles out of order", r.arm);
        }
        let four = &rows[3];
        assert!(four.speedup >= 2.0, "4 workers at {:.1}x", four.speedup);
        // The deadline arm runs the same traffic; the expired-on-arrival
        // budget must cut every scatter that routes any work.
        let dl = &rows[4];
        assert!(
            dl.deadline_misses > 0,
            "expired budgets must cut some scatters"
        );
        assert!(
            dl.deadline_misses < dl.queries_run,
            "∞ budgets must all land"
        );
    }

    #[test]
    fn table1_counter_columns_are_populated() {
        let (rows, report) = table1(Profile::Quick);
        for h in ["considered", "pushed", "edges", "results"] {
            assert!(report.contains(h), "missing column {h}");
        }
        for r in &rows {
            assert!(r.elements_considered > 0, "{}/{}", r.dataset, r.query);
            if r.results > 0 {
                assert!(r.elements_pushed > 0, "{}/{}", r.dataset, r.query);
            }
        }
    }

    #[test]
    fn table1_erm_reduces_memory_for_dblp() {
        let (rows, report) = table1(Profile::Quick);
        assert!(report.contains("DBLP"));
        for r in rows.iter().filter(|r| r.dataset == "DBLP") {
            assert!(
                r.peak_with_erm < r.peak_without_erm,
                "{}/{}: ERM {} !< pure {}",
                r.dataset,
                r.query,
                r.peak_with_erm,
                r.peak_without_erm
            );
            assert!(r.triggers > 1);
        }
        // XMark-Q1: single open_auctions container defeats ERM (few
        // triggers), Q2/Q3 trigger per person/item.
        let q1 = rows
            .iter()
            .find(|r| r.dataset == "XMark(s=1)" && r.query == "XMark-Q1")
            .unwrap();
        let q2 = rows
            .iter()
            .find(|r| r.dataset == "XMark(s=1)" && r.query == "XMark-Q2")
            .unwrap();
        assert!(q2.triggers > q1.triggers * 2);
    }
}
