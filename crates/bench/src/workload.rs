//! Datasets and queries of the paper's evaluation (§5.1, Figures 14–15).
//!
//! Each [`Dataset`] bundles a generated document with every access path the
//! three algorithms need: the in-memory region-encoded element index, the
//! extended-Dewey index (TJFast), and — lazily, on request — serialized
//! on-disk index files for real IO-time measurements.

use gtpquery::{parse_twig, Gtp};
use std::path::PathBuf;
use twigbaselines::DeweyResolver;
use xmlindex::{write_dewey_index, write_region_index, DeweyIndex, ElementIndex};
use xmlgen::{generate_dblp, generate_treebank, generate_xmark, DblpConfig, TreebankConfig, XmarkConfig};
use xmldom::Document;

/// A benchmark dataset with all access paths prepared.
pub struct Dataset {
    /// Display name ("DBLP", "TreeBank", "XMark(s=2)", …).
    pub name: String,
    /// The document.
    pub doc: Document,
    /// Region-encoded element index (TwigStack, PathStack, Twig²Stack).
    pub index: ElementIndex,
    /// Extended Dewey index (TJFast).
    pub dewey: DeweyIndex,
    /// Dewey → node resolution for TJFast output.
    pub resolver: DeweyResolver,
    disk_region: Option<PathBuf>,
    disk_dewey: Option<PathBuf>,
}

impl Dataset {
    /// Wrap a generated document.
    pub fn new(name: impl Into<String>, doc: Document) -> Self {
        let index = ElementIndex::build(&doc);
        let dewey = DeweyIndex::build(&doc);
        let resolver = DeweyResolver::build(&dewey, doc.labels());
        Dataset {
            name: name.into(),
            doc,
            index,
            dewey,
            resolver,
            disk_region: None,
            disk_dewey: None,
        }
    }

    /// Serialize the on-disk indexes (idempotent), returning
    /// `(region_path, dewey_path)`.
    pub fn disk_indexes(&mut self) -> std::io::Result<(PathBuf, PathBuf)> {
        if self.disk_region.is_none() {
            let dir = std::env::temp_dir().join(format!(
                "twig2stack-bench-{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir)?;
            let slug: String = self
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let region = dir.join(format!("{slug}.regions.idx"));
            let dewey = dir.join(format!("{slug}.dewey.idx"));
            write_region_index(&self.doc, &region)?;
            write_dewey_index(&self.dewey, self.doc.labels(), &dewey)?;
            self.disk_region = Some(region);
            self.disk_dewey = Some(dewey);
        }
        Ok((
            self.disk_region.clone().expect("just created"),
            self.disk_dewey.clone().expect("just created"),
        ))
    }
}

/// Size profile: `Quick` for test suites and CI, `Full` for the paper-shape
/// experiment runs, `Scaled` for the ~100× mmap cold-start study (Fig M).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small documents (~5k elements): seconds for the whole suite.
    Quick,
    /// Laptop-scale documents (~100-400k elements).
    Full,
    /// ~100× the quick documents (XMark at s≥32, DBLP/TreeBank grown to
    /// match, millions of elements): large enough that index boot cost —
    /// parse-and-build vs map-and-verify — dominates the first query.
    Scaled,
}

impl Profile {
    /// Lower-case name used in sidecars and reports.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
            Profile::Scaled => "scaled",
        }
    }
}

/// The generator configuration behind [`dblp`].
pub fn dblp_config(profile: Profile) -> DblpConfig {
    match profile {
        Profile::Quick => DblpConfig { inproceedings: 260, articles: 200, seed: 0x1db1 },
        Profile::Full => DblpConfig { inproceedings: 16000, articles: 12000, seed: 0x1db1 },
        Profile::Scaled => DblpConfig { inproceedings: 26000, articles: 20000, seed: 0x1db1 },
    }
}

/// The DBLP stand-in dataset.
pub fn dblp(profile: Profile) -> Dataset {
    Dataset::new("DBLP", generate_dblp(&dblp_config(profile)))
}

/// The generator configuration behind [`treebank`].
pub fn treebank_config(profile: Profile) -> TreebankConfig {
    match profile {
        Profile::Quick => TreebankConfig { sentences: 120, max_depth: 30, seed: 0x7b },
        Profile::Full => TreebankConfig { sentences: 7000, max_depth: 36, seed: 0x7b },
        Profile::Scaled => TreebankConfig { sentences: 12000, max_depth: 36, seed: 0x7b },
    }
}

/// The TreeBank stand-in dataset.
pub fn treebank(profile: Profile) -> Dataset {
    Dataset::new("TreeBank", generate_treebank(&treebank_config(profile)))
}

/// The generator configuration behind [`xmark`].
pub fn xmark_config(profile: Profile, scale: usize) -> XmarkConfig {
    match profile {
        Profile::Quick => XmarkConfig { scale, ..XmarkConfig::tiny(0xa0c) },
        Profile::Full => XmarkConfig::at_scale(scale),
        // The scaled profile pins s ≥ 32 regardless of the requested
        // scale: Fig M's point is boot cost at ~100× quick size.
        Profile::Scaled => XmarkConfig::at_scale(scale.max(32)),
    }
}

/// The XMark stand-in dataset at a given scale factor.
pub fn xmark(profile: Profile, scale: usize) -> Dataset {
    Dataset::new(format!("XMark(s={scale})"), generate_xmark(&xmark_config(profile, scale)))
}

/// Generate only the documents of the three Figure 14 datasets (XMark at
/// scale 1, or s=32 under [`Profile::Scaled`]), without building any
/// index — for experiments that time index construction itself (Fig M).
pub fn documents(profile: Profile) -> Vec<(String, Document)> {
    vec![
        ("DBLP".to_string(), generate_dblp(&dblp_config(profile))),
        ("XMark".to_string(), generate_xmark(&xmark_config(profile, 1))),
        ("TreeBank".to_string(), generate_treebank(&treebank_config(profile))),
    ]
}

/// One named query of Figure 15.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Paper name, e.g. "DBLP-Q1".
    pub name: &'static str,
    /// The twig syntax as in Figure 15.
    pub text: &'static str,
    /// Parsed GTP (all nodes return nodes — the "full twig" form of §5.2).
    pub gtp: Gtp,
}

fn q(name: &'static str, text: &'static str) -> NamedQuery {
    NamedQuery {
        name,
        text,
        gtp: parse_twig(text).unwrap_or_else(|e| panic!("query {name}: {e}")),
    }
}

/// The three DBLP queries of Figure 15.
pub fn dblp_queries() -> Vec<NamedQuery> {
    vec![
        q("DBLP-Q1", "//dblp/inproceedings[title]/author"),
        q("DBLP-Q2", "//dblp/article[author][.//title]//year"),
        q("DBLP-Q3", "//inproceedings[author][.//title]//booktitle"),
    ]
}

/// The three XMark queries of Figure 15.
pub fn xmark_queries() -> Vec<NamedQuery> {
    vec![
        q("XMark-Q1", "/site/open_auctions[.//bidder/personref]//reserve"),
        q("XMark-Q2", "//people//person[.//address/zipcode]/profile/education"),
        q("XMark-Q3", "//item[location]/description//keyword"),
    ]
}

/// The three TreeBank queries of Figure 15 (tag names in the lower-case
/// encoding our generator emits).
pub fn treebank_queries() -> Vec<NamedQuery> {
    vec![
        q("TreeBank-Q1", "//s/vp/pp[in]/np/vbn"),
        q("TreeBank-Q2", "//s/vp//pp[.//np/vbn]/in"),
        q("TreeBank-Q3", "//vp[dt]//prp_dollar_"),
    ]
}

/// GTP variants of DBLP-Q1 used in Figure 18.
///
/// (a) full twig; (b) `title` non-return; (c) `author` non-return;
/// (d) `author` group-return (with `title` non-return, as in 18(b) vs (d)).
pub fn fig18_variants() -> Vec<NamedQuery> {
    vec![
        q("18(a) full twig", "//dblp/inproceedings[title]/author"),
        q("18(b) title non-return", "//dblp/inproceedings[title!]/author"),
        q("18(c) author non-return", "//dblp/inproceedings[title]/author!"),
        q("18(d) author grouped", "//dblp/inproceedings[title!]/author@"),
    ]
}

/// GTP variants of XMark-Q1 used in Figure 19.
///
/// (a) full twig; (b) `address`/`zipcode` non-return; (c) only `education`
/// returned; (d) optional address axis; (e) also optional education axis.
pub fn fig19_variants() -> Vec<NamedQuery> {
    vec![
        q(
            "19(a) full twig",
            "//people//person[.//address/zipcode]/profile/education",
        ),
        q(
            "19(b) addr non-return",
            "//people//person[.//address!/zipcode!]/profile/education",
        ),
        q(
            "19(c) education only",
            "//people!//person![.//address!/zipcode!]/profile!/education",
        ),
        q(
            "19(d) optional address",
            "//people//person[.//?address/zipcode]/profile/education",
        ),
        q(
            "19(e) + optional education",
            "//people//person[.//?address/zipcode]/profile/?education",
        ),
    ]
}

/// Record-template families in the Figure U catalog. Family `f` suffixes
/// every label with `f`, so the families' label alphabets are pairwise
/// disjoint — the Bloom router can (and must) skip 3/4 of the catalog
/// for any single-family query.
pub const CATALOG_FAMILIES: usize = 4;

/// One Figure U catalog member: `records` copies of family `f`'s fixed
/// record template under a family root. Repeating the template never
/// adds root-to-leaf paths, so every member of a family shares one path
/// summary (one fingerprint) regardless of its record count — the
/// property the catalog's once-per-schema planning amortizes over.
fn catalog_member(family: usize, records: usize) -> Document {
    let f = family;
    let mut xml = format!("<cat{f}>");
    for _ in 0..records {
        xml.push_str(&format!(
            "<rec{f}><a{f}><d{f}/></a{f}><b{f}>v</b{f}><c{f}/></rec{f}>"
        ));
    }
    xml.push_str(&format!("</cat{f}>"));
    xmldom::parse(&xml).expect("catalog member template parses")
}

/// The Figure U document catalog: small documents drawn round-robin from
/// the [`CATALOG_FAMILIES`] families, with record counts cycling 3–7 so
/// document *contents* vary while each family keeps a single schema.
/// Quick profile: 240 documents; full/scaled: 10,000.
pub fn catalog_docs(profile: Profile) -> Vec<Document> {
    let n = match profile {
        Profile::Quick => 240,
        Profile::Full | Profile::Scaled => 10_000,
    };
    (0..n)
        .map(|i| catalog_member(i % CATALOG_FAMILIES, 3 + i % 5))
        .collect()
}

/// The Figure U mixed query traffic: one satisfiable twig per family
/// (routes to 1/4 of the catalog), one query over family-0 labels in a
/// structurally impossible arrangement (`c0` never contains `d0` — it
/// Bloom-routes but the shared schema analysis short-circuits it), and
/// one query whose labels exist nowhere (the router must skip the whole
/// catalog).
pub fn catalog_queries() -> Vec<NamedQuery> {
    vec![
        q("CAT-F0", "//rec0[a0/d0]/b0"),
        q("CAT-F1", "//rec1[a1/d1]/b1"),
        q("CAT-F2", "//rec2[a2/d2]/b2"),
        q("CAT-F3", "//rec3[a3/d3]/b3"),
        q("CAT-UNSAT", "//rec0/c0/d0"),
        q("CAT-MISS", "//zzz/qqq"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_workload_is_family_shaped() {
        let docs = catalog_docs(Profile::Quick);
        assert_eq!(docs.len() % CATALOG_FAMILIES, 0);
        let queries = catalog_queries();
        for (i, doc) in docs.iter().take(2 * CATALOG_FAMILIES).enumerate() {
            for nq in &queries {
                let rs = twig2stack::evaluate(doc, &nq.gtp);
                // Each document answers exactly its own family query —
                // the alphabets are pairwise disjoint, CAT-UNSAT is
                // schema-infeasible and CAT-MISS names no family.
                let own = nq.name == format!("CAT-F{}", i % CATALOG_FAMILIES);
                assert_eq!(!rs.is_empty(), own, "doc {i} vs {}", nq.name);
            }
        }
    }

    #[test]
    fn all_queries_parse_and_match_their_datasets() {
        let dblp_ds = dblp(Profile::Quick);
        for nq in dblp_queries() {
            let rs = twig2stack::evaluate(&dblp_ds.doc, &nq.gtp);
            assert!(!rs.is_empty(), "{} returned nothing", nq.name);
        }
        let xm = xmark(Profile::Quick, 1);
        for nq in xmark_queries() {
            let rs = twig2stack::evaluate(&xm.doc, &nq.gtp);
            assert!(!rs.is_empty(), "{} returned nothing", nq.name);
        }
        let tb = treebank(Profile::Quick);
        for nq in treebank_queries() {
            // TreeBank queries are highly selective; just check they run.
            let _ = twig2stack::evaluate(&tb.doc, &nq.gtp);
        }
    }

    #[test]
    fn gtp_variants_parse_and_run() {
        let ds = dblp(Profile::Quick);
        for nq in fig18_variants() {
            let rs = twig2stack::evaluate(&ds.doc, &nq.gtp);
            assert!(!rs.is_empty(), "{} returned nothing", nq.name);
        }
        let xm = xmark(Profile::Quick, 1);
        for nq in fig19_variants() {
            let rs = twig2stack::evaluate(&xm.doc, &nq.gtp);
            assert!(!rs.is_empty(), "{} returned nothing", nq.name);
        }
    }

    #[test]
    fn disk_indexes_round_trip() {
        let mut ds = dblp(Profile::Quick);
        let (r, d) = ds.disk_indexes().unwrap();
        assert!(r.exists());
        assert!(d.exists());
        // Idempotent.
        let (r2, _) = ds.disk_indexes().unwrap();
        assert_eq!(r, r2);
    }
}
