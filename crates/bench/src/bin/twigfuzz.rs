//! Conformance fuzzer driver: seeded random GTPs, metamorphic
//! invariants, replayable failure artifacts.
//!
//! Usage:
//! ```text
//! twigfuzz [--seed N] [--cases N] [--dataset NAME]... [--max-query-nodes N]
//!          [--corpus-out DIR] [--no-shrink] [--profile NAME] [--invariant NAME]
//! ```
//!
//! Runs [`twigfuzz::run_session`] over the selected dataset generators
//! (default: all four) and prints a per-invariant summary. Every failure
//! is shrunk (unless `--no-shrink`) and written as a `.t2s` case file
//! under `--corpus-out` (default `target/fuzz-failures`) — move the file
//! into `corpus/` to turn it into a permanent regression test. The run's
//! obs counters (`fuzz_cases` / `fuzz_checks` / `fuzz_failures`) are
//! drained into `target/metrics/fuzz.<run-id>.metrics.json`, the same
//! sidecar shape and naming the `experiments` binary emits (use
//! [`twigbench::latest_sidecar`] to pick the newest run).
//!
//! Exits nonzero iff at least one invariant was violated.

use std::path::Path;
use std::process::ExitCode;
use twigfuzz::{write_case, Dataset, GenConfig, SessionConfig};

fn usage() -> ! {
    eprintln!(
        "usage: twigfuzz [--seed N] [--cases N] [--dataset random|dblp|treebank|xmark]...\n\
         \x20               [--max-query-nodes N] [--corpus-out DIR] [--no-shrink] [--profile NAME]\n\
         \x20               [--invariant NAME]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SessionConfig::default();
    let mut datasets: Vec<Dataset> = Vec::new();
    let mut corpus_out = "target/fuzz-failures".to_string();
    let mut profile = "smoke".to_string();
    let mut gen = GenConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed");
                cfg.seed = parse_seed(&v).unwrap_or_else(|| {
                    eprintln!("bad --seed {v:?}");
                    usage()
                });
            }
            "--cases" => {
                cfg.cases_per_dataset = value("--cases").parse().unwrap_or_else(|_| usage());
            }
            "--dataset" => {
                let v = value("--dataset");
                match Dataset::from_name(&v) {
                    Some(d) => datasets.push(d),
                    None => {
                        eprintln!("unknown dataset {v:?}");
                        usage();
                    }
                }
            }
            "--max-query-nodes" => {
                gen.max_nodes = value("--max-query-nodes")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if gen.max_nodes == 0 {
                    usage();
                }
            }
            "--invariant" => {
                let v = value("--invariant");
                match twigfuzz::Invariant::from_name(&v) {
                    Some(inv) => cfg.only = Some(inv),
                    None => {
                        eprintln!("unknown invariant {v:?}");
                        usage();
                    }
                }
            }
            "--corpus-out" => corpus_out = value("--corpus-out"),
            "--no-shrink" => cfg.shrink_failures = false,
            "--profile" => profile = value("--profile"),
            _ => usage(),
        }
    }
    if !datasets.is_empty() {
        cfg.datasets = datasets;
    }
    cfg.gen = gen;

    println!(
        "twigfuzz: seed={:#x} cases/dataset={} datasets=[{}] shrink={}{}",
        cfg.seed,
        cfg.cases_per_dataset,
        cfg.datasets
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.shrink_failures,
        cfg.only
            .map(|i| format!(" invariant={}", i.name()))
            .unwrap_or_default(),
    );

    let report = twigfuzz::run_session(&cfg);

    println!(
        "\n{} pairs, {} checks passed, {} skipped, {} failure(s)",
        report.cases,
        report.passed,
        report.skipped,
        report.failures.len()
    );

    let failed = !report.failures.is_empty();
    for f in &report.failures {
        eprintln!(
            "\nFAIL [{} / {}] {}\n  query: {}",
            f.dataset.name(),
            f.invariant.name(),
            f.message,
            f.case.query
        );
        match write_case(Path::new(&corpus_out), &f.case) {
            Ok(path) => eprintln!("  case written to {}", path.display()),
            Err(e) => eprintln!("  could not write case file: {e}"),
        }
    }

    // Drain the counters into the standard metrics sidecar.
    let rep = twigobs::RunReport::capture("fuzz")
        .with_context("profile", &profile)
        .with_context("seed", &format!("{:#x}", cfg.seed))
        .with_context("cases_per_dataset", &cfg.cases_per_dataset.to_string());
    match twigbench::sidecar::write_report(&rep, Path::new(twigbench::sidecar::METRICS_DIR)) {
        Ok(path) => println!("metrics sidecar: {}", path.display()),
        Err(e) => eprintln!("warning: no metrics sidecar: {e}"),
    }

    if failed {
        eprintln!("\ntwigfuzz: invariant violations found — see case files above");
        ExitCode::FAILURE
    } else {
        println!("twigfuzz: all invariants held");
        ExitCode::SUCCESS
    }
}

/// Accept decimal or `0x…` hexadecimal seeds.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
