//! Regenerate the paper's evaluation tables and figures.
//!
//! Usage:
//! ```text
//! experiments [--quick] [fig14|fig15|fig16|fig17|fig18|fig19|figP|table1|all]
//! ```
//!
//! `--quick` uses small documents (seconds); the default "full" profile
//! uses laptop-scale documents comparable in spirit to the paper's setup.

use twigbench::workload::Profile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let run_all = what.contains(&"all");
    let wants = |name: &str| run_all || what.contains(&name);

    if !what.iter().all(|w| {
        matches!(
            *w,
            "all" | "fig14" | "fig15" | "fig16" | "fig17" | "fig18" | "fig19" | "figP"
                | "table1"
        )
    }) {
        eprintln!(
            "usage: experiments [--quick] [fig14|fig15|fig16|fig17|fig18|fig19|figP|table1|all]"
        );
        std::process::exit(2);
    }

    println!(
        "Twig2Stack reproduction — evaluation harness (profile: {})\n",
        if quick { "quick" } else { "full" }
    );

    if wants("fig14") {
        println!("{}", twigbench::fig14(profile));
    }
    if wants("fig15") {
        println!("{}", twigbench::fig15());
    }
    if wants("fig16") {
        let (_, report) = twigbench::fig16(profile);
        println!("{report}");
    }
    if wants("fig17") {
        let (_, report) = twigbench::fig17(profile, &[1, 2, 3, 4, 5]);
        println!("{report}");
    }
    if wants("fig18") {
        let (_, report) = twigbench::fig18(profile);
        println!("{report}");
    }
    if wants("fig19") {
        let (_, report) = twigbench::fig19(profile);
        println!("{report}");
    }
    if wants("figP") {
        let (_, report) = twigbench::figp(profile, &[1, 2, 3, 4], &[1, 2, 3, 4, 5, 6, 7, 8]);
        println!("{report}");
    }
    if wants("table1") {
        let (_, report) = twigbench::table1(profile);
        println!("{report}");
    }
}
