//! Regenerate the paper's evaluation tables and figures.
//!
//! Usage:
//! ```text
//! experiments [--quick|--scaled] [fig14|fig15|fig16|fig17|fig18|fig19|figA|figE|figM|figP|figS|figT|figU|figV|table1|all]
//! ```
//!
//! `--quick` uses small documents (seconds); the default "full" profile
//! uses laptop-scale documents comparable in spirit to the paper's setup;
//! `--scaled` grows every dataset ~100× past quick (XMark at s=32,
//! millions of elements) for the figM/figS boot-cost and skip-scan runs.
//!
//! Every figure/table run also writes an observability sidecar
//! `target/metrics/<name>.<run-id>.metrics.json` (schema
//! `twig2stack.metrics/v1`, see EXPERIMENTS.md; one file per run, the
//! run id keeps concurrent runs from clobbering each other — use
//! `twigbench::latest_sidecar` to pick the newest). Build with
//! `--no-default-features` to compile the counters out; the sidecars are
//! then written with zeroed counters and `"obs_enabled": false`.

use twigbench::workload::Profile;

/// Drain this run's obs metrics into
/// `target/metrics/<name>.<run-id>.metrics.json`.
fn emit_sidecar(name: &str, profile: Profile) {
    match twigbench::write_sidecar(name, profile.name()) {
        Ok(path) => println!("metrics sidecar: {}\n", path.display()),
        Err(e) => eprintln!("warning: no metrics sidecar for {name}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scaled = args.iter().any(|a| a == "--scaled");
    let profile = match (quick, scaled) {
        (true, _) => Profile::Quick,
        (false, true) => Profile::Scaled,
        (false, false) => Profile::Full,
    };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let run_all = what.contains(&"all");
    let wants = |name: &str| run_all || what.contains(&name);

    if !what.iter().all(|w| {
        matches!(
            *w,
            "all"
                | "fig14"
                | "fig15"
                | "fig16"
                | "fig17"
                | "fig18"
                | "fig19"
                | "figA"
                | "figE"
                | "figM"
                | "figP"
                | "figS"
                | "figT"
                | "figU"
                | "figV"
                | "table1"
        )
    }) {
        eprintln!(
            "usage: experiments [--quick|--scaled] [fig14|fig15|fig16|fig17|fig18|fig19|figA|figE|figM|figP|figS|figT|figU|figV|table1|all]"
        );
        std::process::exit(2);
    }

    println!(
        "Twig2Stack reproduction — evaluation harness (profile: {})\n",
        profile.name()
    );

    if wants("fig14") {
        println!("{}", twigbench::fig14(profile));
        emit_sidecar("fig14", profile);
    }
    if wants("fig15") {
        println!("{}", twigbench::fig15());
        emit_sidecar("fig15", profile);
    }
    if wants("fig16") {
        let (_, report) = twigbench::fig16(profile);
        println!("{report}");
        emit_sidecar("fig16", profile);
    }
    if wants("fig17") {
        let (_, report) = twigbench::fig17(profile, &[1, 2, 3, 4, 5]);
        println!("{report}");
        emit_sidecar("fig17", profile);
    }
    if wants("fig18") {
        let (_, report) = twigbench::fig18(profile);
        println!("{report}");
        emit_sidecar("fig18", profile);
    }
    if wants("fig19") {
        let (_, report) = twigbench::fig19(profile);
        println!("{report}");
        emit_sidecar("fig19", profile);
    }
    if wants("figA") {
        let (_, report) = twigbench::figa(profile);
        println!("{report}");
        // Named "planner": the sidecar carries the plan_choices_* and
        // prediction counters next to the engines' actual counters.
        emit_sidecar("planner", profile);
    }
    if wants("figE") {
        let (_, report) = twigbench::fige(profile);
        println!("{report}");
        // Named "edits": the sidecar carries the edit-path counters
        // (edits_applied, snapshot_rotations, renumber_events,
        // edit_elements_reindexed, plan_cache_invalidations) next to the
        // engine counters.
        emit_sidecar("edits", profile);
    }
    if wants("figM") {
        let (_, report) = twigbench::figm(profile);
        println!("{report}");
        emit_sidecar("figM", profile);
    }
    if wants("figP") {
        let (_, report) = twigbench::figp(profile, &[1, 2, 3, 4], &[1, 2, 3, 4, 5, 6, 7, 8]);
        println!("{report}");
        emit_sidecar("figP", profile);
    }
    if wants("figS") {
        let (_, report) = twigbench::figs(profile);
        println!("{report}");
        emit_sidecar("figS", profile);
    }
    if wants("figT") {
        let (_, report) = twigbench::figt(profile, &[1, 2, 4]);
        println!("{report}");
        // Named "serve": the sidecar carries the service-layer counters
        // (plan_cache_hits/misses/evictions, queries_admitted/rejected,
        // deadline_exceeded) next to the engine counters.
        emit_sidecar("serve", profile);
    }
    if wants("figU") {
        let (_, report) = twigbench::figu(profile);
        println!("{report}");
        // Named "catalog": the sidecar carries the catalog counters
        // (catalog_docs_routed/skipped, shard_queries, catalog_batches)
        // next to the engine counters.
        emit_sidecar("catalog", profile);
    }
    if wants("figV") {
        let (_, report) = twigbench::figv(profile);
        println!("{report}");
        // Named "subscribe": the sidecar carries the subscription
        // counters (sub_events, sub_matcher_feeds, sub_notifications)
        // next to the engine counters.
        emit_sidecar("subscribe", profile);
    }
    if wants("table1") {
        let (_, report) = twigbench::table1(profile);
        println!("{report}");
        emit_sidecar("table1", profile);
    }
}
