//! Regenerate the paper's evaluation tables and figures.
//!
//! Usage:
//! ```text
//! experiments [--quick] [fig14|fig15|fig16|fig17|fig18|fig19|figP|figS|figT|table1|all]
//! ```
//!
//! `--quick` uses small documents (seconds); the default "full" profile
//! uses laptop-scale documents comparable in spirit to the paper's setup.
//!
//! Every figure/table run also writes an observability sidecar
//! `target/metrics/<name>.<run-id>.metrics.json` (schema
//! `twig2stack.metrics/v1`, see EXPERIMENTS.md; one file per run, the
//! run id keeps concurrent runs from clobbering each other — use
//! `twigbench::latest_sidecar` to pick the newest). Build with
//! `--no-default-features` to compile the counters out; the sidecars are
//! then written with zeroed counters and `"obs_enabled": false`.

use twigbench::workload::Profile;

/// Drain this run's obs metrics into
/// `target/metrics/<name>.<run-id>.metrics.json`.
fn emit_sidecar(name: &str, quick: bool) {
    let profile = if quick { "quick" } else { "full" };
    match twigbench::write_sidecar(name, profile) {
        Ok(path) => println!("metrics sidecar: {}\n", path.display()),
        Err(e) => eprintln!("warning: no metrics sidecar for {name}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = if quick { Profile::Quick } else { Profile::Full };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let run_all = what.contains(&"all");
    let wants = |name: &str| run_all || what.contains(&name);

    if !what.iter().all(|w| {
        matches!(
            *w,
            "all" | "fig14" | "fig15" | "fig16" | "fig17" | "fig18" | "fig19" | "figP" | "figS"
                | "figT" | "table1"
        )
    }) {
        eprintln!(
            "usage: experiments [--quick] [fig14|fig15|fig16|fig17|fig18|fig19|figP|figS|figT|table1|all]"
        );
        std::process::exit(2);
    }

    println!(
        "Twig2Stack reproduction — evaluation harness (profile: {})\n",
        if quick { "quick" } else { "full" }
    );

    if wants("fig14") {
        println!("{}", twigbench::fig14(profile));
        emit_sidecar("fig14", quick);
    }
    if wants("fig15") {
        println!("{}", twigbench::fig15());
        emit_sidecar("fig15", quick);
    }
    if wants("fig16") {
        let (_, report) = twigbench::fig16(profile);
        println!("{report}");
        emit_sidecar("fig16", quick);
    }
    if wants("fig17") {
        let (_, report) = twigbench::fig17(profile, &[1, 2, 3, 4, 5]);
        println!("{report}");
        emit_sidecar("fig17", quick);
    }
    if wants("fig18") {
        let (_, report) = twigbench::fig18(profile);
        println!("{report}");
        emit_sidecar("fig18", quick);
    }
    if wants("fig19") {
        let (_, report) = twigbench::fig19(profile);
        println!("{report}");
        emit_sidecar("fig19", quick);
    }
    if wants("figP") {
        let (_, report) = twigbench::figp(profile, &[1, 2, 3, 4], &[1, 2, 3, 4, 5, 6, 7, 8]);
        println!("{report}");
        emit_sidecar("figP", quick);
    }
    if wants("figS") {
        let (_, report) = twigbench::figs(profile);
        println!("{report}");
        emit_sidecar("figS", quick);
    }
    if wants("figT") {
        let (_, report) = twigbench::figt(profile, &[1, 2, 4]);
        println!("{report}");
        // Named "serve": the sidecar carries the service-layer counters
        // (plan_cache_hits/misses/evictions, queries_admitted/rejected,
        // deadline_exceeded) next to the engine counters.
        emit_sidecar("serve", quick);
    }
    if wants("table1") {
        let (_, report) = twigbench::table1(profile);
        println!("{report}");
        emit_sidecar("table1", quick);
    }
}
