//! Timing runners and cost reports.
//!
//! The paper's two metrics (§5.1):
//!
//! * **query processing time** — for Twig²Stack the merging of
//!   hierarchical stacks plus result enumeration; for TwigStack computing
//!   and enumerating path matches plus the merge-join; for TJFast Dewey
//!   analysis, path matches and the merge-join. Measured here over the
//!   in-memory indexes, exactly that per-algorithm span.
//! * **IO time** — the cost of scanning the element streams: all query
//!   labels' region streams for the region-encoded algorithms, only the
//!   leaf labels' (fatter) Dewey streams for TJFast. Measured by really
//!   scanning the serialized index files through a counting reader.

use crate::workload::Dataset;
use gtpquery::{Gtp, NodeTest, ResultSet};
use std::time::{Duration, Instant};

/// Repetitions per timed measurement; the minimum is reported (standard
/// practice for CPU-bound microbenchmarks: the minimum is the least noisy
/// estimator of the true cost).
const REPS: usize = 3;

fn best_of<T>(mut f: impl FnMut() -> (Duration, T)) -> (Duration, T) {
    let (mut best, mut out) = f();
    for _ in 1..REPS {
        let (d, v) = f();
        if d < best {
            best = d;
            out = v;
        }
    }
    (best, out)
}
use twig2stack::{enumerate, evaluate_indexed, match_document, MatchOptions};
use twigbaselines::{
    build_streams, tj_fast, tj_fast_indexed, twig_stack, twig_stack_indexed, TJFastStats,
    TwigStackStats,
};
use xmlindex::{DiskDeweyIndex, DiskRegionIndex, ElemStream, PruningPolicy, SliceStream};

/// Measured cost of one query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCost {
    /// Query processing time (paper metric 1).
    pub query: Duration,
    /// Stream scanning time from disk (paper metric 2's IO part).
    pub io: Duration,
    /// Bytes scanned from disk.
    pub io_bytes: u64,
    /// Result tuples produced.
    pub results: usize,
}

impl QueryCost {
    /// Total execution time = query processing + IO (paper metric 2).
    pub fn total(&self) -> Duration {
        self.query + self.io
    }
}

/// All labels a query's region-encoded evaluation must scan.
fn query_label_names(gtp: &Gtp, ds: &Dataset) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for q in gtp.iter() {
        match gtp.test(q) {
            NodeTest::Name(n) => names.push(n.clone()),
            NodeTest::Wildcard => {
                names.extend(ds.doc.labels().iter().map(|(_, n)| n.to_string()))
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Leaf labels TJFast scans.
fn leaf_label_names(gtp: &Gtp, ds: &Dataset) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for q in gtp.iter() {
        if !gtp.is_leaf(q) {
            continue;
        }
        match gtp.test(q) {
            NodeTest::Name(n) => names.push(n.clone()),
            NodeTest::Wildcard => {
                names.extend(ds.doc.labels().iter().map(|(_, n)| n.to_string()))
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Scan the region streams of the given labels from disk, timing the scan.
pub fn measure_region_io(ds: &mut Dataset, labels: &[String]) -> std::io::Result<(Duration, u64)> {
    let (region_path, _) = ds.disk_indexes()?;
    let disk = DiskRegionIndex::open(&region_path)?;
    let mut best: Option<Duration> = None;
    for rep in 0..REPS {
        if rep > 0 {
            disk.counters().reset();
        }
        let start = Instant::now();
        for name in labels {
            let mut s = disk.stream(name)?;
            while s.next_elem().is_some() {}
            if let Some(e) = s.error() {
                return Err(std::io::Error::new(e.kind(), e.to_string()));
            }
        }
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b: Duration| b.min(elapsed)));
    }
    Ok((best.expect("REPS >= 1"), disk.counters().bytes()))
}

/// Scan the Dewey streams of the given labels from disk, timing the scan.
pub fn measure_dewey_io(ds: &mut Dataset, labels: &[String]) -> std::io::Result<(Duration, u64)> {
    let (_, dewey_path) = ds.disk_indexes()?;
    let disk = DiskDeweyIndex::open(&dewey_path)?;
    let mut best: Option<Duration> = None;
    let mut buf = Vec::new();
    for rep in 0..REPS {
        if rep > 0 {
            disk.counters().reset();
        }
        let start = Instant::now();
        for name in labels {
            let mut s = disk.stream(name)?;
            while s.next_into(&mut buf)?.is_some() {}
        }
        let elapsed = start.elapsed();
        best = Some(best.map_or(elapsed, |b: Duration| b.min(elapsed)));
    }
    Ok((best.expect("REPS >= 1"), disk.counters().bytes()))
}

/// Time one Twig²Stack execution (matching + enumeration), with real IO.
pub fn run_twig2stack(ds: &mut Dataset, gtp: &Gtp) -> QueryCost {
    let (query, rs) = twig2stack_query(ds, gtp);
    let labels = query_label_names(gtp, ds);
    let (io, io_bytes) = measure_region_io(ds, &labels).expect("disk index IO");
    QueryCost { query, io, io_bytes, results: rs.len() }
}

/// Twig²Stack query-processing only (no IO measurement) — for hot loops.
pub fn twig2stack_query(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    best_of(|| twig2stack_query_once(ds, gtp))
}

/// One un-repeated Twig²Stack execution (for criterion loops, which do
/// their own repetition).
pub fn twig2stack_query_once(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    let start = Instant::now();
    let (tm, _) = match_document(&ds.doc, gtp, MatchOptions::default());
    let rs = enumerate(&tm);
    (start.elapsed(), rs)
}

/// Time one TwigStack execution (streams + path matches + merge join).
pub fn run_twigstack(ds: &mut Dataset, gtp: &Gtp) -> QueryCost {
    let (query, rs) = twigstack_query(ds, gtp);
    let labels = query_label_names(gtp, ds);
    let (io, io_bytes) = measure_region_io(ds, &labels).expect("disk index IO");
    QueryCost { query, io, io_bytes, results: rs.len() }
}

/// TwigStack query-processing only.
pub fn twigstack_query(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    let owned = build_streams(&ds.index, ds.doc.labels(), gtp);
    best_of(|| {
        let start = Instant::now();
        let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
        let mut stats = TwigStackStats::default();
        let rs = twig_stack(gtp, streams, &mut stats);
        (start.elapsed(), rs)
    })
}

/// One un-repeated TwigStack execution.
pub fn twigstack_query_once(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    let owned = build_streams(&ds.index, ds.doc.labels(), gtp);
    let start = Instant::now();
    let streams: Vec<SliceStream<'_>> = owned.iter().map(|v| SliceStream::new(v)).collect();
    let mut stats = TwigStackStats::default();
    let rs = twig_stack(gtp, streams, &mut stats);
    (start.elapsed(), rs)
}

/// Time one TJFast execution (leaf Dewey analysis + path matches + join).
pub fn run_tjfast(ds: &mut Dataset, gtp: &Gtp) -> QueryCost {
    let (query, rs) = tjfast_query(ds, gtp);
    let labels = leaf_label_names(gtp, ds);
    let (io, io_bytes) = measure_dewey_io(ds, &labels).expect("disk index IO");
    QueryCost { query, io, io_bytes, results: rs.len() }
}

/// TJFast query-processing only.
pub fn tjfast_query(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    best_of(|| tjfast_query_once(ds, gtp))
}

/// One un-repeated TJFast execution.
pub fn tjfast_query_once(ds: &Dataset, gtp: &Gtp) -> (Duration, ResultSet) {
    let start = Instant::now();
    let mut stats = TJFastStats::default();
    let rs = tj_fast(gtp, &ds.dewey, ds.doc.labels(), &ds.resolver, &mut stats);
    (start.elapsed(), rs)
}

/// One un-repeated Twig²Stack execution through the indexed driver, with
/// path-summary pruning under the caller's `policy` (Figure S).
pub fn twig2stack_indexed_once(
    ds: &Dataset,
    gtp: &Gtp,
    policy: PruningPolicy,
) -> (Duration, ResultSet) {
    let start = Instant::now();
    let rs = evaluate_indexed(&ds.doc, &ds.index, gtp, policy);
    (start.elapsed(), rs)
}

/// One un-repeated TwigStack execution through the indexed driver.
pub fn twigstack_indexed_once(
    ds: &Dataset,
    gtp: &Gtp,
    policy: PruningPolicy,
) -> (Duration, ResultSet) {
    let start = Instant::now();
    let mut stats = TwigStackStats::default();
    let rs = twig_stack_indexed(&ds.index, ds.doc.labels(), gtp, policy, &mut stats);
    (start.elapsed(), rs)
}

/// One un-repeated TJFast execution through the indexed driver.
pub fn tjfast_indexed_once(
    ds: &Dataset,
    gtp: &Gtp,
    policy: PruningPolicy,
) -> (Duration, ResultSet) {
    let start = Instant::now();
    let mut stats = TJFastStats::default();
    let rs = tj_fast_indexed(
        gtp,
        &ds.dewey,
        ds.index.summary(),
        ds.doc.labels(),
        &ds.resolver,
        policy,
        &mut stats,
    );
    (start.elapsed(), rs)
}

/// Render rows of `(label, cells…)` as a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(c);
            for _ in c.len()..widths[i] {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    fmt_row(&hdr, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Milliseconds with two decimals, for report cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Human-readable byte count.
pub fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}M", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}K", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{dblp, dblp_queries, Profile};

    #[test]
    fn all_three_runners_agree_on_results() {
        let mut ds = dblp(Profile::Quick);
        for nq in dblp_queries() {
            let a = run_twig2stack(&mut ds, &nq.gtp);
            let b = run_twigstack(&mut ds, &nq.gtp);
            let c = run_tjfast(&mut ds, &nq.gtp);
            assert_eq!(a.results, b.results, "{}", nq.name);
            assert_eq!(a.results, c.results, "{}", nq.name);
            assert!(a.results > 0);
            assert!(a.io_bytes > 0);
            assert!(b.total() >= b.query);
        }
    }

    #[test]
    fn tjfast_scans_fewer_streams_more_bytes_per_element() {
        let mut ds = dblp(Profile::Quick);
        let nq = &dblp_queries()[0]; // //dblp/inproceedings[title]/author
        let region = run_twigstack(&mut ds, &nq.gtp);
        let dewey = run_tjfast(&mut ds, &nq.gtp);
        // Region path scans 4 labels, Dewey only 2 leaves — but Dewey
        // records are larger. Both must be non-trivial.
        assert!(region.io_bytes > 0 && dewey.io_bytes > 0);
    }

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["q", "ms"],
            &[
                vec!["Q1".into(), "1.25".into()],
                vec!["Q2-long".into(), "0.10".into()],
            ],
        );
        assert!(t.contains("Q2-long"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(12), "12B");
        assert_eq!(human_bytes(2048), "2.0K");
        assert_eq!(human_bytes(3 << 20), "3.0M");
    }
}
