//! JSON metrics sidecars (`*.metrics.json`) for experiment runs.
//!
//! Every figure/table run of the `experiments` binary drains the obs
//! accumulator into a [`twigobs::RunReport`] and writes it next to the
//! other build artifacts under [`METRICS_DIR`]. The schema is
//! `twig2stack.metrics/v1` (see EXPERIMENTS.md and DESIGN.md §7); with the
//! `obs` feature disabled the file is still written, with `"obs_enabled":
//! false` and all-zero counters, so consumers need no special casing.
//!
//! ## File naming — one file per run
//!
//! Sidecars are named `<name>.<run-id>.metrics.json`, where the run id
//! (time + pid + an in-process sequence number) is unique per write.
//! Concurrent or batched runs of the same experiment therefore never
//! clobber each other's reports — an earlier version used plain
//! `<name>.metrics.json` and silently lost all but the last writer.
//! Readers that want "the" sidecar of an experiment use
//! [`latest_sidecar`], which picks the newest run by modification time
//! (ties broken by the lexicographically greatest run id).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use twigobs::RunReport;

/// Directory sidecars are written to, relative to the invocation cwd
/// (the workspace root for `cargo run`).
pub const METRICS_DIR: &str = "target/metrics";

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique id for one sidecar write: epoch milliseconds, the process
/// id, and an in-process sequence number, all in lowercase hex. Sorts
/// roughly by time; exactly unique within a process, unique across
/// processes via the pid.
pub fn run_id() -> String {
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{millis:012x}-{:05x}-{seq:03x}", process::id())
}

/// Drain the calling thread's obs accumulator into a report named `name`,
/// tag it with the run `profile`, and write
/// `target/metrics/<name>.<run-id>.metrics.json`. Returns the sidecar
/// path.
pub fn write_sidecar(name: &str, profile: &str) -> io::Result<PathBuf> {
    let report = RunReport::capture(name).with_context("profile", profile);
    write_report(&report, Path::new(METRICS_DIR))
}

/// Serialize `report` to `<dir>/<report.name>.<run-id>.metrics.json`.
pub fn write_report(report: &RunReport, dir: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.{}.metrics.json", report.name, run_id()));
    fs::write(&path, report.to_json())?;
    Ok(path)
}

/// Find the most recent sidecar for experiment `name` in `dir`: the
/// `<name>.<run-id>.metrics.json` file with the newest modification
/// time (ties broken by the greatest file name, i.e. the latest run id).
/// Returns `Ok(None)` when the directory is missing or holds no run of
/// `name`.
pub fn latest_sidecar(dir: &Path, name: &str) -> io::Result<Option<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let prefix = format!("{name}.");
    let mut best: Option<(SystemTime, String, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else { continue };
        if !file_name.starts_with(&prefix) || !file_name.ends_with(".metrics.json") {
            continue;
        }
        let mtime = entry.metadata()?.modified().unwrap_or(UNIX_EPOCH);
        let key = (mtime, file_name.to_string());
        if best
            .as_ref()
            .is_none_or(|(bt, bn, _)| key > (*bt, bn.clone()))
        {
            best = Some((key.0, key.1, entry.path()));
        }
    }
    Ok(best.map(|(_, _, p)| p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twigobs::Metrics;

    #[test]
    fn sidecar_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("twigbench-sidecar-test");
        let _ = fs::remove_dir_all(&dir);
        let report = RunReport::from_metrics("unit", Metrics::default())
            .with_context("profile", "quick");
        let path = write_report(&report, &dir).unwrap();
        let file_name = path.file_name().unwrap().to_str().unwrap();
        assert!(file_name.starts_with("unit."));
        assert!(file_name.ends_with(".metrics.json"));
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, report.to_json());
        assert!(body.contains("\"schema\": \"twig2stack.metrics/v1\""));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_sidecar_captures_and_names_the_run() {
        twigobs::bump(twigobs::Counter::Chunks);
        let path = write_sidecar("sidecar-capture-test", "quick").unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"sidecar-capture-test\""));
        assert!(body.contains("\"profile\": \"quick\""));
        if twigobs::ENABLED {
            assert!(body.contains("\"chunks\": 1"));
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_runs_never_clobber() {
        let dir = std::env::temp_dir().join("twigbench-sidecar-clobber-test");
        let _ = fs::remove_dir_all(&dir);
        let report = RunReport::from_metrics("rerun", Metrics::default());
        let first = write_report(&report, &dir).unwrap();
        let second = write_report(&report, &dir).unwrap();
        assert_ne!(first, second, "each run gets its own file");
        assert!(first.exists() && second.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_sidecar_picks_the_newest_run() {
        let dir = std::env::temp_dir().join("twigbench-sidecar-latest-test");
        let _ = fs::remove_dir_all(&dir);
        assert!(latest_sidecar(&dir, "x").unwrap().is_none(), "missing dir is not an error");
        let report = RunReport::from_metrics("x", Metrics::default());
        let _first = write_report(&report, &dir).unwrap();
        let second = write_report(&report, &dir).unwrap();
        // A different experiment's runs must not shadow x's.
        let other = RunReport::from_metrics("x-other", Metrics::default());
        write_report(&other, &dir).unwrap();
        let picked = latest_sidecar(&dir, "x").unwrap().expect("x has runs");
        assert_eq!(picked, second, "newest run of x wins");
        assert!(latest_sidecar(&dir, "nope").unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
