//! JSON metrics sidecars (`*.metrics.json`) for experiment runs.
//!
//! Every figure/table run of the `experiments` binary drains the obs
//! accumulator into a [`twigobs::RunReport`] and writes it next to the
//! other build artifacts under [`METRICS_DIR`]. The schema is
//! `twig2stack.metrics/v1` (see EXPERIMENTS.md and DESIGN.md §7); with the
//! `obs` feature disabled the file is still written, with `"obs_enabled":
//! false` and all-zero counters, so consumers need no special casing.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use twigobs::RunReport;

/// Directory sidecars are written to, relative to the invocation cwd
/// (the workspace root for `cargo run`).
pub const METRICS_DIR: &str = "target/metrics";

/// Drain the calling thread's obs accumulator into a report named `name`,
/// tag it with the run `profile`, and write
/// `target/metrics/<name>.metrics.json`. Returns the sidecar path.
pub fn write_sidecar(name: &str, profile: &str) -> io::Result<PathBuf> {
    let report = RunReport::capture(name).with_context("profile", profile);
    write_report(&report, Path::new(METRICS_DIR))
}

/// Serialize `report` to `<dir>/<report.name>.metrics.json`.
pub fn write_report(report: &RunReport, dir: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.metrics.json", report.name));
    fs::write(&path, report.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twigobs::Metrics;

    #[test]
    fn sidecar_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("twigbench-sidecar-test");
        let report = RunReport::from_metrics("unit", Metrics::default())
            .with_context("profile", "quick");
        let path = write_report(&report, &dir).unwrap();
        assert!(path.ends_with("unit.metrics.json"));
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, report.to_json());
        assert!(body.contains("\"schema\": \"twig2stack.metrics/v1\""));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_sidecar_captures_and_names_the_run() {
        twigobs::bump(twigobs::Counter::Chunks);
        let path = write_sidecar("sidecar-capture-test", "quick").unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"sidecar-capture-test\""));
        assert!(body.contains("\"profile\": \"quick\""));
        if twigobs::ENABLED {
            assert!(body.contains("\"chunks\": 1"));
        }
        fs::remove_file(&path).unwrap();
    }
}
