//! Extended Dewey labeling (TJFast \[16\]).
//!
//! Each element gets a path of integer components from the root. The
//! *extended* scheme makes components carry the element's label: for an
//! element whose parent is labelled `p`, with `k = |CL(p)|` (see
//! [`crate::schema::Schema`]) and `i` the index of the element's label in
//! `CL(p)`, the component `n` satisfies `n ≡ i (mod k)` and is the smallest
//! such value greater than the previous sibling's component (or the
//! smallest non-negative one for the first child).
//!
//! Consequently the **full label path of every ancestor can be decoded from
//! a leaf's Dewey id alone** — this is what lets TJFast scan only the
//! streams of the query's *leaf* labels. Structural predicates become:
//!
//! * ancestor-descendant = Dewey-prefix;
//! * parent-child        = prefix with length difference 1;
//! * document order      = lexicographic component order.

use crate::schema::Schema;
use xmldom::{Document, Label, NodeId};

/// One element in a Dewey-labelled index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeweyElement<'a> {
    /// Document node id.
    pub id: NodeId,
    /// Extended Dewey components (empty for the document root).
    pub dewey: &'a [u32],
}

impl DeweyElement<'_> {
    /// Element depth (root = 1).
    pub fn level(&self) -> u32 {
        self.dewey.len() as u32 + 1
    }
}

/// True iff `anc` is a proper Dewey ancestor (proper prefix) of `desc`.
pub fn is_dewey_ancestor(anc: &[u32], desc: &[u32]) -> bool {
    anc.len() < desc.len() && desc[..anc.len()] == *anc
}

/// True iff `par` is the Dewey parent of `child`.
pub fn is_dewey_parent(par: &[u32], child: &[u32]) -> bool {
    par.len() + 1 == child.len() && child[..par.len()] == *par
}

/// Compute the next sibling component: smallest `n ≡ i (mod k)` with
/// `n > prev` (or the smallest non-negative one when `prev` is `None`).
pub fn next_component(prev: Option<u32>, i: usize, k: usize) -> u32 {
    debug_assert!(i < k);
    let (i, k) = (i as u64, k as u64);
    match prev {
        None => i as u32,
        Some(p) => {
            let base = p as u64 + 1;
            let n = base + (i + k - base % k) % k;
            u32::try_from(n).expect("Dewey component overflow")
        }
    }
}

/// Extended-Dewey index of one document: per-label element lists (in
/// document order) over a shared component arena, plus the schema
/// transducer needed to decode label paths.
#[derive(Debug, Clone)]
pub struct DeweyIndex {
    schema: Schema,
    /// Flat arena of all components.
    arena: Vec<u32>,
    /// Per label: (node id, arena offset, component count).
    by_label: Vec<Vec<(NodeId, u32, u16)>>,
}

impl DeweyIndex {
    /// Build the index in one document pass.
    pub fn build(doc: &Document) -> Self {
        let _span = twigobs::span(twigobs::Phase::IndexBuild);
        let schema = Schema::extract(doc);
        let n_labels = doc.labels().len();
        let mut by_label: Vec<Vec<(NodeId, u32, u16)>> = vec![Vec::new(); n_labels];
        let mut arena: Vec<u32> = Vec::with_capacity(doc.len() * 2);

        // Iterative preorder walk carrying each node's dewey prefix.
        // `paths[depth]` caches the prefix of the current root-to-node path.
        let mut prefix: Vec<u32> = Vec::new();
        // (node, depth, component) — component is None for the root.
        let mut stack: Vec<(NodeId, usize, Option<u32>)> = vec![(doc.root(), 0, None)];
        while let Some((node, depth, comp)) = stack.pop() {
            prefix.truncate(depth);
            if let Some(c) = comp {
                prefix.push(c);
            }
            let off = arena.len() as u32;
            arena.extend_from_slice(&prefix);
            let len = u16::try_from(prefix.len()).expect("document too deep for Dewey index");
            by_label[doc.label(node).index()].push((node, off, len));

            let parent_label = doc.label(node);
            let k = schema.fanout(parent_label);
            let mut prev: Option<u32> = None;
            let mut child_entries: Vec<(NodeId, usize, Option<u32>)> = Vec::new();
            let child_depth = prefix.len();
            for c in doc.children(node) {
                let i = schema
                    .child_index(parent_label, doc.label(c))
                    .expect("schema covers every observed child");
                let comp = next_component(prev, i, k);
                prev = Some(comp);
                child_entries.push((c, child_depth, Some(comp)));
            }
            // Reverse so the leftmost child is processed first.
            stack.extend(child_entries.into_iter().rev());
        }

        DeweyIndex { schema, arena, by_label }
    }

    /// The schema transducer used for decoding.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Elements with `label` in document order.
    pub fn elements(&self, label: Label) -> Vec<DeweyElement<'_>> {
        self.by_label
            .get(label.index())
            .map(|v| {
                v.iter()
                    .map(|&(id, off, len)| DeweyElement {
                        id,
                        dewey: &self.arena[off as usize..off as usize + len as usize],
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of elements with `label`.
    pub fn count(&self, label: Label) -> usize {
        self.by_label.get(label.index()).map_or(0, Vec::len)
    }

    /// Decode the label path root..=element from a Dewey id.
    ///
    /// Returns one label per level (so `dewey.len() + 1` labels).
    pub fn decode_labels(&self, dewey: &[u32]) -> Vec<Label> {
        let mut out = Vec::with_capacity(dewey.len() + 1);
        let mut label = self.schema.root_label();
        out.push(label);
        for &comp in dewey {
            let cl = self.schema.child_labels(label);
            let k = cl.len();
            debug_assert!(k > 0, "component below a leaf label");
            label = cl[comp as usize % k];
            out.push(label);
        }
        out
    }

    /// Serialized size in bytes of the stream for `label` (record format:
    /// 4-byte id + 2-byte length + 4 bytes per component). This models
    /// TJFast's IO: fewer streams, but fatter records.
    pub fn stream_bytes(&self, label: Label) -> usize {
        self.by_label
            .get(label.index())
            .map(|v| v.iter().map(|&(_, _, len)| 6 + 4 * len as usize).sum())
            .unwrap_or(0)
    }

    /// Resolve a Dewey id back to the document node it labels, by replaying
    /// component assignment down from the root. Used for result
    /// verification; not part of the matching hot path.
    pub fn resolve(&self, doc: &Document, dewey: &[u32]) -> Option<NodeId> {
        let mut node = doc.root();
        for &comp in dewey {
            let parent_label = doc.label(node);
            let k = self.schema.fanout(parent_label);
            if k == 0 {
                return None;
            }
            let mut prev: Option<u32> = None;
            let mut found = None;
            for c in doc.children(node) {
                let i = self.schema.child_index(parent_label, doc.label(c))?;
                let cc = next_component(prev, i, k);
                prev = Some(cc);
                if cc == comp {
                    found = Some(c);
                    break;
                }
                if cc > comp {
                    return None;
                }
            }
            node = found?;
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    fn doc1() -> xmldom::Document {
        parse("<a><b><c/><d/></b><b><d/><d/></b><d/></a>").unwrap()
    }

    #[test]
    fn components_encode_labels() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        let d = doc.labels().get("d").unwrap();
        for e in idx.elements(d) {
            let labels = idx.decode_labels(e.dewey);
            let names: Vec<&str> = labels.iter().map(|&l| doc.labels().name(l)).collect();
            assert_eq!(*names.last().unwrap(), "d");
            assert_eq!(names[0], "a");
        }
    }

    #[test]
    fn decoded_path_matches_real_ancestry() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        for (_, name) in doc.labels().iter() {
            let l = doc.labels().get(name).unwrap();
            for e in idx.elements(l) {
                // Real label path via parent links.
                let mut real = Vec::new();
                let mut n = Some(e.id);
                while let Some(cur) = n {
                    real.push(doc.label(cur));
                    n = doc.parent(cur);
                }
                real.reverse();
                assert_eq!(idx.decode_labels(e.dewey), real, "element {}", e.id);
            }
        }
    }

    #[test]
    fn prefix_is_ancestor() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        let mut all: Vec<(NodeId, Vec<u32>)> = Vec::new();
        for (l, _) in doc.labels().iter() {
            for e in idx.elements(l) {
                all.push((e.id, e.dewey.to_vec()));
            }
        }
        for (id1, d1) in &all {
            for (id2, d2) in &all {
                let real = doc.is_ancestor(*id1, *id2);
                assert_eq!(is_dewey_ancestor(d1, d2), real, "{id1} vs {id2}");
                let real_parent = doc.parent(*id2) == Some(*id1);
                assert_eq!(is_dewey_parent(d1, d2), real_parent);
            }
        }
    }

    #[test]
    fn lexicographic_order_is_document_order() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        let mut all: Vec<(NodeId, Vec<u32>)> = Vec::new();
        for (l, _) in doc.labels().iter() {
            for e in idx.elements(l) {
                all.push((e.id, e.dewey.to_vec()));
            }
        }
        all.sort_by(|a, b| a.1.cmp(&b.1));
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "dewey order violates document order");
        }
    }

    #[test]
    fn resolve_round_trips() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        for (l, _) in doc.labels().iter() {
            for e in idx.elements(l) {
                assert_eq!(idx.resolve(&doc, e.dewey), Some(e.id));
            }
        }
        assert_eq!(idx.resolve(&doc, &[9999]), None);
    }

    #[test]
    fn next_component_rule() {
        // k = 3: labels 0,1,2.
        assert_eq!(next_component(None, 0, 3), 0);
        assert_eq!(next_component(None, 2, 3), 2);
        assert_eq!(next_component(Some(0), 0, 3), 3); // strictly increasing
        assert_eq!(next_component(Some(0), 1, 3), 1);
        assert_eq!(next_component(Some(2), 1, 3), 4);
        assert_eq!(next_component(Some(5), 2, 3), 8);
        // k = 1 (single child label): 0,1,2,...
        assert_eq!(next_component(None, 0, 1), 0);
        assert_eq!(next_component(Some(0), 0, 1), 1);
    }

    #[test]
    fn recursive_document() {
        let doc = parse("<a><a><b/><a/></a><b/></a>").unwrap();
        let idx = DeweyIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        for e in idx.elements(b) {
            let names: Vec<&str> = idx
                .decode_labels(e.dewey)
                .iter()
                .map(|&l| doc.labels().name(l))
                .collect();
            assert_eq!(*names.last().unwrap(), "b");
            assert!(names[..names.len() - 1].iter().all(|&n| n == "a"));
        }
    }

    #[test]
    fn stream_bytes_model() {
        let doc = doc1();
        let idx = DeweyIndex::build(&doc);
        let d = doc.labels().get("d").unwrap();
        // 4 d-elements at depths 3,3,3,2 → dewey lengths 2,2,2,1.
        assert_eq!(idx.stream_bytes(d), 4 * 6 + 4 * (2 + 2 + 2 + 1));
    }
}
