//! Structural path summary (strong DataGuide) and summary-id sets.
//!
//! A [`PathSummary`] is a tree with one node per *distinct* root-to-node
//! label path in the document. Real-world documents have few distinct
//! paths — DBLP has dozens, XMark ~500, and even the recursive TreeBank
//! stays in the hundreds — so the summary is a tiny side structure that
//! can answer "could an element on this path ever match this query node?"
//! without touching the element streams at all.
//!
//! Every document element is assigned the **summary id** (`sid`) of its
//! path; per-summary element counts and region spans come along for free
//! during construction. Query feasibility analysis (in `gtpquery`)
//! evaluates a GTP against this tree to produce a [`SummarySet`] per query
//! node; streams then filter by those sets (see [`crate::stream`]), which
//! is where the "stop reading elements the query can never match" win of
//! this index comes from.
//!
//! The summary is stored *flat*: fixed-width [`SummaryNode`] records with
//! child lists packed into one shared `u32` array. Consumers read it
//! through the borrowed [`SummaryRef`] view, which the heap-built
//! [`PathSummary`] and the memory-mapped v3 index (see [`crate::v3`])
//! produce identically — feasibility analysis cannot tell whether the
//! records live on the heap or in a mapped file.

use std::collections::HashMap;
use twigobs::Counter;
use xmldom::{Document, Label, LabelTable, NodeId, Region};

/// One node of the path summary: a distinct root-to-node label path.
///
/// A fixed-width, little-endian-safe record (`#[repr(C)]`, all-`u32`
/// fields) so a mapped v3 index can overlay a `&[SummaryNode]` directly on
/// file bytes. Child sids live in the summary's shared child array; use
/// [`SummaryRef::children`] (or [`PathSummary::children`]) to read them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct SummaryNode {
    /// Label of the last step of the path.
    pub label: Label,
    /// Parent sid, or `u32::MAX` for depth-1 paths (see [`Self::parent`]).
    parent: u32,
    /// First index of this node's child list in the shared child array.
    children_start: u32,
    /// Length of this node's child list.
    children_len: u32,
    /// Path length; the document root element's path has depth 1.
    pub depth: u32,
    /// Number of document elements on this path.
    pub count: u32,
    /// Smallest `left` over the path's elements.
    pub min_left: u32,
    /// Largest `right` over the path's elements.
    pub max_right: u32,
}

impl SummaryNode {
    /// Parent path, `None` for depth-1 paths.
    #[inline]
    pub fn parent(&self) -> Option<u32> {
        (self.parent != u32::MAX).then_some(self.parent)
    }

    /// `(start, len)` of this node's child list in the shared child
    /// array — exposed so the v3 open path can bounds-check every node
    /// before any [`SummaryRef`] accessor trusts the ranges.
    #[inline]
    pub fn child_range(&self) -> (u32, u32) {
        (self.children_start, self.children_len)
    }
}

/// Borrowed view of a path summary: flat node records, the shared child
/// array, and the per-element sid map.
///
/// `Copy`, so it is passed by value. Both [`PathSummary::view`] (heap) and
/// the mapped v3 index produce this same type, which is what lets every
/// summary consumer run zero-copy over a mapped file.
#[derive(Debug, Clone, Copy)]
pub struct SummaryRef<'a> {
    nodes: &'a [SummaryNode],
    children: &'a [u32],
    sid_of: &'a [u32],
}

impl<'a> SummaryRef<'a> {
    /// Assemble a view from raw parts (the mapped-index entry point).
    ///
    /// `children` must contain every node's `[children_start,
    /// children_start + children_len)` range and `sid_of` must map every
    /// document node to a valid sid. [`PathSummary`] guarantees this by
    /// construction; the v3 open path verifies it (via
    /// [`SummaryNode::child_range`]) before handing out a view, so no
    /// assertion lives here — corrupt files must surface as typed open
    /// errors, not panics.
    pub fn from_raw_parts(
        nodes: &'a [SummaryNode],
        children: &'a [u32],
        sid_of: &'a [u32],
    ) -> Self {
        SummaryRef { nodes, children, sid_of }
    }

    /// Number of distinct label paths.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the summary is empty (only for an empty document).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The summary node for `sid`.
    #[inline]
    pub fn node(&self, sid: u32) -> &'a SummaryNode {
        &self.nodes[sid as usize]
    }

    /// All summary nodes, indexed by sid.
    #[inline]
    pub fn nodes(&self) -> &'a [SummaryNode] {
        self.nodes
    }

    /// Child sids of `sid`, in first-encountered order.
    #[inline]
    pub fn children(&self, sid: u32) -> &'a [u32] {
        let n = &self.nodes[sid as usize];
        &self.children[n.children_start as usize..(n.children_start + n.children_len) as usize]
    }

    /// Summary id of a document element.
    #[inline]
    pub fn sid(&self, node: NodeId) -> u32 {
        self.sid_of[node.index()]
    }

    /// Summary ids of all document elements, indexed by `NodeId::index()`.
    #[inline]
    pub fn sids(&self) -> &'a [u32] {
        self.sid_of
    }

    /// True iff `anc` is a proper ancestor path of `desc`.
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        let mut cur = self.nodes[desc as usize].parent();
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.nodes[p as usize].parent();
        }
        false
    }

    /// Structural fingerprint: an FNV-1a hash over every node's
    /// `(label name, parent sid, depth)` in sid order.
    ///
    /// Sids are assigned in first-occurrence preorder, so two documents
    /// with equal fingerprints have the *same* summary tree under the
    /// *same* sid numbering — schema-level verdicts (feasibility sets,
    /// unsatisfiability, planner decisions keyed on summary shape) computed
    /// against one transfer verbatim to the other. Element counts and
    /// region hulls are deliberately excluded: they vary with document
    /// size, not schema, and including them would shatter the
    /// one-plan-per-schema sharing the multi-document catalog relies on.
    /// Label *names* (not numeric `Label` ids) are hashed so documents
    /// built with independent label tables still compare.
    pub fn fingerprint(&self, labels: &LabelTable) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for n in self.nodes {
            mix(labels.name(n.label).as_bytes());
            mix(&[0xff]); // name terminator: ("ab","c") != ("a","bc")
            mix(&n.parent.to_le_bytes());
            mix(&n.depth.to_le_bytes());
        }
        h
    }
}

/// Strong DataGuide over a document: distinct label paths plus the mapping
/// from every element to its path's summary id.
///
/// ```
/// use xmlindex::PathSummary;
/// let doc = xmldom::parse("<a><b><c/></b><b/><c/></a>").unwrap();
/// let s = PathSummary::build(&doc);
/// // Paths: /a, /a/b, /a/b/c, /a/c — two distinct paths end in `c`.
/// assert_eq!(s.len(), 4);
/// assert_ne!(s.sid(xmldom::NodeId::from_index(2)), // the nested c
///            s.sid(xmldom::NodeId::from_index(4))); // the top-level c
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSummary {
    nodes: Vec<SummaryNode>,
    /// All child lists, packed; each node addresses its slice by
    /// `children_start`/`children_len`.
    children: Vec<u32>,
    /// Summary id per document node, indexed by `NodeId::index()`.
    sid_of: Vec<u32>,
}

impl PathSummary {
    /// Build the summary in one pre-order pass over `doc` (plus a final
    /// flattening of the per-node child lists into the shared array).
    pub fn build(doc: &Document) -> Self {
        let mut nodes: Vec<SummaryNode> = Vec::new();
        let mut kids: Vec<Vec<u32>> = Vec::new();
        let mut sid_of = vec![0u32; doc.len()];
        // (parent sid or u32::MAX for roots, label) -> sid
        let mut edge: HashMap<(u32, Label), u32> = HashMap::new();
        for n in doc.iter() {
            let label = doc.label(n);
            let region = doc.region(n);
            let parent_sid = doc.parent(n).map(|p| sid_of[p.index()]);
            let key = (parent_sid.unwrap_or(u32::MAX), label);
            let sid = *edge.entry(key).or_insert_with(|| {
                let sid = nodes.len() as u32;
                nodes.push(SummaryNode {
                    label,
                    parent: parent_sid.unwrap_or(u32::MAX),
                    children_start: 0,
                    children_len: 0,
                    depth: region.level,
                    count: 0,
                    min_left: region.left,
                    max_right: region.right,
                });
                kids.push(Vec::new());
                if let Some(p) = parent_sid {
                    kids[p as usize].push(sid);
                }
                sid
            });
            let node = &mut nodes[sid as usize];
            node.count += 1;
            node.min_left = node.min_left.min(region.left);
            node.max_right = node.max_right.max(region.right);
            sid_of[n.index()] = sid;
        }
        let mut children = Vec::with_capacity(nodes.len().saturating_sub(1));
        for (node, k) in nodes.iter_mut().zip(&kids) {
            node.children_start = children.len() as u32;
            node.children_len = k.len() as u32;
            children.extend_from_slice(k);
        }
        twigobs::add(Counter::SummaryNodes, nodes.len() as u64);
        PathSummary { nodes, children, sid_of }
    }

    /// Borrowed view over the summary's flat arrays.
    #[inline]
    pub fn view(&self) -> SummaryRef<'_> {
        SummaryRef {
            nodes: &self.nodes,
            children: &self.children,
            sid_of: &self.sid_of,
        }
    }

    /// Number of distinct label paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the summary is empty (only for an empty document).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The summary node for `sid`.
    pub fn node(&self, sid: u32) -> &SummaryNode {
        &self.nodes[sid as usize]
    }

    /// All summary nodes, indexed by sid.
    pub fn nodes(&self) -> &[SummaryNode] {
        &self.nodes
    }

    /// Child sids of `sid`, in first-encountered order.
    pub fn children(&self, sid: u32) -> &[u32] {
        self.view().children(sid)
    }

    /// Summary id of a document element.
    #[inline]
    pub fn sid(&self, node: NodeId) -> u32 {
        self.sid_of[node.index()]
    }

    /// Summary ids of all document elements, indexed by `NodeId::index()`.
    pub fn sids(&self) -> &[u32] {
        &self.sid_of
    }

    /// True iff `anc` is a proper ancestor path of `desc`.
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        self.view().is_ancestor(anc, desc)
    }

    /// Structural fingerprint (see [`SummaryRef::fingerprint`]).
    pub fn fingerprint(&self, labels: &LabelTable) -> u64 {
        self.view().fingerprint(labels)
    }

    /// Mutable access to one summary node, for the incremental index
    /// maintenance in [`crate::stream`] (region-hull rewrites only; the
    /// tree structure is never mutated in place).
    #[inline]
    pub(crate) fn node_mut(&mut self, sid: u32) -> &mut SummaryNode {
        &mut self.nodes[sid as usize]
    }

    /// Try to patch this summary for a single contiguous preorder splice
    /// (`removed` nodes at `at` replaced by `edited`'s nodes
    /// `at .. at + inserted`), preserving every sid number.
    ///
    /// Sid numbering is first-occurrence order, so a patch is only valid
    /// when the edit leaves the set of label paths and their relative
    /// first-occurrence order intact. This function handles the structural
    /// half of that contract: it splices `sid_of`, patches per-path counts,
    /// and resolves every inserted node's path through the *existing* edge
    /// relation. It returns `None` — full rebuild required — when an
    /// inserted node is on a path this summary has never seen, or when a
    /// path's element count drops to zero (a fresh build would not contain
    /// that path at all, renumbering every later sid). Region hulls are
    /// NOT maintained here; the caller recomputes the affected hulls from
    /// its patched element partitions and then validates first-occurrence
    /// order via the `min_left` monotonicity invariant.
    pub(crate) fn try_patch(
        &self,
        edited: &Document,
        at: usize,
        removed: usize,
        inserted: usize,
    ) -> Option<PathSummary> {
        let mut nodes = self.nodes.clone();
        for &sid in &self.sid_of[at..at + removed] {
            let c = &mut nodes[sid as usize].count;
            *c = c.checked_sub(1)?;
        }
        // The same (parent sid, label) relation the builder interns by.
        let mut edge: HashMap<(u32, Label), u32> = HashMap::with_capacity(nodes.len());
        for (sid, n) in nodes.iter().enumerate() {
            edge.insert((n.parent, n.label), sid as u32);
        }
        let mut sid_of = Vec::with_capacity(edited.len());
        sid_of.extend_from_slice(&self.sid_of[..at]);
        for i in at..at + inserted {
            let n = NodeId::from_index(i);
            // Ancestors precede descendants in preorder, so an inserted
            // node's parent sid is already in the rebuilt prefix.
            let parent_sid = edited.parent(n).map_or(u32::MAX, |p| sid_of[p.index()]);
            let sid = *edge.get(&(parent_sid, edited.label(n)))?;
            nodes[sid as usize].count += 1;
            sid_of.push(sid);
        }
        sid_of.extend_from_slice(&self.sid_of[at + removed..]);
        debug_assert_eq!(sid_of.len(), edited.len());
        if nodes.iter().any(|n| n.count == 0) {
            return None;
        }
        Some(PathSummary { nodes, children: self.children.clone(), sid_of })
    }
}

/// A set of summary ids, stored as a bitset (summaries are tiny, so a set
/// is a handful of words).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummarySet {
    bits: Vec<u64>,
}

impl SummarySet {
    /// The empty set, sized for a summary with `n` nodes.
    pub fn empty(n: usize) -> Self {
        SummarySet { bits: vec![0; n.div_ceil(64)] }
    }

    /// The full set over a summary with `n` nodes.
    pub fn full(n: usize) -> Self {
        let mut s = SummarySet::empty(n);
        for sid in 0..n as u32 {
            s.insert(sid);
        }
        s
    }

    /// Insert `sid`.
    #[inline]
    pub fn insert(&mut self, sid: u32) {
        let (w, b) = (sid as usize / 64, sid as usize % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1 << b;
    }

    /// True iff `sid` is in the set.
    #[inline]
    pub fn contains(&self, sid: u32) -> bool {
        let (w, b) = (sid as usize / 64, sid as usize % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// True iff no sid is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of sids in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Intersect with `other` in place.
    pub fn intersect(&mut self, other: &SummarySet) {
        for (i, w) in self.bits.iter_mut().enumerate() {
            *w &= other.bits.get(i).copied().unwrap_or(0);
        }
    }

    /// Union with `other` in place.
    pub fn union(&mut self, other: &SummarySet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (i, &w) in other.bits.iter().enumerate() {
            self.bits[i] |= w;
        }
    }

    /// Iterate the sids in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter(move |b| word & (1u64 << b) != 0).map(move |b| (w * 64 + b) as u32)
        })
    }

    /// Total element count of the set's paths under `summary`.
    pub fn element_count(&self, summary: SummaryRef<'_>) -> u64 {
        self.iter().map(|sid| summary.node(sid).count as u64).sum()
    }
}

/// Disjoint, document-ordered `(left, right)` spans covering every region
/// that could possibly contain a match — derived from the feasible
/// elements of the query's root node. Streams use it to gallop past the
/// gaps between spans (see [`crate::stream::PrunedStream`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionCover {
    spans: Vec<(u32, u32)>,
}

impl RegionCover {
    /// Cover from candidate root regions in document order: spans nested
    /// inside an earlier span are absorbed by it.
    pub fn from_regions<I: IntoIterator<Item = Region>>(regions: I) -> Self {
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for r in regions {
            match spans.last() {
                Some(&(_, right)) if r.left < right => {
                    debug_assert!(r.right < right, "regions must nest or follow");
                }
                _ => spans.push((r.left, r.right)),
            }
        }
        RegionCover { spans }
    }

    /// Cover from arbitrary `(left, right)` spans: sorted, with
    /// overlapping or nested spans merged. This is how a cover is built
    /// from summary-node region hulls, which may partially overlap.
    pub fn from_spans(mut spans: Vec<(u32, u32)>) -> Self {
        spans.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(spans.len());
        for (l, r) in spans {
            match merged.last_mut() {
                Some(last) if l <= last.1 => last.1 = last.1.max(r),
                _ => merged.push((l, r)),
            }
        }
        RegionCover { spans: merged }
    }

    /// The top-level spans, in document order.
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// True iff the cover has no spans (nothing can match).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::IndexedElement;
    use xmldom::parse;

    fn label_of<'d>(doc: &'d Document, s: &PathSummary, sid: u32) -> &'d str {
        doc.labels().name(s.node(sid).label)
    }

    #[test]
    fn distinct_paths_get_distinct_sids() {
        let doc = parse("<a><b><c/></b><b><c/><d/></b><c/></a>").unwrap();
        let s = PathSummary::build(&doc);
        // /a, /a/b, /a/b/c, /a/b/d, /a/c
        assert_eq!(s.len(), 5);
        let sids: Vec<u32> = doc.iter().map(|n| s.sid(n)).collect();
        // Both b's share a sid, as do both nested c's; the top-level c
        // differs from the nested ones.
        assert_eq!(sids[1], sids[3]);
        assert_eq!(sids[2], sids[4]);
        assert_ne!(sids[2], sids[6]);
        assert_eq!(s.node(sids[1]).count, 2);
        assert_eq!(s.node(sids[2]).count, 2);
        assert_eq!(s.node(sids[6]).count, 1);
    }

    #[test]
    fn recursive_treebank_style_nesting() {
        // Self-nested labels, TreeBank-style: each recursion depth is its
        // own path, so sids separate what label partitioning conflates.
        let doc = parse("<s><vp><s><vp><np/></vp></s><np/></vp></s>").unwrap();
        let s = PathSummary::build(&doc);
        // /s, /s/vp, /s/vp/s, /s/vp/s/vp, /s/vp/s/vp/np, /s/vp/np
        assert_eq!(s.len(), 6);
        let outer_s = s.sid(doc.root());
        let inner_s = s.sid(NodeId::from_index(2));
        assert_ne!(outer_s, inner_s);
        assert_eq!(label_of(&doc, &s, outer_s), "s");
        assert_eq!(label_of(&doc, &s, inner_s), "s");
        assert_eq!(s.node(inner_s).depth, 3);
        assert!(s.is_ancestor(outer_s, inner_s));
        assert!(!s.is_ancestor(inner_s, outer_s));
        // Spans: the outer s covers everything.
        let root = s.node(outer_s);
        assert_eq!((root.min_left, root.max_right), {
            let r = doc.region(doc.root());
            (r.left, r.right)
        });
    }

    #[test]
    fn depth_matches_region_level() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let s = PathSummary::build(&doc);
        for n in doc.iter() {
            assert_eq!(s.node(s.sid(n)).depth, doc.region(n).level);
        }
    }

    #[test]
    fn flattened_children_match_tree_structure() {
        let doc = parse("<a><b><c/></b><b><c/><d/></b><c/></a>").unwrap();
        let s = PathSummary::build(&doc);
        let root = s.sid(doc.root());
        // Root's children: /a/b and /a/c, in first-encountered order.
        let root_kids = s.children(root);
        assert_eq!(root_kids.len(), 2);
        for &k in root_kids {
            assert_eq!(s.node(k).parent(), Some(root));
        }
        // The view agrees with the owned accessors everywhere.
        let v = s.view();
        assert_eq!(v.len(), s.len());
        for sid in 0..s.len() as u32 {
            assert_eq!(v.children(sid), s.children(sid));
            assert_eq!(v.node(sid), s.node(sid));
        }
        assert_eq!(v.sids(), s.sids());
    }

    #[test]
    fn summary_set_ops() {
        let mut a = SummarySet::empty(70);
        assert!(a.is_empty());
        a.insert(0);
        a.insert(65);
        assert!(a.contains(0) && a.contains(65) && !a.contains(64));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 65]);
        let mut b = SummarySet::empty(70);
        b.insert(65);
        b.insert(3);
        let mut i = a.clone();
        i.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
        a.union(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(SummarySet::full(70).len(), 70);
    }

    #[test]
    fn region_cover_absorbs_nested_spans() {
        let cover = RegionCover::from_regions(vec![
            Region::new(1, 10, 1),
            Region::new(2, 5, 2), // nested in (1,10)
            Region::new(12, 20, 1),
        ]);
        assert_eq!(cover.spans(), &[(1, 10), (12, 20)]);
        assert!(RegionCover::from_regions(std::iter::empty()).is_empty());
    }

    #[test]
    fn region_cover_merges_overlapping_spans() {
        let cover = RegionCover::from_spans(vec![(20, 70), (1, 10), (5, 30), (80, 90)]);
        assert_eq!(cover.spans(), &[(1, 70), (80, 90)]);
        assert!(RegionCover::from_spans(Vec::new()).is_empty());
    }

    #[test]
    fn fingerprint_tracks_structure_not_size() {
        // Same label paths, different element counts and text: the schema
        // is identical, so the fingerprints must collide by design.
        let small = parse("<a><b><c/></b></a>").unwrap();
        let big = parse("<a><b><c/><c/></b><b><c/></b></a>").unwrap();
        let fp_small = PathSummary::build(&small).fingerprint(small.labels());
        let fp_big = PathSummary::build(&big).fingerprint(big.labels());
        assert_eq!(fp_small, fp_big);
        // A structural change (new path /a/b/d) moves the fingerprint.
        let other = parse("<a><b><c/><d/></b></a>").unwrap();
        assert_ne!(fp_small, PathSummary::build(&other).fingerprint(other.labels()));
        // So does the same label set arranged differently (/a/c vs /a/b/c).
        let flat = parse("<a><b/><c/></a>").unwrap();
        assert_ne!(fp_small, PathSummary::build(&flat).fingerprint(flat.labels()));
    }

    #[test]
    fn fingerprint_hashes_label_names_not_ids() {
        // Identical shape and identical numeric Label ids (0, 1, 2 in
        // both) — only the leaf *name* differs. Hashing ids would
        // collide here; hashing names must not.
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let renamed = parse("<a><b><d/></b></a>").unwrap();
        assert_ne!(
            PathSummary::build(&doc).fingerprint(doc.labels()),
            PathSummary::build(&renamed).fingerprint(renamed.labels()),
        );
    }

    #[test]
    fn indexed_element_sids_align() {
        let doc = parse("<a><b/><a><b/></a></a>").unwrap();
        let s = PathSummary::build(&doc);
        for n in doc.iter() {
            let e = IndexedElement { id: n, region: doc.region(n) };
            assert_eq!(s.sid(e.id), s.sids()[n.index()]);
        }
    }
}
