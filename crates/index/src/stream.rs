//! Label-partitioned element streams.
//!
//! Region-encoding-based twig joins (TwigStack, PathStack, Twig²Stack)
//! consume, per query node, a stream of the document elements carrying that
//! node's label, sorted by `LeftPos` (document order) — the classic
//! "element list" / posting-list access path [4, 23]. This module defines
//! the stream abstraction and the in-memory index; [`crate::disk`] provides
//! the same streams from an on-disk file with IO accounting.

use xmldom::{Document, Label, NodeId, Region};

/// One element as stored in an index: identity + region encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedElement {
    /// Document node id (pre-order ordinal).
    pub id: NodeId,
    /// Region encoding.
    pub region: Region,
}

/// Size of one serialized element record (see [`crate::disk`]).
pub const ELEMENT_RECORD_BYTES: usize = 16;

/// A cursor over one label's elements in document order.
///
/// The two operations mirror the access pattern of holistic twig joins:
/// inspect the current head, then advance past it.
pub trait ElemStream {
    /// The element at the head of the stream, or `None` at end.
    fn peek(&mut self) -> Option<IndexedElement>;

    /// Advance past the current head. No-op at end of stream.
    fn advance(&mut self);

    /// True iff the stream is exhausted.
    fn is_eof(&mut self) -> bool {
        self.peek().is_none()
    }

    /// Pop the head, if any.
    fn next_elem(&mut self) -> Option<IndexedElement> {
        let e = self.peek();
        if e.is_some() {
            self.advance();
        }
        e
    }
}

/// A stream over a borrowed, already-sorted slice.
#[derive(Debug, Clone)]
pub struct SliceStream<'a> {
    items: &'a [IndexedElement],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream over `items` (must be sorted by `region.left`).
    pub fn new(items: &'a [IndexedElement]) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0].region.left < w[1].region.left));
        SliceStream { items, pos: 0 }
    }

    /// Elements not yet consumed.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.pos
    }
}

impl ElemStream for SliceStream<'_> {
    fn peek(&mut self) -> Option<IndexedElement> {
        self.items.get(self.pos).copied()
    }

    fn advance(&mut self) {
        if self.pos < self.items.len() {
            self.pos += 1;
            // Stream consumption is the access-path "elements scanned"
            // unit of the baseline algorithms.
            twigobs::bump(twigobs::Counter::ElementsScanned);
        }
    }
}

/// An empty stream (for query labels absent from the document).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyStream;

impl ElemStream for EmptyStream {
    fn peek(&mut self) -> Option<IndexedElement> {
        None
    }
    fn advance(&mut self) {}
}

/// In-memory label-partitioned element index of one document.
#[derive(Debug, Clone)]
pub struct ElementIndex {
    /// Indexed by `Label::index()`.
    by_label: Vec<Vec<IndexedElement>>,
}

impl ElementIndex {
    /// Build the index in two document passes: a label histogram first, so
    /// every per-label vector is allocated at its exact final size, then a
    /// fill pass that never reallocates. Elements within each label list
    /// are in document order because node ids are pre-order ordinals.
    pub fn build(doc: &Document) -> Self {
        let _span = twigobs::span(twigobs::Phase::IndexBuild);
        let mut histogram = vec![0usize; doc.labels().len()];
        for n in doc.iter() {
            histogram[doc.label(n).index()] += 1;
        }
        let mut by_label: Vec<Vec<IndexedElement>> =
            histogram.iter().map(|&n| Vec::with_capacity(n)).collect();
        for n in doc.iter() {
            by_label[doc.label(n).index()].push(IndexedElement {
                id: n,
                region: doc.region(n),
            });
        }
        debug_assert!(
            by_label
                .iter()
                .zip(&histogram)
                .all(|(v, &n)| v.len() == n && v.capacity() == n),
            "second pass must fill exactly the pre-sized capacity"
        );
        ElementIndex { by_label }
    }

    /// All elements with `label`, in document order.
    pub fn elements(&self, label: Label) -> &[IndexedElement] {
        self.by_label
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A stream over the elements with `label`.
    pub fn stream(&self, label: Label) -> SliceStream<'_> {
        SliceStream::new(self.elements(label))
    }

    /// Number of elements stored for `label`.
    pub fn count(&self, label: Label) -> usize {
        self.elements(label).len()
    }

    /// Total elements that a scan of the given labels would read, and the
    /// number of bytes that scan would cost in the on-disk record format.
    /// This is the paper's IO-cost model for region-encoded algorithms.
    pub fn scan_cost(&self, labels: &[Label]) -> ScanCost {
        let elements: usize = labels.iter().map(|&l| self.count(l)).sum();
        ScanCost {
            elements,
            bytes: elements * ELEMENT_RECORD_BYTES,
        }
    }

    /// Number of labels the index covers.
    pub fn label_count(&self) -> usize {
        self.by_label.len()
    }
}

/// Cost of scanning a set of element streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCost {
    /// Total elements read.
    pub elements: usize,
    /// Total bytes read in the serialized record format.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn index_partitions_by_label_in_document_order() {
        let doc = parse("<a><b/><a><b/><b/></a><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let elems = idx.elements(b);
        assert_eq!(elems.len(), 3);
        assert!(elems.windows(2).all(|w| w[0].region.left < w[1].region.left));
        let a = doc.labels().get("a").unwrap();
        assert_eq!(idx.count(a), 2);
    }

    #[test]
    fn stream_iteration() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let mut s = idx.stream(b);
        assert!(!s.is_eof());
        assert_eq!(s.remaining(), 2);
        let first = s.next_elem().unwrap();
        let second = s.next_elem().unwrap();
        assert!(first.region.left < second.region.left);
        assert!(s.is_eof());
        assert_eq!(s.next_elem(), None);
        s.advance(); // advancing at EOF is a no-op
        assert!(s.is_eof());
    }

    #[test]
    fn build_pre_sizes_exactly() {
        let doc = parse("<a><b/><a><b/><b/></a><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        for label_ix in 0..idx.label_count() {
            let v = &idx.by_label[label_ix];
            assert_eq!(v.capacity(), v.len(), "label {label_ix} over-allocated");
        }
    }

    #[test]
    fn empty_stream() {
        let mut s = EmptyStream;
        assert!(s.is_eof());
        assert_eq!(s.next_elem(), None);
    }

    #[test]
    fn scan_cost_model() {
        let doc = parse("<a><b/><b/><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        let cost = idx.scan_cost(&[a, b]);
        assert_eq!(cost.elements, 3);
        assert_eq!(cost.bytes, 3 * ELEMENT_RECORD_BYTES);
    }
}
