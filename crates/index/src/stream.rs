//! Label-partitioned element streams.
//!
//! Region-encoding-based twig joins (TwigStack, PathStack, Twig²Stack)
//! consume, per query node, a stream of the document elements carrying that
//! node's label, sorted by `LeftPos` (document order) — the classic
//! "element list" / posting-list access path [4, 23]. This module defines
//! the stream abstraction and the in-memory index; [`crate::disk`] provides
//! the same streams from an on-disk file with IO accounting.

use crate::summary::{PathSummary, RegionCover, SummaryRef, SummarySet};
use std::collections::HashMap;
use std::fmt;
use std::io;
use twigobs::Counter;
use xmldom::{Document, EditDelta, Label, NodeId, Region};

/// An I/O failure that terminated a stream scan early.
///
/// In-memory streams never produce one; disk-backed streams turn a failed
/// record read into a `StreamError` that drivers surface via
/// [`ElemStream::take_error`]. Without that check a truncated or failing
/// index file would be indistinguishable from a clean end of stream — the
/// scan would simply stop short and the query would return a plausible
/// but wrong result.
#[derive(Debug)]
pub struct StreamError {
    /// What was being scanned when the read failed (typically the label
    /// segment name).
    pub context: String,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl StreamError {
    /// Wrap `source` with a description of the failed scan.
    pub fn new(context: impl Into<String>, source: io::Error) -> Self {
        StreamError { context: context.into(), source }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream read failed ({}): {}", self.context, self.source)
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One element as stored in an index: identity + region encoding.
///
/// `#[repr(C)]` with four `u32` fields (id, left, right, level) in
/// declaration order: exactly the 16-byte little-endian record the v3
/// mapped index stores, so a mapped elements section casts directly to
/// `&[IndexedElement]` (see [`crate::v3`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct IndexedElement {
    /// Document node id (pre-order ordinal).
    pub id: NodeId,
    /// Region encoding.
    pub region: Region,
}

/// Size of one serialized element record: id, left, right, level, and the
/// element's path-summary id (see [`crate::disk`]).
pub const ELEMENT_RECORD_BYTES: usize = 20;

/// Size of one mapped element record (v3): id, left, right, level — the
/// summary id lives in a parallel array there.
pub const ELEMENT_MAPPED_BYTES: usize = 16;

/// Elements per skip block: [`ElementIndex`] keeps the max `right` of each
/// aligned block of this many elements, so [`ElemStream::skip_to`] can
/// bypass whole blocks that end before the target position.
pub const SKIP_BLOCK: usize = 64;

/// Whether query-infeasible elements are filtered out of streams and
/// skip-scan is used. The default is on; turning it off restores the
/// full-scan behaviour for differential testing and A/B measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruningPolicy {
    /// Filter streams by feasible summary ids and gallop with `skip_to`.
    #[default]
    Enabled,
    /// Read full label streams (the pre-pruning behaviour).
    Disabled,
}

impl PruningPolicy {
    /// True for [`PruningPolicy::Enabled`].
    #[inline]
    pub fn is_enabled(self) -> bool {
        matches!(self, PruningPolicy::Enabled)
    }
}

/// A cursor over one label's elements in document order.
///
/// The two operations mirror the access pattern of holistic twig joins:
/// inspect the current head, then advance past it.
pub trait ElemStream {
    /// The element at the head of the stream, or `None` at end.
    fn peek(&mut self) -> Option<IndexedElement>;

    /// Advance past the current head. No-op at end of stream.
    fn advance(&mut self);

    /// True iff the stream is exhausted.
    fn is_eof(&mut self) -> bool {
        self.peek().is_none()
    }

    /// Pop the head, if any.
    fn next_elem(&mut self) -> Option<IndexedElement> {
        let e = self.peek();
        if e.is_some() {
            self.advance();
        }
        e
    }

    /// Discard every element whose region ends before `left`
    /// (`region.right < left`): afterwards the head, if any, is the first
    /// element that can contain or follow document position `left`.
    /// Returns the number of elements bypassed.
    ///
    /// This default walks the stream with [`advance`](Self::advance), so
    /// bypassed elements still count as scanned; skip-capable streams
    /// ([`PrunedStream`], the disk streams) override it to jump without
    /// delivering the skipped elements, counting them as pruned instead.
    fn skip_to(&mut self, left: u32) -> usize {
        let mut skipped = 0;
        while let Some(e) = self.peek() {
            if e.region.right >= left {
                break;
            }
            self.advance();
            skipped += 1;
        }
        skipped
    }

    /// Take the error that terminated this stream early, if any.
    ///
    /// A failing stream reports end-of-stream from [`peek`](Self::peek)
    /// (so drivers terminate cleanly) and parks the failure here; every
    /// indexed driver checks this after its scan and propagates the error
    /// instead of returning the truncated result. In-memory streams never
    /// fail, hence the default.
    fn take_error(&mut self) -> Option<StreamError> {
        None
    }
}

/// A stream over a borrowed, already-sorted slice.
#[derive(Debug, Clone)]
pub struct SliceStream<'a> {
    items: &'a [IndexedElement],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Stream over `items` (must be sorted by `region.left`).
    pub fn new(items: &'a [IndexedElement]) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0].region.left < w[1].region.left));
        SliceStream { items, pos: 0 }
    }

    /// Elements not yet consumed.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.pos
    }
}

impl ElemStream for SliceStream<'_> {
    fn peek(&mut self) -> Option<IndexedElement> {
        self.items.get(self.pos).copied()
    }

    fn advance(&mut self) {
        if self.pos < self.items.len() {
            self.pos += 1;
            // Stream consumption is the access-path "elements scanned"
            // unit of the baseline algorithms.
            twigobs::bump(twigobs::Counter::ElementsScanned);
        }
    }
}

/// An empty stream (for query labels absent from the document).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyStream;

impl ElemStream for EmptyStream {
    fn peek(&mut self) -> Option<IndexedElement> {
        None
    }
    fn advance(&mut self) {}
}

/// How [`ElementIndex::apply_edit`] produced the post-edit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditApply {
    /// Incrementally patched: only the changed labels' partitions were
    /// respliced and summary-id numbering is provably unchanged.
    Patched,
    /// Fully rebuilt from the edited document: summary ids may have been
    /// renumbered, so anything keyed on sids must be recomputed.
    Rebuilt,
}

/// In-memory label-partitioned element index of one document, plus the
/// document's path summary and the per-element summary ids that pruned
/// streams filter by.
#[derive(Debug, Clone)]
pub struct ElementIndex {
    /// Indexed by `Label::index()`.
    by_label: Vec<Vec<IndexedElement>>,
    /// Summary id per element, parallel to `by_label`.
    sids: Vec<Vec<u32>>,
    /// Per label: max `right` of each aligned [`SKIP_BLOCK`]-element
    /// block, the structure `skip_to` gallops over.
    blocks: Vec<Vec<u32>>,
    summary: PathSummary,
    /// Snapshot version: 0 for a fresh build, +1 per applied edit.
    version: u64,
}

impl ElementIndex {
    /// Build the index in two document passes: a label histogram first, so
    /// every per-label vector is allocated at its exact final size, then a
    /// fill pass that never reallocates. Elements within each label list
    /// are in document order because node ids are pre-order ordinals. The
    /// path summary is built alongside.
    pub fn build(doc: &Document) -> Self {
        let _span = twigobs::span(twigobs::Phase::IndexBuild);
        let summary = PathSummary::build(doc);
        let mut histogram = vec![0usize; doc.labels().len()];
        for n in doc.iter() {
            histogram[doc.label(n).index()] += 1;
        }
        let mut by_label: Vec<Vec<IndexedElement>> =
            histogram.iter().map(|&n| Vec::with_capacity(n)).collect();
        let mut sids: Vec<Vec<u32>> =
            histogram.iter().map(|&n| Vec::with_capacity(n)).collect();
        for n in doc.iter() {
            let ix = doc.label(n).index();
            by_label[ix].push(IndexedElement {
                id: n,
                region: doc.region(n),
            });
            sids[ix].push(summary.sid(n));
        }
        debug_assert!(
            by_label
                .iter()
                .zip(&histogram)
                .all(|(v, &n)| v.len() == n && v.capacity() == n),
            "second pass must fill exactly the pre-sized capacity"
        );
        let blocks = by_label.iter().map(|v| skip_blocks(v)).collect();
        ElementIndex { by_label, sids, blocks, summary, version: 0 }
    }

    /// Monotone snapshot version of this index: 0 when freshly
    /// [`build`](Self::build)t, incremented by every
    /// [`apply_edit`](Self::apply_edit) (patched or rebuilt alike).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Index of `edited` after one applied edit, produced incrementally
    /// when possible.
    ///
    /// The patch path shifts surviving node ids (the splice moves every
    /// later preorder ordinal by `delta.id_shift()`), splices only the
    /// changed labels' partitions — the removed elements are one
    /// contiguous id run because a subtree is contiguous in preorder, and
    /// the incoming elements land in one region gap, so each partition
    /// takes a single `splice` at one position — recomputes those labels'
    /// skip-block tables, and patches the path summary in place. It falls
    /// back to a full [`build`](Self::build) whenever the patch cannot
    /// provably reproduce one: the edit renumbered the document, put a
    /// node on a never-seen label path, emptied a path, or reordered path
    /// first-occurrences (sid numbering is first-occurrence order).
    /// Either way the result is indistinguishable from
    /// `ElementIndex::build(edited)` except for the version counter, and
    /// the structural work done is metered by
    /// [`Counter::EditElementsReindexed`] (a full rebuild meters
    /// `edited.len()`).
    ///
    /// The returned [`EditApply`] tells the caller which path ran — the
    /// distinction matters upstream because a patch provably preserves
    /// summary-id numbering (cached plans keyed on disjoint labels stay
    /// valid) while a rebuild may renumber sids (every cached plan is
    /// stale).
    pub fn apply_edit(&self, edited: &Document, delta: &EditDelta) -> (ElementIndex, EditApply) {
        let version = self.version + 1;
        match self.try_patch(edited, delta) {
            Some(mut ix) => {
                ix.version = version;
                (ix, EditApply::Patched)
            }
            None => {
                twigobs::add(Counter::EditElementsReindexed, edited.len() as u64);
                let mut ix = ElementIndex::build(edited);
                ix.version = version;
                (ix, EditApply::Rebuilt)
            }
        }
    }

    /// The incremental half of [`apply_edit`](Self::apply_edit); `None`
    /// means "fall back to a full rebuild".
    pub(crate) fn try_patch(&self, edited: &Document, delta: &EditDelta) -> Option<ElementIndex> {
        if delta.renumbered {
            return None;
        }
        let (at, removed, inserted) =
            (delta.at as usize, delta.removed as usize, delta.inserted as usize);
        let end = at + removed;
        let shift = delta.id_shift();
        let mut summary = self.summary.try_patch(edited, at, removed, inserted)?;

        // Group the spliced-in elements by label; preorder iteration keeps
        // every group in id (= document) order.
        let mut incoming: HashMap<usize, (Vec<IndexedElement>, Vec<u32>)> = HashMap::new();
        for i in at..at + inserted {
            let n = NodeId::from_index(i);
            let (elems, elem_sids) = incoming.entry(edited.label(n).index()).or_default();
            elems.push(IndexedElement { id: n, region: edited.region(n) });
            elem_sids.push(summary.sid(n));
        }

        let mut by_label = self.by_label.clone();
        let mut sids = self.sids.clone();
        let mut blocks = self.blocks.clone();
        // The edit may have interned labels this index has never seen
        // (on a path it *has* seen — otherwise the summary patch bailed).
        let n_labels = edited.labels().len();
        by_label.resize_with(n_labels, Vec::new);
        sids.resize_with(n_labels, Vec::new);
        blocks.resize_with(n_labels, Vec::new);

        let changed: Vec<usize> = delta.changed_labels.iter().map(|l| l.index()).collect();
        let mut reindexed = 0u64;
        for ix in 0..n_labels {
            let part = &mut by_label[ix];
            if changed.contains(&ix) {
                let lo = part.partition_point(|e| e.id.index() < at);
                let hi = part.partition_point(|e| e.id.index() < end);
                let (ins, ins_sids) = incoming.remove(&ix).unwrap_or_default();
                reindexed += (hi - lo) as u64 + ins.len() as u64;
                for e in &mut part[hi..] {
                    e.id = shifted(e.id, shift);
                }
                part.splice(lo..hi, ins);
                sids[ix].splice(lo..hi, ins_sids);
                blocks[ix] = skip_blocks(part);
            } else if shift != 0 {
                // Untouched label: regions (hence blocks) are unchanged,
                // only the preorder ordinals past the splice move.
                let lo = part.partition_point(|e| e.id.index() < end);
                for e in &mut part[lo..] {
                    e.id = shifted(e.id, shift);
                }
            }
        }

        // Recompute the region hulls of every path the splice touched from
        // the patched partitions (a removal can shrink a hull; the count
        // arithmetic in the summary patch cannot know by how much). Gap
        // allocation never moves an enclosing region, so paths without
        // spliced elements keep their hulls.
        let affected: Vec<u32> = {
            let mut sids_touched: Vec<u32> = self.summary.sids()[at..end]
                .iter()
                .chain(&summary.sids()[at..at + inserted])
                .copied()
                .collect();
            sids_touched.sort_unstable();
            sids_touched.dedup();
            sids_touched
        };
        let mut scan_by_label: HashMap<usize, Vec<u32>> = HashMap::new();
        for &sid in &affected {
            scan_by_label.entry(summary.node(sid).label.index()).or_default().push(sid);
        }
        for (ix, label_sids) in scan_by_label {
            reindexed += by_label[ix].len() as u64;
            let mut hulls: HashMap<u32, (u32, u32)> =
                label_sids.iter().map(|&s| (s, (u32::MAX, 0))).collect();
            for (e, &s) in by_label[ix].iter().zip(&sids[ix]) {
                if let Some(h) = hulls.get_mut(&s) {
                    h.0 = h.0.min(e.region.left);
                    h.1 = h.1.max(e.region.right);
                }
            }
            for (s, h) in hulls {
                let node = summary.node_mut(s);
                node.min_left = h.0;
                node.max_right = h.1;
            }
        }

        // Sid numbering is first-occurrence (= min-left) order; an edit
        // that reorders first occurrences — deleting the earliest element
        // of one path so another path now appears first — would make a
        // fresh build number the sids differently.
        if !summary.nodes().windows(2).all(|w| w[0].min_left < w[1].min_left) {
            return None;
        }
        twigobs::add(Counter::EditElementsReindexed, reindexed);
        Some(ElementIndex { by_label, sids, blocks, summary, version: 0 })
    }

    /// All elements with `label`, in document order.
    pub fn elements(&self, label: Label) -> &[IndexedElement] {
        self.by_label
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A stream over the elements with `label`.
    pub fn stream(&self, label: Label) -> SliceStream<'_> {
        SliceStream::new(self.elements(label))
    }

    /// Number of elements stored for `label`.
    pub fn count(&self, label: Label) -> usize {
        self.elements(label).len()
    }

    /// Total elements that a scan of the given labels would read, and the
    /// number of bytes that scan would cost in the on-disk record format.
    /// This is the paper's IO-cost model for region-encoded algorithms.
    pub fn scan_cost(&self, labels: &[Label]) -> ScanCost {
        let elements: usize = labels.iter().map(|&l| self.count(l)).sum();
        ScanCost {
            elements,
            bytes: elements * ELEMENT_RECORD_BYTES,
        }
    }

    /// Number of labels the index covers.
    pub fn label_count(&self) -> usize {
        self.by_label.len()
    }

    /// Borrowed view of the document's path summary.
    pub fn summary(&self) -> SummaryRef<'_> {
        self.summary.view()
    }

    /// The owned path summary (the view in [`summary`](Self::summary) is
    /// what consumers want; this is for serialization).
    pub fn path_summary(&self) -> &PathSummary {
        &self.summary
    }

    /// Summary ids of the elements with `label`, parallel to
    /// [`elements`](Self::elements).
    pub fn sids(&self, label: Label) -> &[u32] {
        self.sids.get(label.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Per-block max-`right` table for `label` ([`SKIP_BLOCK`]-element
    /// blocks), parallel to [`elements`](Self::elements).
    pub fn blocks(&self, label: Label) -> &[u32] {
        self.blocks.get(label.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total heap bytes held by the index's posting, sid, and block
    /// arrays (the payload a mapped v3 index avoids materializing).
    pub fn heap_bytes(&self) -> usize {
        let elems: usize = self.by_label.iter().map(|v| v.len() * ELEMENT_MAPPED_BYTES).sum();
        let sids: usize = self.sids.iter().map(|v| v.len() * 4).sum();
        let blocks: usize = self.blocks.iter().map(|v| v.len() * 4).sum();
        elems + sids + blocks
    }

    /// A pruned, skip-capable stream over the elements with `label`.
    /// `filter` drops elements whose summary id is infeasible; `cover`
    /// gallops past gaps between candidate root regions. Pass `None` for
    /// both to get full-scan behaviour with skip support.
    pub fn pruned_stream<'a>(
        &'a self,
        label: Label,
        filter: Option<&'a SummarySet>,
        cover: Option<&'a RegionCover>,
    ) -> PrunedStream<'a> {
        let ix = label.index();
        let (items, sids, blocks) = match self.by_label.get(ix) {
            Some(v) => (v.as_slice(), self.sids[ix].as_slice(), self.blocks[ix].as_slice()),
            None => (&[][..], &[][..], &[][..]),
        };
        PrunedStream::borrowed(items, sids, blocks, filter, cover)
    }
}

/// Read-only access-path surface shared by the heap [`ElementIndex`] and
/// the zero-copy [`MappedIndex`](crate::v3::MappedIndex).
///
/// Everything the engines need — label-partitioned posting slices, the
/// parallel summary-id and block-max arrays, and the path-summary view —
/// is exposed as borrowed slices, so a generic driver cannot tell whether
/// the bytes live on the heap or in a mapped file. The stream
/// constructors are provided methods: both backends produce the *same*
/// [`SliceStream`]/[`PrunedStream`] types over their slices, which is the
/// whole trick behind "all four engines run zero-copy".
pub trait IndexView {
    /// All elements with `label`, in document order.
    fn elements(&self, label: Label) -> &[IndexedElement];

    /// Summary ids of the elements with `label`, parallel to
    /// [`elements`](Self::elements).
    fn sids(&self, label: Label) -> &[u32];

    /// Per-block max-`right` table for `label` ([`SKIP_BLOCK`]-element
    /// blocks), parallel to [`elements`](Self::elements).
    fn blocks(&self, label: Label) -> &[u32];

    /// Borrowed view of the document's path summary.
    fn summary(&self) -> SummaryRef<'_>;

    /// Number of labels the index covers.
    fn label_count(&self) -> usize;

    /// Monotone snapshot version of this index: distinguishes successive
    /// index generations of the same logical document as it is edited.
    /// Freshly built or opened indexes are version 0, and backends that
    /// cannot be edited in place (the read-only mapped v3 index) stay
    /// there; [`ElementIndex::apply_edit`] bumps it. Plan caches key
    /// validity on this, so a plan computed against one snapshot is never
    /// replayed verbatim against a structurally different one.
    fn snapshot_version(&self) -> u64 {
        0
    }

    /// Number of elements stored for `label`.
    fn count(&self, label: Label) -> usize {
        self.elements(label).len()
    }

    /// A stream over the elements with `label`.
    fn stream(&self, label: Label) -> SliceStream<'_> {
        SliceStream::new(self.elements(label))
    }

    /// Total elements that a scan of the given labels would read, and the
    /// number of bytes that scan would cost in the on-disk record format.
    fn scan_cost(&self, labels: &[Label]) -> ScanCost {
        let elements: usize = labels.iter().map(|&l| self.count(l)).sum();
        ScanCost {
            elements,
            bytes: elements * ELEMENT_RECORD_BYTES,
        }
    }

    /// A pruned, skip-capable stream over the elements with `label` (see
    /// [`ElementIndex::pruned_stream`]).
    fn pruned_stream<'a>(
        &'a self,
        label: Label,
        filter: Option<&'a SummarySet>,
        cover: Option<&'a RegionCover>,
    ) -> PrunedStream<'a> {
        PrunedStream::borrowed(
            self.elements(label),
            self.sids(label),
            self.blocks(label),
            filter,
            cover,
        )
    }
}

impl IndexView for ElementIndex {
    fn elements(&self, label: Label) -> &[IndexedElement] {
        ElementIndex::elements(self, label)
    }
    fn sids(&self, label: Label) -> &[u32] {
        ElementIndex::sids(self, label)
    }
    fn blocks(&self, label: Label) -> &[u32] {
        ElementIndex::blocks(self, label)
    }
    fn summary(&self) -> SummaryRef<'_> {
        ElementIndex::summary(self)
    }
    fn label_count(&self) -> usize {
        ElementIndex::label_count(self)
    }
    fn snapshot_version(&self) -> u64 {
        ElementIndex::version(self)
    }
}

/// True iff a summary filter that keeps `covered` of a label's `total`
/// postings is worth applying.
///
/// When the feasible paths cover (nearly) all of a label's postings, the
/// per-element sid test costs more than the handful of elements it drops
/// — the XMark-Q2 regression: every `person` path was feasible, yet every
/// element still paid the bitset probe. Since feasible sets are
/// over-approximations, *widening* a filter (up to dropping it entirely)
/// never changes results, so planners skip the filter unless it prunes at
/// least 1/16 of the postings.
pub fn filter_worthwhile(covered: u64, total: u64) -> bool {
    covered.saturating_mul(16) <= total.saturating_mul(15)
}

/// `id` moved by the signed preorder shift of a splice.
#[inline]
fn shifted(id: NodeId, shift: i64) -> NodeId {
    NodeId::from_index((id.index() as i64 + shift) as usize)
}

/// Max `right` of each aligned [`SKIP_BLOCK`]-element block of `items`.
fn skip_blocks(items: &[IndexedElement]) -> Vec<u32> {
    items
        .chunks(SKIP_BLOCK)
        .map(|c| c.iter().map(|e| e.region.right).max().unwrap_or(0))
        .collect()
}

enum Backing<'a> {
    /// Slices borrowed from an [`ElementIndex`] label partition.
    Borrowed {
        items: &'a [IndexedElement],
        sids: &'a [u32],
        blocks: &'a [u32],
    },
    /// A materialized (merged and already sid-filtered) element list, as
    /// built for wildcard query nodes.
    Owned {
        items: Vec<IndexedElement>,
        blocks: Vec<u32>,
    },
}

impl Backing<'_> {
    #[inline]
    fn items(&self) -> &[IndexedElement] {
        match self {
            Backing::Borrowed { items, .. } => items,
            Backing::Owned { items, .. } => items,
        }
    }

    #[inline]
    fn sid_at(&self, pos: usize) -> Option<u32> {
        match self {
            Backing::Borrowed { sids, .. } => sids.get(pos).copied(),
            Backing::Owned { .. } => None,
        }
    }

    #[inline]
    fn blocks(&self) -> &[u32] {
        match self {
            Backing::Borrowed { blocks, .. } => blocks,
            Backing::Owned { blocks, .. } => blocks,
        }
    }
}

/// A summary-pruned, skip-capable element stream.
///
/// Elements whose summary id is outside the feasibility `filter` are
/// discarded without being delivered (counted as `elements_pruned`, not
/// `elements_scanned`), and gaps between the `cover`'s candidate root
/// regions are galloped over with exponential + binary search rather than
/// element-by-element reads. With both knobs `None` the stream behaves
/// like [`SliceStream`] plus a fast [`skip_to`](ElemStream::skip_to).
pub struct PrunedStream<'a> {
    backing: Backing<'a>,
    filter: Option<&'a SummarySet>,
    cover: Option<&'a RegionCover>,
    pos: usize,
    cover_pos: usize,
}

impl<'a> PrunedStream<'a> {
    /// Stream over index-owned slices (see [`ElementIndex::pruned_stream`]).
    pub fn borrowed(
        items: &'a [IndexedElement],
        sids: &'a [u32],
        blocks: &'a [u32],
        filter: Option<&'a SummarySet>,
        cover: Option<&'a RegionCover>,
    ) -> Self {
        debug_assert!(filter.is_none() || sids.len() == items.len());
        PrunedStream {
            backing: Backing::Borrowed { items, sids, blocks },
            filter,
            cover,
            pos: 0,
            cover_pos: 0,
        }
    }

    /// Stream over a materialized element list (already sid-filtered), as
    /// built for wildcard query nodes; must be sorted by `region.left`.
    pub fn owned(items: Vec<IndexedElement>, cover: Option<&'a RegionCover>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0].region.left < w[1].region.left));
        let blocks = skip_blocks(&items);
        PrunedStream {
            backing: Backing::Owned { items, blocks },
            filter: None,
            cover,
            pos: 0,
            cover_pos: 0,
        }
    }

    /// Elements at or after the cursor, before any filtering.
    pub fn raw_remaining(&self) -> usize {
        self.backing.items().len() - self.pos
    }

    /// Discard the prefix that the summary filter or cover rules out, so
    /// the cursor rests on the next deliverable element (or EOF).
    fn settle(&mut self) -> Option<IndexedElement> {
        loop {
            let items = self.backing.items();
            let e = *items.get(self.pos)?;
            if let Some(f) = self.filter {
                if let Some(sid) = self.backing.sid_at(self.pos) {
                    if !f.contains(sid) {
                        self.pos += 1;
                        twigobs::bump(Counter::ElementsPruned);
                        continue;
                    }
                }
            }
            if let Some(cover) = self.cover {
                let spans = cover.spans();
                while self.cover_pos < spans.len() && spans[self.cover_pos].1 < e.region.left {
                    self.cover_pos += 1;
                }
                match spans.get(self.cover_pos) {
                    None => {
                        // Past the last candidate region: nothing further
                        // on this stream can participate in a match.
                        let skipped = items.len() - self.pos;
                        self.pos = items.len();
                        record_skip(skipped);
                        return None;
                    }
                    Some(&(start, _)) if e.region.left < start => {
                        // In a gap between candidate regions: gallop to
                        // the first element inside the next one.
                        let target = gallop_left(items, self.pos, start);
                        record_skip(target - self.pos);
                        self.pos = target;
                        continue;
                    }
                    Some(_) => {}
                }
            }
            return Some(e);
        }
    }
}

/// Record `skipped` bypassed elements as pruned plus one skip event.
fn record_skip(skipped: usize) {
    if skipped > 0 {
        twigobs::add(Counter::ElementsPruned, skipped as u64);
        twigobs::bump(Counter::StreamSkips);
    }
}

/// First index `>= lo` whose element has `region.left >= target`, found by
/// exponential probing then binary search (the XB-tree-style jump, minus
/// the tree: the arrays are already document-ordered).
fn gallop_left(items: &[IndexedElement], lo: usize, target: u32) -> usize {
    let mut step = 1;
    let mut hi = lo;
    while hi < items.len() && items[hi].region.left < target {
        hi += step;
        step *= 2;
    }
    let hi = hi.min(items.len());
    lo + items[lo..hi].partition_point(|e| e.region.left < target)
}

impl ElemStream for PrunedStream<'_> {
    fn peek(&mut self) -> Option<IndexedElement> {
        self.settle()
    }

    fn advance(&mut self) {
        if self.settle().is_some() {
            self.pos += 1;
            twigobs::bump(Counter::ElementsScanned);
        }
    }

    /// Gallop to the first element with `region.right >= left`, bypassing
    /// whole blocks via the per-block max-right table. Bypassed elements
    /// count as pruned, not scanned.
    ///
    /// Two-level branchless search: a chunked scan of the block-max table
    /// first (the table is *not* monotonic, so this is a linear scan — but
    /// eight comparisons per iteration with no early exit, which LLVM
    /// autovectorizes), then within the first candidate block a binary
    /// search by `left` caps the range (`e.left >= left ⇒ e.right > left`)
    /// and the same chunked scan finds the first qualifying `right`. The
    /// cursor's partial first block is probed by its block max too — the
    /// max over the whole block bounds the max over its suffix — and a
    /// candidate block may turn up empty when all its qualifying elements
    /// lie before the cursor, in which case the search resumes at the next
    /// block.
    fn skip_to(&mut self, left: u32) -> usize {
        let items = self.backing.items();
        let blocks = self.backing.blocks();
        let start = self.pos;
        let mut pos = self.pos;
        while pos < items.len() {
            let b = first_block_with_max_ge(blocks, pos / SKIP_BLOCK, left);
            if b >= blocks.len() {
                pos = items.len();
                break;
            }
            let lo = pos.max(b * SKIP_BLOCK);
            let hi = ((b + 1) * SKIP_BLOCK).min(items.len());
            if let Some(j) = first_right_ge(&items[lo..hi], left) {
                pos = lo + j;
                break;
            }
            pos = hi;
        }
        let skipped = pos - start;
        self.pos = pos;
        record_skip(skipped);
        skipped
    }
}

/// Width of the branchless comparison chunks in the two-level skip scan:
/// each iteration folds this many `u32` comparisons into a bitmask with no
/// data-dependent branch, so LLVM vectorizes the loop body.
const SKIP_CHUNK: usize = 8;

/// First index `>= from` whose block max is `>= left`, or `blocks.len()`.
#[inline]
fn first_block_with_max_ge(blocks: &[u32], from: usize, left: u32) -> usize {
    let mut i = from.min(blocks.len());
    while i + SKIP_CHUNK <= blocks.len() {
        let mut mask = 0u32;
        for k in 0..SKIP_CHUNK {
            mask |= u32::from(blocks[i + k] >= left) << k;
        }
        if mask != 0 {
            return i + mask.trailing_zeros() as usize;
        }
        i += SKIP_CHUNK;
    }
    while i < blocks.len() && blocks[i] < left {
        i += 1;
    }
    i
}

/// First index of `items` with `region.right >= left`, if any.
///
/// `items` is one block's (suffix of) elements, ordered by `left`. The
/// binary search by `left` bounds the scan: every element at or past the
/// partition has `left >= left`, hence `right > left`, so the partition
/// point itself qualifies if it is in range and only the (non-monotonic)
/// rights before it need scanning.
#[inline]
fn first_right_ge(items: &[IndexedElement], left: u32) -> Option<usize> {
    let cap = items.partition_point(|e| e.region.left < left);
    let mut i = 0;
    while i + SKIP_CHUNK <= cap {
        let mut mask = 0u32;
        for k in 0..SKIP_CHUNK {
            mask |= u32::from(items[i + k].region.right >= left) << k;
        }
        if mask != 0 {
            return Some(i + mask.trailing_zeros() as usize);
        }
        i += SKIP_CHUNK;
    }
    while i < cap {
        if items[i].region.right >= left {
            return Some(i);
        }
        i += 1;
    }
    (cap < items.len()).then_some(cap)
}

/// Cost of scanning a set of element streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCost {
    /// Total elements read.
    pub elements: usize,
    /// Total bytes read in the serialized record format.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn index_partitions_by_label_in_document_order() {
        let doc = parse("<a><b/><a><b/><b/></a><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let elems = idx.elements(b);
        assert_eq!(elems.len(), 3);
        assert!(elems.windows(2).all(|w| w[0].region.left < w[1].region.left));
        let a = doc.labels().get("a").unwrap();
        assert_eq!(idx.count(a), 2);
    }

    #[test]
    fn stream_iteration() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let mut s = idx.stream(b);
        assert!(!s.is_eof());
        assert_eq!(s.remaining(), 2);
        let first = s.next_elem().unwrap();
        let second = s.next_elem().unwrap();
        assert!(first.region.left < second.region.left);
        assert!(s.is_eof());
        assert_eq!(s.next_elem(), None);
        s.advance(); // advancing at EOF is a no-op
        assert!(s.is_eof());
    }

    #[test]
    fn build_pre_sizes_exactly() {
        let doc = parse("<a><b/><a><b/><b/></a><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        for label_ix in 0..idx.label_count() {
            let v = &idx.by_label[label_ix];
            assert_eq!(v.capacity(), v.len(), "label {label_ix} over-allocated");
        }
    }

    #[test]
    fn empty_stream() {
        let mut s = EmptyStream;
        assert!(s.is_eof());
        assert_eq!(s.next_elem(), None);
    }

    #[test]
    fn skip_to_edge_cases() {
        let doc = parse("<a><b/><b/><b/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        // Empty stream: skipping is a no-op.
        let mut e = EmptyStream;
        assert_eq!(e.skip_to(100), 0);
        assert!(e.is_eof());
        // Skip to the current head: nothing bypassed, head unchanged.
        let mut s = idx.pruned_stream(b, None, None);
        let head = s.peek().unwrap();
        assert_eq!(s.skip_to(head.region.left), 0);
        assert_eq!(s.peek(), Some(head));
        // Skip past the end, then again at EOF.
        let n = s.raw_remaining();
        assert_eq!(s.skip_to(u32::MAX), n);
        assert!(s.is_eof());
        assert_eq!(s.skip_to(u32::MAX), 0);
        // The default (SliceStream) implementation agrees.
        let mut s = idx.stream(b);
        assert_eq!(s.skip_to(head.region.left), 0);
        assert_eq!(s.skip_to(u32::MAX), n);
        assert!(s.is_eof());
    }

    #[test]
    fn skip_to_keeps_spanning_ancestors() {
        // Skipping to the second inner <a> must keep the root <a> (its
        // region spans the target) while dropping the first inner one.
        let doc = parse("<a><a><c/></a><a><c/></a></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let a = doc.labels().get("a").unwrap();
        let elems = idx.elements(a);
        let target = elems[2].region.left;
        let mut s = idx.pruned_stream(a, None, None);
        assert_eq!(s.skip_to(target), 0, "root spans the target");
        assert_eq!(s.next_elem().unwrap().id, elems[0].id);
        assert_eq!(s.skip_to(target), 1, "first inner a ends before it");
        assert_eq!(s.peek().unwrap().id, elems[2].id);
    }

    #[test]
    fn skip_to_gallops_over_blocks() {
        let mut xml = String::from("<a>");
        for _ in 0..(3 * SKIP_BLOCK + 7) {
            xml.push_str("<b/>");
        }
        xml.push_str("<c/></a>");
        let doc = parse(&xml).unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let c = doc.labels().get("c").unwrap();
        let target = idx.elements(c)[0].region.left;
        let mut s = idx.pruned_stream(b, None, None);
        assert_eq!(s.skip_to(target), 3 * SKIP_BLOCK + 7);
        assert!(s.is_eof());
    }

    #[test]
    fn skip_to_keeps_element_ending_exactly_at_target() {
        // Equal-boundary case: an element whose `right` equals the target
        // `left` must be delivered (`right >= left` keeps it), and a block
        // whose max-right equals the target must NOT be galloped over
        // (the block-max test is strictly `bmax < left`). Sized so the
        // boundary element is the last entry of the first skip block.
        let mut xml = String::from("<a>");
        for _ in 0..(2 * SKIP_BLOCK) {
            xml.push_str("<b/>");
        }
        xml.push_str("</a>");
        let doc = parse(&xml).unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let elems = idx.elements(b);
        let boundary = elems[SKIP_BLOCK - 1];
        // Siblings in document order: the first block's max-right is its
        // last element's right, so the target sits exactly on the block max.
        assert_eq!(idx.blocks[b.index()][0], boundary.region.right);
        let mut s = idx.pruned_stream(b, None, None);
        assert_eq!(s.skip_to(boundary.region.right), SKIP_BLOCK - 1);
        assert_eq!(s.peek().unwrap().id, boundary.id, "boundary element kept");
        // One past the block max: the whole first block is now skippable.
        let mut s = idx.pruned_stream(b, None, None);
        assert_eq!(s.skip_to(boundary.region.right + 1), SKIP_BLOCK);
        assert_eq!(s.peek().unwrap().id, elems[SKIP_BLOCK].id);
    }

    #[test]
    fn skip_to_after_exhaustion_is_a_noop() {
        // Exhaustion case on the block-max path: once the cursor is past
        // the last element, further skips (of any target) bypass nothing
        // and the stream stays at EOF.
        let mut xml = String::from("<a>");
        for _ in 0..(SKIP_BLOCK + 5) {
            xml.push_str("<b/>");
        }
        xml.push_str("</a>");
        let doc = parse(&xml).unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let mut s = idx.pruned_stream(b, None, None);
        assert_eq!(s.skip_to(u32::MAX), SKIP_BLOCK + 5);
        assert!(s.is_eof());
        for target in [0, 1, u32::MAX] {
            assert_eq!(s.skip_to(target), 0, "skip_to({target}) after EOF");
            assert!(s.is_eof());
        }
        s.advance();
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn in_memory_streams_take_no_error() {
        let doc = parse("<a><b/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let mut s = idx.stream(b);
        while s.next_elem().is_some() {}
        assert!(s.take_error().is_none());
        let mut p = idx.pruned_stream(b, None, None);
        assert!(p.take_error().is_none());
        assert!(EmptyStream.take_error().is_none());
    }

    #[test]
    fn pruned_stream_filters_by_sid() {
        let doc = parse("<a><b><c/></b><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let c = doc.labels().get("c").unwrap();
        let nested = NodeId::from_index(2); // the c under b
        let mut keep = SummarySet::empty(idx.summary().len());
        keep.insert(idx.summary().sid(nested));
        let mut s = idx.pruned_stream(c, Some(&keep), None);
        assert_eq!(s.next_elem().unwrap().id, nested);
        assert!(s.is_eof());
    }

    #[test]
    fn pruned_stream_cover_gallops_past_gaps() {
        let doc = parse("<r><a><b/></a><x><b/></x><a><b/></a></r>").unwrap();
        let idx = ElementIndex::build(&doc);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        let cover = RegionCover::from_regions(idx.elements(a).iter().map(|e| e.region));
        assert_eq!(cover.spans().len(), 2);
        let mut s = idx.pruned_stream(b, None, Some(&cover));
        let delivered: Vec<NodeId> = std::iter::from_fn(|| s.next_elem()).map(|e| e.id).collect();
        // The b under x falls in the gap between the two a regions.
        assert_eq!(delivered, vec![NodeId::from_index(2), NodeId::from_index(6)]);
    }

    #[test]
    fn owned_pruned_stream_streams_in_order() {
        let doc = parse("<a><b/><c/><b/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let mut merged: Vec<IndexedElement> = Vec::new();
        for name in ["b", "c"] {
            let l = doc.labels().get(name).unwrap();
            merged.extend_from_slice(idx.elements(l));
        }
        merged.sort_by_key(|e| e.region.left);
        let mut s = PrunedStream::owned(merged.clone(), None);
        let out: Vec<IndexedElement> = std::iter::from_fn(|| s.next_elem()).collect();
        assert_eq!(out, merged);
    }

    #[test]
    fn scan_cost_model() {
        let doc = parse("<a><b/><b/><c/></a>").unwrap();
        let idx = ElementIndex::build(&doc);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        let cost = idx.scan_cost(&[a, b]);
        assert_eq!(cost.elements, 3);
        assert_eq!(cost.bytes, 3 * ELEMENT_RECORD_BYTES);
    }

    mod edits {
        use super::*;
        use xmldom::{apply_op, Document, EditOp, NodeId};

        /// Byte-for-byte equality of two indexes over the same document
        /// (modulo the version counter).
        fn assert_same_index(patched: &ElementIndex, rebuilt: &ElementIndex, doc: &Document) {
            assert_eq!(patched.label_count(), rebuilt.label_count());
            for ix in 0..doc.labels().len() {
                let l = Label::from_index(ix);
                assert_eq!(patched.elements(l), rebuilt.elements(l), "label {ix} elements");
                assert_eq!(patched.sids(l), rebuilt.sids(l), "label {ix} sids");
                assert_eq!(patched.blocks(l), rebuilt.blocks(l), "label {ix} blocks");
            }
            assert_eq!(patched.path_summary(), rebuilt.path_summary());
        }

        /// A document with gap headroom: one renumbering insert up front.
        fn gapped(xml: &str) -> Document {
            let base = parse(xml).unwrap();
            let sub = parse("<pad/>").unwrap();
            let (doc, delta) = apply_op(
                &base,
                &EditOp::InsertSubtree { parent: Some(base.root()), position: 0, subtree: sub },
            )
            .unwrap();
            assert!(delta.renumbered);
            doc
        }

        #[test]
        fn gap_fitting_insert_patches_incrementally() {
            let doc = gapped("<a><b><c/></b><b/></a>");
            let idx = ElementIndex::build(&doc);
            let b = doc.children(doc.root()).nth(1).unwrap();
            let (edited, delta) = apply_op(
                &doc,
                &EditOp::InsertSubtree {
                    parent: Some(b),
                    position: 1,
                    subtree: parse("<c/>").unwrap(),
                },
            )
            .unwrap();
            assert!(!delta.renumbered);
            let patched = idx.try_patch(&edited, &delta).expect("gap edit must patch");
            assert_same_index(&patched, &ElementIndex::build(&edited), &edited);
        }

        #[test]
        fn delete_patches_incrementally_and_shrinks_hulls() {
            let doc = gapped("<a><b><c/></b><b><c/></b></a>");
            let idx = ElementIndex::build(&doc);
            // Delete the LAST b subtree: /a/b and /a/b/c keep their first
            // occurrences, so the patch path applies; the hulls shrink.
            let last_b = doc.children(doc.root()).nth(2).unwrap();
            let (edited, delta) = apply_op(&doc, &EditOp::DeleteSubtree { target: last_b }).unwrap();
            assert!(!delta.renumbered);
            let patched = idx.try_patch(&edited, &delta).expect("delete must patch");
            let rebuilt = ElementIndex::build(&edited);
            assert_same_index(&patched, &rebuilt, &edited);
            // The hull recompute actually did something: the b path's
            // max_right came down to the surviving subtree.
            let b_label = edited.labels().get("b").unwrap();
            let b_sid = patched.sids(b_label)[0];
            assert!(
                patched.path_summary().node(b_sid).max_right
                    < idx.path_summary().node(b_sid).max_right
            );
        }

        #[test]
        fn replace_patches_incrementally() {
            let doc = gapped("<a><b><c/><c/></b><b><c/></b></a>");
            let idx = ElementIndex::build(&doc);
            let first_b = doc.children(doc.root()).nth(1).unwrap();
            let (edited, delta) = apply_op(
                &doc,
                &EditOp::ReplaceSubtree { target: first_b, subtree: parse("<b><c/></b>").unwrap() },
            )
            .unwrap();
            assert!(!delta.renumbered, "3-node subtree leaves room for 2 nodes");
            let patched = idx.try_patch(&edited, &delta).expect("replace must patch");
            assert_same_index(&patched, &ElementIndex::build(&edited), &edited);
        }

        #[test]
        fn id_shift_reaches_untouched_labels() {
            // Deleting a <b> shifts the ids of every later <z> even though
            // the z partition itself is never spliced.
            let doc = gapped("<a><b/><b/><z/><z/></a>");
            let idx = ElementIndex::build(&doc);
            let second_b = doc.children(doc.root()).nth(2).unwrap();
            let (edited, delta) = apply_op(&doc, &EditOp::DeleteSubtree { target: second_b }).unwrap();
            let patched = idx.try_patch(&edited, &delta).expect("delete must patch");
            let rebuilt = ElementIndex::build(&edited);
            assert_same_index(&patched, &rebuilt, &edited);
            let z = edited.labels().get("z").unwrap();
            assert_eq!(patched.elements(z)[0].id, NodeId::from_index(3));
        }

        #[test]
        fn renumbering_edit_falls_back_to_rebuild() {
            let doc = parse("<a><b/><c/></a>").unwrap(); // dense: no gaps
            let idx = ElementIndex::build(&doc);
            let (edited, delta) = apply_op(
                &doc,
                &EditOp::InsertSubtree {
                    parent: Some(doc.root()),
                    position: 1,
                    subtree: parse("<b/>").unwrap(),
                },
            )
            .unwrap();
            assert!(delta.renumbered);
            assert!(idx.try_patch(&edited, &delta).is_none());
            let (applied, how) = idx.apply_edit(&edited, &delta);
            assert_eq!(how, EditApply::Rebuilt);
            assert_same_index(&applied, &ElementIndex::build(&edited), &edited);
            assert_eq!(applied.version(), 1);
        }

        #[test]
        fn new_path_falls_back_to_rebuild() {
            let doc = gapped("<a><b/></a>");
            let idx = ElementIndex::build(&doc);
            let b = doc.children(doc.root()).nth(1).unwrap();
            let (edited, delta) = apply_op(
                &doc,
                &EditOp::InsertSubtree {
                    parent: Some(b),
                    position: 0,
                    subtree: parse("<new/>").unwrap(),
                },
            )
            .unwrap();
            assert!(!delta.renumbered);
            assert!(idx.try_patch(&edited, &delta).is_none(), "path /a/b/new never seen");
            assert_same_index(&idx.apply_edit(&edited, &delta).0, &ElementIndex::build(&edited), &edited);
        }

        #[test]
        fn emptied_path_falls_back_to_rebuild() {
            let doc = gapped("<a><b/><c/></a>");
            let idx = ElementIndex::build(&doc);
            let b = doc.children(doc.root()).nth(1).unwrap();
            let (edited, delta) = apply_op(&doc, &EditOp::DeleteSubtree { target: b }).unwrap();
            assert!(idx.try_patch(&edited, &delta).is_none(), "/a/b has no elements left");
            assert_same_index(&idx.apply_edit(&edited, &delta).0, &ElementIndex::build(&edited), &edited);
        }

        #[test]
        fn first_occurrence_reorder_falls_back_to_rebuild() {
            // Deleting the FIRST b makes /a/c appear before /a/b in a
            // fresh build: different sid numbering, so no patch.
            let doc = gapped("<a><b/><c/><b/></a>");
            let idx = ElementIndex::build(&doc);
            let first_b = doc.children(doc.root()).nth(1).unwrap();
            let (edited, delta) = apply_op(&doc, &EditOp::DeleteSubtree { target: first_b }).unwrap();
            assert!(!delta.renumbered);
            assert!(
                idx.try_patch(&edited, &delta).is_none(),
                "min_left order no longer matches sid order"
            );
            assert_same_index(&idx.apply_edit(&edited, &delta).0, &ElementIndex::build(&edited), &edited);
        }

        #[test]
        fn version_counts_every_edit() {
            let doc = gapped("<a><b/><b/></a>");
            let idx = ElementIndex::build(&doc);
            assert_eq!(idx.version(), 0);
            assert_eq!(IndexView::snapshot_version(&idx), 0);
            let b = doc.children(doc.root()).nth(1).unwrap();
            let (e1, d1) = apply_op(&doc, &EditOp::DeleteSubtree { target: b }).unwrap();
            let (v1, how) = idx.apply_edit(&e1, &d1);
            assert_eq!(how, EditApply::Patched);
            assert_eq!(v1.version(), 1);
            let b = e1.children(e1.root()).nth(1).unwrap();
            let (e2, d2) = apply_op(&e1, &EditOp::DeleteSubtree { target: b }).unwrap();
            let (v2, how) = v1.apply_edit(&e2, &d2);
            assert_eq!(how, EditApply::Rebuilt);
            assert_eq!(v2.version(), 2, "fallback rebuilds bump the version too");
            assert_eq!(IndexView::snapshot_version(&v2), 2);
        }

        #[test]
        fn edits_to_and_from_the_empty_document() {
            let doc = parse("<a><b/></a>").unwrap();
            let idx = ElementIndex::build(&doc);
            let (empty, delta) = apply_op(&doc, &EditOp::DeleteSubtree { target: doc.root() }).unwrap();
            let (empty_ix, _) = idx.apply_edit(&empty, &delta);
            assert_eq!(empty_ix.version(), 1);
            assert_eq!(empty_ix.count(doc.labels().get("b").unwrap()), 0);
            assert!(empty_ix.summary().is_empty());
            let (revived, delta) = apply_op(
                &empty,
                &EditOp::InsertSubtree { parent: None, position: 0, subtree: parse("<a><b/></a>").unwrap() },
            )
            .unwrap();
            let (revived_ix, _) = empty_ix.apply_edit(&revived, &delta);
            assert_eq!(revived_ix.version(), 2);
            assert_same_index(&revived_ix, &ElementIndex::build(&revived), &revived);
        }
    }
}
