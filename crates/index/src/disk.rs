//! On-disk index files with IO accounting.
//!
//! The paper's *total execution time* includes the cost of scanning the
//! element streams from disk (§5.1). This module serializes both stream
//! kinds to simple binary files and reads them back through a counting
//! buffered reader, so experiments can measure real scan time and report
//! bytes read:
//!
//! * **region index** — per-label segments of fixed 20-byte records
//!   `(id: u32, left: u32, right: u32, level: u32, sid: u32)`, scanned by
//!   TwigStack, PathStack and Twig²Stack for *every* query label; `sid` is
//!   the element's path-summary id (see [`crate::summary`]), which lets a
//!   scan drop query-infeasible records as they are read;
//! * **Dewey index** — per-label segments of variable-length records
//!   `(id: u32, len: u16, components: len × u32)`, scanned by TJFast for
//!   the query's *leaf* labels only (fewer streams, fatter records).
//!
//! All integers are little-endian. Files start with an 8-byte magic and a
//! table of contents mapping label names to `(count, byte offset, bytes)`.

use crate::dewey::DeweyIndex;
use crate::stream::{ElemStream, IndexedElement, StreamError, ELEMENT_RECORD_BYTES};
use crate::summary::{PathSummary, SummarySet};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xmldom::{Document, NodeId, Region};

const REGION_MAGIC: &[u8; 8] = b"T2SRIDX2";
const DEWEY_MAGIC: &[u8; 8] = b"T2SDIDX1";

/// Shared byte/element counters for one index's streams.
#[derive(Debug, Default)]
pub struct IoCounters {
    bytes: AtomicU64,
    elements: AtomicU64,
}

impl IoCounters {
    /// Bytes read so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Element records read so far.
    pub fn elements(&self) -> u64 {
        self.elements.load(Ordering::Relaxed)
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.elements.store(0, Ordering::Relaxed);
    }

    fn add(&self, bytes: u64, elements: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.elements.fetch_add(elements, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    count: u64,
    offset: u64,
    bytes: u64,
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_toc(
    w: &mut impl Write,
    entries: &[(String, Segment)],
) -> io::Result<()> {
    write_u32(w, entries.len() as u32)?;
    for (name, seg) in entries {
        let bytes = name.as_bytes();
        w.write_all(&(bytes.len() as u16).to_le_bytes())?;
        w.write_all(bytes)?;
        write_u64(w, seg.count)?;
        write_u64(w, seg.offset)?;
        write_u64(w, seg.bytes)?;
    }
    Ok(())
}

fn read_toc(r: &mut impl Read) -> io::Result<HashMap<String, Segment>> {
    let n = read_u32(r)?;
    let mut toc = HashMap::with_capacity(n as usize);
    for _ in 0..n {
        let len = read_u16(r)? as usize;
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let count = read_u64(r)?;
        let offset = read_u64(r)?;
        let bytes = read_u64(r)?;
        toc.insert(name, Segment { count, offset, bytes });
    }
    Ok(toc)
}

fn toc_size(entries: &[(String, Segment)]) -> u64 {
    4 + entries
        .iter()
        .map(|(n, _)| 2 + n.len() as u64 + 24)
        .sum::<u64>()
}

/// Serialize the region index of `doc` to `path`. Each record carries the
/// element's path-summary id so scans can be summary-filtered.
pub fn write_region_index(doc: &Document, path: &Path) -> io::Result<()> {
    // Gather per-label element lists (document order).
    let summary = PathSummary::build(doc);
    let n_labels = doc.labels().len();
    let mut by_label: Vec<Vec<(NodeId, Region, u32)>> = vec![Vec::new(); n_labels];
    for n in doc.iter() {
        by_label[doc.label(n).index()].push((n, doc.region(n), summary.sid(n)));
    }
    let mut entries: Vec<(String, Segment)> = Vec::with_capacity(n_labels);
    for (label, name) in doc.labels().iter() {
        let count = by_label[label.index()].len() as u64;
        entries.push((
            name.to_string(),
            Segment { count, offset: 0, bytes: count * ELEMENT_RECORD_BYTES as u64 },
        ));
    }
    // Assign offsets after the header.
    let mut offset = 8 + toc_size(&entries);
    for (_, seg) in entries.iter_mut() {
        seg.offset = offset;
        offset += seg.bytes;
    }

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(REGION_MAGIC)?;
    write_toc(&mut w, &entries)?;
    for (label, _) in doc.labels().iter() {
        for &(id, r, sid) in &by_label[label.index()] {
            write_u32(&mut w, id.index() as u32)?;
            write_u32(&mut w, r.left)?;
            write_u32(&mut w, r.right)?;
            write_u32(&mut w, r.level)?;
            write_u32(&mut w, sid)?;
        }
    }
    w.flush()
}

/// Serialize the Dewey streams of `idx` to `path`. The schema transducer is
/// *not* serialized — TJFast keeps it in memory (it is DTD-sized, not
/// document-sized).
pub fn write_dewey_index(
    idx: &DeweyIndex,
    labels: &xmldom::LabelTable,
    path: &Path,
) -> io::Result<()> {
    let mut entries: Vec<(String, Segment)> = Vec::with_capacity(labels.len());
    for (label, name) in labels.iter() {
        let count = idx.count(label) as u64;
        let bytes = idx.stream_bytes(label) as u64;
        entries.push((name.to_string(), Segment { count, offset: 0, bytes }));
    }
    let mut offset = 8 + toc_size(&entries);
    for (_, seg) in entries.iter_mut() {
        seg.offset = offset;
        offset += seg.bytes;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(DEWEY_MAGIC)?;
    write_toc(&mut w, &entries)?;
    for (label, _) in labels.iter() {
        for e in idx.elements(label) {
            write_u32(&mut w, e.id.index() as u32)?;
            w.write_all(&(e.dewey.len() as u16).to_le_bytes())?;
            for &c in e.dewey {
                write_u32(&mut w, c)?;
            }
        }
    }
    w.flush()
}

/// Read handle over a serialized region index.
#[derive(Debug)]
pub struct DiskRegionIndex {
    path: std::path::PathBuf,
    toc: HashMap<String, Segment>,
    counters: Arc<IoCounters>,
}

impl DiskRegionIndex {
    /// Open the file and read its table of contents.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != REGION_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad region index magic"));
        }
        Ok(DiskRegionIndex {
            path: path.to_path_buf(),
            toc: read_toc(&mut r)?,
            counters: Arc::new(IoCounters::default()),
        })
    }

    /// Shared IO counters across all streams of this index.
    pub fn counters(&self) -> Arc<IoCounters> {
        Arc::clone(&self.counters)
    }

    /// Number of elements stored for `label_name` (0 if absent).
    pub fn count(&self, label_name: &str) -> u64 {
        self.toc.get(label_name).map_or(0, |s| s.count)
    }

    /// Open a scanning stream over one label's segment. Labels absent from
    /// the document yield an empty stream.
    pub fn stream(&self, label_name: &str) -> io::Result<DiskRegionStream> {
        self.stream_filtered(label_name, None)
    }

    /// Like [`stream`](Self::stream), but records whose summary id is not
    /// in `filter` are dropped as they are read: the bytes still count as
    /// IO, the elements count as pruned rather than scanned.
    pub fn stream_filtered(
        &self,
        label_name: &str,
        filter: Option<SummarySet>,
    ) -> io::Result<DiskRegionStream> {
        let seg = self.toc.get(label_name).copied().unwrap_or(Segment {
            count: 0,
            offset: 0,
            bytes: 0,
        });
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(seg.offset))?;
        Ok(DiskRegionStream {
            reader: BufReader::with_capacity(64 * 1024, file),
            remaining: seg.count,
            head: None,
            filter,
            counters: Arc::clone(&self.counters),
            label: label_name.to_string(),
            error: None,
        })
    }
}

/// A scanning cursor over one label's on-disk region records.
///
/// IO errors mid-scan terminate the stream early (peeks report EOF) and
/// are surfaced through [`ElemStream::take_error`], which every indexed
/// driver checks after its scan — a failed read therefore becomes a typed
/// query error, never a silently truncated result.
#[derive(Debug)]
pub struct DiskRegionStream {
    reader: BufReader<File>,
    remaining: u64,
    head: Option<IndexedElement>,
    filter: Option<SummarySet>,
    counters: Arc<IoCounters>,
    label: String,
    error: Option<io::Error>,
}

impl DiskRegionStream {
    fn fill(&mut self) {
        while self.head.is_none() && self.remaining > 0 && self.error.is_none() {
            let mut buf = [0u8; ELEMENT_RECORD_BYTES];
            match self.reader.read_exact(&mut buf) {
                Ok(()) => {
                    self.remaining -= 1;
                    self.counters.add(ELEMENT_RECORD_BYTES as u64, 1);
                    let id = u32::from_le_bytes(buf[0..4].try_into().unwrap());
                    let left = u32::from_le_bytes(buf[4..8].try_into().unwrap());
                    let right = u32::from_le_bytes(buf[8..12].try_into().unwrap());
                    let level = u32::from_le_bytes(buf[12..16].try_into().unwrap());
                    let sid = u32::from_le_bytes(buf[16..20].try_into().unwrap());
                    if let Some(f) = &self.filter {
                        if !f.contains(sid) {
                            // Read from disk but query-infeasible: the
                            // bytes count, the element is pruned.
                            twigobs::bump(twigobs::Counter::ElementsPruned);
                            continue;
                        }
                    }
                    self.head = Some(IndexedElement {
                        id: NodeId::from_index(id as usize),
                        region: Region::new(left, right, level),
                    });
                }
                Err(e) => {
                    self.error = Some(e);
                    self.remaining = 0;
                }
            }
        }
    }

    /// The IO error that terminated the scan, if any (left in place; use
    /// [`ElemStream::take_error`] to consume it).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl ElemStream for DiskRegionStream {
    fn peek(&mut self) -> Option<IndexedElement> {
        self.fill();
        self.head
    }

    fn advance(&mut self) {
        self.fill();
        if self.head.take().is_some() {
            twigobs::bump(twigobs::Counter::ElementsScanned);
        }
    }

    /// Sequential on disk (the records must be read to be bypassed), but
    /// bypassed elements count as pruned, not scanned.
    fn skip_to(&mut self, left: u32) -> usize {
        let mut skipped = 0;
        loop {
            self.fill();
            match self.head {
                Some(e) if e.region.right < left => {
                    self.head = None;
                    skipped += 1;
                    twigobs::bump(twigobs::Counter::ElementsPruned);
                }
                _ => break,
            }
        }
        if skipped > 0 {
            twigobs::bump(twigobs::Counter::StreamSkips);
        }
        skipped
    }

    fn take_error(&mut self) -> Option<StreamError> {
        self.error
            .take()
            .map(|e| StreamError::new(format!("region stream '{}'", self.label), e))
    }
}

/// Read handle over a serialized Dewey index.
#[derive(Debug)]
pub struct DiskDeweyIndex {
    path: std::path::PathBuf,
    toc: HashMap<String, Segment>,
    counters: Arc<IoCounters>,
}

impl DiskDeweyIndex {
    /// Open the file and read its table of contents.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DEWEY_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad Dewey index magic"));
        }
        Ok(DiskDeweyIndex {
            path: path.to_path_buf(),
            toc: read_toc(&mut r)?,
            counters: Arc::new(IoCounters::default()),
        })
    }

    /// Shared IO counters across all streams of this index.
    pub fn counters(&self) -> Arc<IoCounters> {
        Arc::clone(&self.counters)
    }

    /// Open a scanning stream over one label's Dewey records.
    pub fn stream(&self, label_name: &str) -> io::Result<DiskDeweyStream> {
        let seg = self.toc.get(label_name).copied().unwrap_or(Segment {
            count: 0,
            offset: 0,
            bytes: 0,
        });
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(seg.offset))?;
        Ok(DiskDeweyStream {
            reader: BufReader::with_capacity(64 * 1024, file),
            remaining: seg.count,
            counters: Arc::clone(&self.counters),
        })
    }
}

/// A scanning cursor over one label's on-disk Dewey records.
#[derive(Debug)]
pub struct DiskDeweyStream {
    reader: BufReader<File>,
    remaining: u64,
    counters: Arc<IoCounters>,
}

impl DiskDeweyStream {
    /// Read the next record into `components` (cleared first). Returns the
    /// element's node id, or `None` at end of segment.
    pub fn next_into(&mut self, components: &mut Vec<u32>) -> io::Result<Option<NodeId>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let id = read_u32(&mut self.reader)?;
        let len = read_u16(&mut self.reader)? as usize;
        components.clear();
        components.reserve(len);
        for _ in 0..len {
            components.push(read_u32(&mut self.reader)?);
        }
        self.counters.add(6 + 4 * len as u64, 1);
        twigobs::bump(twigobs::Counter::ElementsScanned);
        Ok(Some(NodeId::from_index(id as usize)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ElementIndex;
    use xmldom::parse;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("t2s-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn region_index_round_trip() {
        let doc = parse("<a><b/><a><b/><c/></a></a>").unwrap();
        let path = tmpfile("regions.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mem = ElementIndex::build(&doc);
        for (label, name) in doc.labels().iter() {
            assert_eq!(disk.count(name), mem.count(label) as u64);
            let mut ds = disk.stream(name).unwrap();
            let mut ms = mem.stream(label);
            loop {
                let (d, m) = (ds.next_elem(), ms.next_elem());
                assert_eq!(d, m, "label {name}");
                if d.is_none() {
                    break;
                }
            }
            assert!(ds.error().is_none());
        }
        assert_eq!(disk.counters().elements(), doc.len() as u64);
        assert_eq!(
            disk.counters().bytes(),
            (doc.len() * ELEMENT_RECORD_BYTES) as u64
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filtered_region_stream_drops_infeasible_records() {
        let doc = parse("<a><b><c/></b><c/></a>").unwrap();
        let path = tmpfile("regions3.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let summary = PathSummary::build(&doc);
        let nested = NodeId::from_index(2); // the c under b
        let mut keep = SummarySet::empty(summary.len());
        keep.insert(summary.sid(nested));
        let mut s = disk.stream_filtered("c", Some(keep)).unwrap();
        assert_eq!(s.next_elem().unwrap().id, nested);
        assert!(s.is_eof());
        assert!(s.error().is_none());
        // Both c records were read from disk (IO counted)…
        assert_eq!(disk.counters().elements(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_skip_to_discards_early_records() {
        let doc = parse("<a><b/><b/><c/><b/></a>").unwrap();
        let path = tmpfile("regions4.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mem = ElementIndex::build(&doc);
        let c = doc.labels().get("c").unwrap();
        let target = mem.elements(c)[0].region.left;
        let mut s = disk.stream("b").unwrap();
        assert_eq!(s.skip_to(target), 2);
        let last = s.next_elem().unwrap();
        assert!(last.region.left > target);
        assert!(s.is_eof());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_skip_to_keeps_record_ending_exactly_at_target() {
        // Equal boundary: skip_to discards only right < left, so a
        // record with right == target must survive — same semantics the
        // in-memory galloping streams pin in stream.rs.
        let doc = parse("<a><b><c/></b><b/><d/></a>").unwrap();
        let path = tmpfile("regions-eq.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mem = ElementIndex::build(&doc);
        let b = doc.labels().get("b").unwrap();
        let first_b = mem.elements(b)[0];
        let mut s = disk.stream("b").unwrap();
        assert_eq!(s.skip_to(first_b.region.right), 0, "right == target is kept");
        assert_eq!(s.next_elem().unwrap(), first_b);
        // One past the boundary discards it.
        let mut s = disk.stream("b").unwrap();
        assert_eq!(s.skip_to(first_b.region.right + 1), 1);
        assert_eq!(s.next_elem().unwrap(), mem.elements(b)[1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_skip_to_after_exhaustion_is_a_noop() {
        let doc = parse("<a><b/><b/></a>").unwrap();
        let path = tmpfile("regions-eof.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mut s = disk.stream("b").unwrap();
        assert_eq!(s.skip_to(u32::MAX), 2, "everything bypassed");
        assert!(s.is_eof());
        assert_eq!(s.skip_to(u32::MAX), 0, "post-exhaustion skip is a no-op");
        assert_eq!(s.skip_to(0), 0);
        assert!(s.next_elem().is_none());
        assert!(s.error().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_skip_to_crosses_multiple_blocks_like_memory_stream() {
        // A stream long enough to span several in-memory skip blocks:
        // the sequential disk skip and the galloping heap skip must
        // bypass the same count and surface the same head.
        let n = 3 * crate::stream::SKIP_BLOCK + 7;
        let mut xml = String::from("<a>");
        for _ in 0..n {
            xml.push_str("<b/>");
        }
        xml.push_str("<c/></a>");
        let doc = parse(&xml).unwrap();
        let path = tmpfile("regions-blocks.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mem = ElementIndex::build(&doc);
        let (b, c) = (doc.labels().get("b").unwrap(), doc.labels().get("c").unwrap());
        let target = mem.elements(c)[0].region.left;
        let mut ds = disk.stream("b").unwrap();
        let mut ms = mem.stream(b);
        assert_eq!(ds.skip_to(target), ms.skip_to(target));
        assert_eq!(ds.next_elem(), ms.next_elem());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn absent_label_yields_empty_stream() {
        let doc = parse("<a><b/></a>").unwrap();
        let path = tmpfile("regions2.idx");
        write_region_index(&doc, &path).unwrap();
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mut s = disk.stream("zzz").unwrap();
        assert!(s.is_eof());
        assert_eq!(disk.count("zzz"), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dewey_index_round_trip() {
        let doc = parse("<a><b><c/><d/></b><b><d/></b></a>").unwrap();
        let idx = DeweyIndex::build(&doc);
        let path = tmpfile("dewey.idx");
        write_dewey_index(&idx, doc.labels(), &path).unwrap();
        let disk = DiskDeweyIndex::open(&path).unwrap();
        for (label, name) in doc.labels().iter() {
            let mem: Vec<_> = idx
                .elements(label)
                .into_iter()
                .map(|e| (e.id, e.dewey.to_vec()))
                .collect();
            let mut got = Vec::new();
            let mut s = disk.stream(name).unwrap();
            let mut buf = Vec::new();
            while let Some(id) = s.next_into(&mut buf).unwrap() {
                got.push((id, buf.clone()));
            }
            assert_eq!(got, mem, "label {name}");
        }
        let expected_bytes: usize = doc
            .labels()
            .iter()
            .map(|(l, _)| idx.stream_bytes(l))
            .sum();
        assert_eq!(disk.counters().bytes(), expected_bytes as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn counters_reset() {
        let c = IoCounters::default();
        c.add(100, 5);
        assert_eq!(c.bytes(), 100);
        assert_eq!(c.elements(), 5);
        c.reset();
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.elements(), 0);
    }

    #[test]
    fn truncated_region_stream_surfaces_error() {
        let doc = parse("<a><b/><b/><b/><b/></a>").unwrap();
        let path = tmpfile("trunc.idx");
        write_region_index(&doc, &path).unwrap();
        // Chop the last 30 bytes: the TOC stays intact, the final records
        // of the file are gone mid-record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 30).unwrap();
        drop(f);
        let disk = DiskRegionIndex::open(&path).unwrap();
        let mut s = disk.stream("b").unwrap();
        let mut delivered = 0;
        while s.next_elem().is_some() {
            delivered += 1;
        }
        assert!(delivered < 4, "scan must stop short of the full segment");
        let err = s.take_error().expect("truncation must park an error");
        assert!(err.context.contains("'b'"), "{err}");
        assert_eq!(err.source.kind(), io::ErrorKind::UnexpectedEof);
        // Taking consumes it.
        assert!(s.take_error().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("bad.idx");
        std::fs::write(&path, b"NOTANIDXFILE").unwrap();
        assert!(DiskRegionIndex::open(&path).is_err());
        assert!(DiskDeweyIndex::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
