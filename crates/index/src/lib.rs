//! # xmlindex — element streams and access paths
//!
//! The substrate that models how the paper's algorithms *read* the
//! document:
//!
//! * [`stream`] — label-partitioned element streams in document order (the
//!   classic posting-list access path of region-encoded twig joins);
//! * [`disk`] — binary on-disk index files with counting readers, so
//!   experiments can measure real scan time and bytes read (the paper's
//!   "IO time", §5.1);
//! * [`schema`] — observed-schema extraction (the DTD stand-in);
//! * [`dewey`] — extended Dewey labeling and the label-path transducer
//!   (TJFast's access path: leaf streams only, fatter records);
//! * [`summary`] — the structural path summary (strong DataGuide): a tiny
//!   tree of distinct label paths with a summary id per element, the basis
//!   for query-pruned streams and region skip-scan;
//! * [`v3`] — the zero-copy mapped index format: one aligned checksummed
//!   file whose sections *are* the in-memory arrays, opened by `mmap`
//!   instead of parsing.
//!
//! Unsafe code is denied crate-wide with one audited exception: the
//! plain-old-data cast module inside [`v3`] (see its safety notes).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dewey;
pub mod disk;
pub mod schema;
pub mod stream;
pub mod summary;
pub mod v3;

pub use dewey::{is_dewey_ancestor, is_dewey_parent, DeweyElement, DeweyIndex};
pub use disk::{
    write_dewey_index, write_region_index, DiskDeweyIndex, DiskDeweyStream, DiskRegionIndex,
    DiskRegionStream, IoCounters,
};
pub use schema::Schema;
pub use stream::{
    filter_worthwhile, EditApply, ElemStream, ElementIndex, EmptyStream, IndexView,
    IndexedElement, PrunedStream, PruningPolicy, ScanCost, SliceStream, StreamError,
};
pub use summary::{PathSummary, RegionCover, SummaryNode, SummaryRef, SummarySet};
pub use v3::{
    write_mapped_index, write_mapped_index_from, MappedIndex, MappedOpenError, SectionId,
};
