//! Format v3: the zero-copy, memory-mapped region index.
//!
//! v2 ([`crate::disk`]) is a *streaming* format: 20-byte interleaved
//! records that a reader parses element by element. v3 is a *mapping*
//! format: one aligned, little-endian file whose payload sections are laid
//! out exactly like the in-memory arrays of [`ElementIndex`], so opening
//! an index is `mmap` + checksum verification — no parse, no allocation
//! proportional to the document. A [`MappedIndex`] then hands out the very
//! same `&[IndexedElement]`/`&[u32]` slices (and the same
//! [`SummaryRef`] view) as the heap index, which is why every engine and
//! the query service run over it unchanged via [`IndexView`].
//!
//! ## Layout
//!
//! ```text
//! offset 0   magic  "T2SRIDX3"                              8 bytes
//!        8   endianness probe 0x1A2B3C4D (LE)               4 bytes
//!       12   section count                                  4 bytes
//!       16   label count                                    4 bytes
//!       20   reserved (zero)                                4 bytes
//!       24   TOC: per section {id, reserved, offset, len,
//!            fnv1a64 checksum}                              32 bytes each
//!       ...  sections, each 8-byte aligned, zero-padded
//! ```
//!
//! Sections (all little-endian, fixed-width):
//!
//! | id | section          | element type        | bytes |
//! |----|------------------|---------------------|-------|
//! | 1  | label names      | UTF-8 blob          | —     |
//! | 2  | label directory  | [`LabelDirEntry`]   | 24    |
//! | 3  | elements         | [`IndexedElement`]  | 16    |
//! | 4  | summary ids      | `u32`               | 4     |
//! | 5  | block maxima     | `u32`               | 4     |
//! | 6  | summary nodes    | [`SummaryNode`]     | 32    |
//! | 7  | summary children | `u32`               | 4     |
//! | 8  | element sid map  | `u32`               | 4     |
//!
//! Posting arrays of all labels are concatenated (elements, parallel
//! summary ids, block maxima); the label directory holds each label's
//! `(start, len)` ranges plus its name slice in the name blob.
//!
//! ## Integrity
//!
//! Every section carries a word-stride FNV-1a-64 checksum (one u64 word
//! folded per multiply, then the tail bytes and the length) verified at
//! open; a flipped
//! byte anywhere in a section surfaces as a typed
//! [`MappedOpenError::ChecksumMismatch`] naming the section — never a
//! silently wrong answer. A v2 file is recognized by its magic and
//! reported as [`MappedOpenError::VersionMismatch`] (v3 readers do not
//! parse v2; [`crate::disk::DiskRegionIndex`] still does).

use crate::stream::{ElementIndex, IndexView, IndexedElement};
use crate::summary::{SummaryNode, SummaryRef};
use memmap2::Mmap;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::ops::Range;
use std::path::Path;
use xmldom::{Document, Label, LabelTable};

/// Magic bytes of a v3 mapped region index.
pub const MAGIC_V3: &[u8; 8] = b"T2SRIDX3";
/// Endianness probe value stored after the magic, little-endian.
const ENDIAN_PROBE: u32 = 0x1A2B_3C4D;
/// Header bytes before the TOC.
const HEADER_BYTES: usize = 24;
/// Bytes per TOC entry.
const TOC_ENTRY_BYTES: usize = 32;
/// Section payload alignment.
const SECTION_ALIGN: usize = 8;

/// Identifies one payload section of a v3 file (TOC `id` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Concatenated UTF-8 label names.
    LabelNames = 1,
    /// Per-label directory ([`LabelDirEntry`] records).
    LabelDir = 2,
    /// All labels' posting arrays, concatenated ([`IndexedElement`]).
    Elements = 3,
    /// Summary id per posting, parallel to `Elements`.
    Sids = 4,
    /// Per-block max-`right` tables, concatenated.
    Blocks = 5,
    /// Flat path-summary nodes ([`SummaryNode`]).
    SummaryNodes = 6,
    /// The summary's shared child-sid array.
    SummaryChildren = 7,
    /// Summary id per document node (`NodeId::index()`-indexed).
    SidOf = 8,
}

impl SectionId {
    /// All sections, in file order.
    pub const ALL: [SectionId; 8] = [
        SectionId::LabelNames,
        SectionId::LabelDir,
        SectionId::Elements,
        SectionId::Sids,
        SectionId::Blocks,
        SectionId::SummaryNodes,
        SectionId::SummaryChildren,
        SectionId::SidOf,
    ];

    /// Stable lowercase name (used in error messages and reports).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::LabelNames => "label_names",
            SectionId::LabelDir => "label_dir",
            SectionId::Elements => "elements",
            SectionId::Sids => "sids",
            SectionId::Blocks => "blocks",
            SectionId::SummaryNodes => "summary_nodes",
            SectionId::SummaryChildren => "summary_children",
            SectionId::SidOf => "sid_of",
        }
    }

    fn from_raw(raw: u32) -> Option<SectionId> {
        SectionId::ALL.into_iter().find(|&s| s as u32 == raw)
    }

    fn slot(self) -> usize {
        self as usize - 1
    }
}

/// One label's entry in the v3 label directory: where its name lives in
/// the name blob and where its posting/block ranges live in the shared
/// arrays. Fixed-width `#[repr(C)]`, cast directly from the mapped file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct LabelDirEntry {
    /// Byte offset of the label's name in the name blob.
    pub name_start: u32,
    /// Byte length of the label's name.
    pub name_len: u32,
    /// First posting of this label in the elements/sids sections.
    pub elem_start: u32,
    /// Number of postings.
    pub elem_len: u32,
    /// First block-max entry of this label in the blocks section.
    pub block_start: u32,
    /// Number of block-max entries.
    pub block_len: u32,
}

/// Why a v3 file failed to open. Every variant is a hard error: a file
/// that does not verify end to end is never partially served.
#[derive(Debug)]
pub enum MappedOpenError {
    /// The file could not be read or mapped.
    Io(io::Error),
    /// The magic bytes match no known index format.
    BadMagic,
    /// The file is a valid *other* version of the region index (e.g. the
    /// streaming v2 format); open it with that version's reader instead.
    VersionMismatch {
        /// Magic of the version found.
        found: [u8; 8],
    },
    /// The file was written on a platform with different endianness.
    Endianness,
    /// The file ends before the named structure is complete.
    Truncated {
        /// What was being read when the file ran out.
        what: &'static str,
    },
    /// A section's offset or length violates the required alignment.
    Misaligned {
        /// The offending section.
        section: SectionId,
    },
    /// A section's bytes do not match its TOC checksum — the file is
    /// corrupt (e.g. a flipped bit) and must not be served.
    ChecksumMismatch {
        /// The corrupt section.
        section: SectionId,
    },
    /// A required section is absent from the TOC.
    MissingSection {
        /// The absent section.
        section: SectionId,
    },
    /// Cross-section structure is inconsistent (counts or ranges).
    Malformed {
        /// What failed to validate.
        what: &'static str,
    },
}

impl fmt::Display for MappedOpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappedOpenError::Io(e) => write!(f, "mapped index io error: {e}"),
            MappedOpenError::BadMagic => write!(f, "not a region index (bad magic)"),
            MappedOpenError::VersionMismatch { found } => write!(
                f,
                "region index version mismatch: found {:?}, want {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(MAGIC_V3),
            ),
            MappedOpenError::Endianness => {
                write!(f, "mapped index written with foreign endianness")
            }
            MappedOpenError::Truncated { what } => {
                write!(f, "mapped index truncated ({what})")
            }
            MappedOpenError::Misaligned { section } => {
                write!(f, "mapped index section '{}' misaligned", section.name())
            }
            MappedOpenError::ChecksumMismatch { section } => write!(
                f,
                "mapped index section '{}' failed checksum verification",
                section.name()
            ),
            MappedOpenError::MissingSection { section } => {
                write!(f, "mapped index section '{}' missing", section.name())
            }
            MappedOpenError::Malformed { what } => {
                write!(f, "mapped index malformed ({what})")
            }
        }
    }
}

impl std::error::Error for MappedOpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MappedOpenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MappedOpenError {
    fn from(e: io::Error) -> Self {
        MappedOpenError::Io(e)
    }
}

/// Word-stride FNV-1a 64-bit, the per-section checksum of the v3 format.
///
/// Classic FNV-1a folds one *byte* per multiply, which caps verification
/// at ~1 GB/s and would make checksumming — not mapping — the dominant
/// open cost. The v3 checksum instead folds one little-endian u64 word
/// per multiply (then the `< 8` byte tail, then the length, so sections
/// differing only in trailing zero-padding still differ in hash). Any
/// single flipped byte changes the folded word and therefore the hash;
/// `tests/fault_injection.rs` exercises exactly that per section.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Plain-old-data casting: the only unsafe code in this crate.
///
/// The crate-wide lint is `deny(unsafe_code)`; this module is the audited
/// exception. Soundness rests on three checks per cast — size
/// divisibility, pointer alignment, and `Pod` types for which every bit
/// pattern is a valid value (all-`u32` `#[repr(C)]`/`#[repr(transparent)]`
/// records with no padding).
#[allow(unsafe_code)]
mod pod {
    use super::{IndexedElement, LabelDirEntry, SummaryNode};

    /// Marker for types safely reinterpretable from arbitrary bytes.
    ///
    /// # Safety
    /// Implementors must have no padding, no invalid bit patterns, and a
    /// stable `#[repr(C)]`/`#[repr(transparent)]` layout.
    pub(super) unsafe trait Pod: Copy + 'static {}

    unsafe impl Pod for u32 {}
    unsafe impl Pod for IndexedElement {}
    unsafe impl Pod for SummaryNode {}
    unsafe impl Pod for LabelDirEntry {}

    /// Reinterpret `bytes` as a slice of `T`, or `None` when the length
    /// is not a multiple of `size_of::<T>()` or the pointer is not
    /// aligned for `T`.
    pub(super) fn cast_slice<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
        let size = std::mem::size_of::<T>();
        debug_assert!(size > 0);
        if !bytes.len().is_multiple_of(size)
            || bytes.as_ptr().align_offset(std::mem::align_of::<T>()) != 0
        {
            return None;
        }
        // SAFETY: length and alignment verified above; `T: Pod`
        // guarantees any byte content is a valid `T`; the lifetime is
        // tied to `bytes`, which outlives the returned slice.
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize `index` (with its label names from `labels`) into the v3
/// mapped format at `path`. The write is atomic enough for our purposes:
/// build in memory, then one `write_all`.
pub fn write_mapped_index_from(
    index: &ElementIndex,
    labels: &LabelTable,
    path: &Path,
) -> io::Result<()> {
    let mut names = Vec::new();
    let mut dir = Vec::new();
    let mut elements = Vec::new();
    let mut sids = Vec::new();
    let mut blocks = Vec::new();
    let mut elem_total: u32 = 0;
    let mut block_total: u32 = 0;
    for (label, name) in labels.iter() {
        let es = index.elements(label);
        let ss = index.sids(label);
        let bs = index.blocks(label);
        let name_start = names.len() as u32;
        names.extend_from_slice(name.as_bytes());
        push_u32(&mut dir, name_start);
        push_u32(&mut dir, name.len() as u32);
        push_u32(&mut dir, elem_total);
        push_u32(&mut dir, es.len() as u32);
        push_u32(&mut dir, block_total);
        push_u32(&mut dir, bs.len() as u32);
        elem_total += es.len() as u32;
        block_total += bs.len() as u32;
        for e in es {
            push_u32(&mut elements, e.id.index() as u32);
            push_u32(&mut elements, e.region.left);
            push_u32(&mut elements, e.region.right);
            push_u32(&mut elements, e.region.level);
        }
        for &s in ss {
            push_u32(&mut sids, s);
        }
        for &b in bs {
            push_u32(&mut blocks, b);
        }
    }

    let summary = index.summary();
    // Rebuild the shared child array in node order, recording each node's
    // (start, len) range as it is laid down; the node records then carry
    // exactly those ranges — writer-side self-consistency instead of
    // trusting any internal offsets of the in-memory representation.
    let mut schildren = Vec::new();
    let mut child_ranges = Vec::with_capacity(summary.len());
    for sid in 0..summary.len() as u32 {
        let kids = summary.children(sid);
        child_ranges.push(((schildren.len() / 4) as u32, kids.len() as u32));
        for &c in kids {
            push_u32(&mut schildren, c);
        }
    }
    let mut snodes = Vec::new();
    for (sid, n) in summary.nodes().iter().enumerate() {
        let (kids_start, kids_len) = child_ranges[sid];
        push_u32(&mut snodes, n.label.index() as u32);
        push_u32(&mut snodes, n.parent().map_or(u32::MAX, |p| p));
        push_u32(&mut snodes, kids_start);
        push_u32(&mut snodes, kids_len);
        push_u32(&mut snodes, n.depth);
        push_u32(&mut snodes, n.count);
        push_u32(&mut snodes, n.min_left);
        push_u32(&mut snodes, n.max_right);
    }
    let mut sid_of = Vec::new();
    for &s in summary.sids() {
        push_u32(&mut sid_of, s);
    }

    let sections: [(SectionId, Vec<u8>); 8] = [
        (SectionId::LabelNames, names),
        (SectionId::LabelDir, dir),
        (SectionId::Elements, elements),
        (SectionId::Sids, sids),
        (SectionId::Blocks, blocks),
        (SectionId::SummaryNodes, snodes),
        (SectionId::SummaryChildren, schildren),
        (SectionId::SidOf, sid_of),
    ];

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V3);
    push_u32(&mut out, ENDIAN_PROBE);
    push_u32(&mut out, sections.len() as u32);
    push_u32(&mut out, labels.len() as u32);
    push_u32(&mut out, 0); // reserved
    debug_assert_eq!(out.len(), HEADER_BYTES);

    // Lay the sections out after the TOC, 8-byte aligned.
    let toc_at = out.len();
    let mut cursor = toc_at + sections.len() * TOC_ENTRY_BYTES;
    let mut toc = Vec::new();
    let mut payload = Vec::new();
    for (id, bytes) in &sections {
        cursor = cursor.next_multiple_of(SECTION_ALIGN);
        push_u32(&mut toc, *id as u32);
        push_u32(&mut toc, 0); // reserved
        toc.extend_from_slice(&(cursor as u64).to_le_bytes());
        toc.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        toc.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        let pad = cursor - (toc_at + sections.len() * TOC_ENTRY_BYTES + payload.len());
        payload.resize(payload.len() + pad, 0);
        payload.extend_from_slice(bytes);
        cursor += bytes.len();
    }
    out.extend_from_slice(&toc);
    out.extend_from_slice(&payload);

    let mut f = File::create(path)?;
    f.write_all(&out)?;
    f.sync_all()
}

/// A zero-copy region index over a memory-mapped v3 file.
///
/// Opening is `mmap` + header/TOC validation + one checksum pass; no
/// parsing, no per-element allocation. All accessors cast stored ranges
/// of the mapping on demand — the ranges were validated at open, so the
/// casts cannot fail afterwards.
pub struct MappedIndex {
    map: Mmap,
    /// Byte range of each section, indexed by [`SectionId::slot`].
    sections: [Range<usize>; 8],
    label_count: usize,
}

impl fmt::Debug for MappedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedIndex")
            .field("file_bytes", &self.map.len())
            .field("labels", &self.label_count)
            .finish()
    }
}

impl MappedIndex {
    /// Map and verify the v3 index at `path`.
    pub fn open(path: &Path) -> Result<MappedIndex, MappedOpenError> {
        let _span = twigobs::span(twigobs::Phase::IndexOpen);
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        if map.len() < HEADER_BYTES {
            return Err(MappedOpenError::Truncated { what: "header" });
        }
        if &map[..8] != MAGIC_V3 {
            let mut found = [0u8; 8];
            found.copy_from_slice(&map[..8]);
            return if found[..7] == MAGIC_V3[..7] || found.starts_with(b"T2S") {
                Err(MappedOpenError::VersionMismatch { found })
            } else {
                Err(MappedOpenError::BadMagic)
            };
        }
        let probe = u32::from_le_bytes(map[8..12].try_into().expect("4 bytes"));
        if probe != ENDIAN_PROBE {
            return Err(MappedOpenError::Endianness);
        }
        let section_count =
            u32::from_le_bytes(map[12..16].try_into().expect("4 bytes")) as usize;
        let label_count = u32::from_le_bytes(map[16..20].try_into().expect("4 bytes")) as usize;
        let toc_end = HEADER_BYTES + section_count * TOC_ENTRY_BYTES;
        if map.len() < toc_end {
            return Err(MappedOpenError::Truncated { what: "table of contents" });
        }

        const EMPTY: Range<usize> = 0..0;
        let mut sections: [Range<usize>; 8] = [EMPTY; 8];
        let mut seen = [false; 8];
        for i in 0..section_count {
            let at = HEADER_BYTES + i * TOC_ENTRY_BYTES;
            let entry = &map[at..at + TOC_ENTRY_BYTES];
            let raw_id = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let Some(id) = SectionId::from_raw(raw_id) else {
                // Unknown sections are ignored for forward compatibility.
                continue;
            };
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes")) as usize;
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes")) as usize;
            let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(MappedOpenError::Misaligned { section: id });
            }
            let Some(end) = offset.checked_add(len).filter(|&e| e <= map.len()) else {
                return Err(MappedOpenError::Truncated { what: id.name() });
            };
            if fnv1a64(&map[offset..end]) != checksum {
                return Err(MappedOpenError::ChecksumMismatch { section: id });
            }
            sections[id.slot()] = offset..end;
            seen[id.slot()] = true;
        }
        for id in SectionId::ALL {
            if !seen[id.slot()] {
                return Err(MappedOpenError::MissingSection { section: id });
            }
        }

        let this = MappedIndex { map, sections, label_count };
        this.validate_structure()?;
        Ok(this)
    }

    /// Cross-section structural validation, run once at open so that the
    /// accessors' casts and range lookups can never fail afterwards.
    fn validate_structure(&self) -> Result<(), MappedOpenError> {
        fn typed_len<T: pod::Pod>(
            bytes: &[u8],
            section: SectionId,
        ) -> Result<usize, MappedOpenError> {
            pod::cast_slice::<T>(bytes)
                .map(<[T]>::len)
                .ok_or(MappedOpenError::Misaligned { section })
        }
        let dir_len = typed_len::<LabelDirEntry>(
            self.section(SectionId::LabelDir),
            SectionId::LabelDir,
        )?;
        if dir_len != self.label_count {
            return Err(MappedOpenError::Malformed { what: "label directory count" });
        }
        let elems = typed_len::<IndexedElement>(
            self.section(SectionId::Elements),
            SectionId::Elements,
        )?;
        let sids = typed_len::<u32>(self.section(SectionId::Sids), SectionId::Sids)?;
        if sids != elems {
            return Err(MappedOpenError::Malformed { what: "sids/elements count" });
        }
        let blocks = typed_len::<u32>(self.section(SectionId::Blocks), SectionId::Blocks)?;
        let names_len = self.section(SectionId::LabelNames).len();
        for d in self.label_dir() {
            let name_ok = (d.name_start as usize + d.name_len as usize) <= names_len;
            let elem_ok = (d.elem_start as usize + d.elem_len as usize) <= elems;
            let block_ok = (d.block_start as usize + d.block_len as usize) <= blocks;
            if !(name_ok && elem_ok && block_ok) {
                return Err(MappedOpenError::Malformed { what: "label directory range" });
            }
        }
        let snodes = pod::cast_slice::<SummaryNode>(self.section(SectionId::SummaryNodes))
            .ok_or(MappedOpenError::Misaligned { section: SectionId::SummaryNodes })?;
        let schildren = pod::cast_slice::<u32>(self.section(SectionId::SummaryChildren))
            .ok_or(MappedOpenError::Misaligned { section: SectionId::SummaryChildren })?;
        let sid_of = pod::cast_slice::<u32>(self.section(SectionId::SidOf))
            .ok_or(MappedOpenError::Misaligned { section: SectionId::SidOf })?;
        for n in snodes {
            let (start, len) = n.child_range();
            if start as usize + len as usize > schildren.len() {
                return Err(MappedOpenError::Malformed { what: "summary child range" });
            }
            if n.parent().is_some_and(|p| p as usize >= snodes.len()) {
                return Err(MappedOpenError::Malformed { what: "summary parent id" });
            }
        }
        if schildren.iter().any(|&c| c as usize >= snodes.len()) {
            return Err(MappedOpenError::Malformed { what: "summary child id" });
        }
        if sid_of.iter().any(|&s| s as usize >= snodes.len()) {
            return Err(MappedOpenError::Malformed { what: "sid map entry" });
        }
        Ok(())
    }

    #[inline]
    fn section(&self, id: SectionId) -> &[u8] {
        &self.map[self.sections[id.slot()].clone()]
    }

    #[inline]
    fn cast<T: pod::Pod>(&self, id: SectionId) -> &[T] {
        pod::cast_slice(self.section(id)).expect("section validated at open")
    }

    #[inline]
    fn label_dir(&self) -> &[LabelDirEntry] {
        self.cast(SectionId::LabelDir)
    }

    /// All elements with `label`, in document order.
    pub fn elements(&self, label: Label) -> &[IndexedElement] {
        match self.label_dir().get(label.index()) {
            Some(d) => {
                &self.cast::<IndexedElement>(SectionId::Elements)
                    [d.elem_start as usize..(d.elem_start + d.elem_len) as usize]
            }
            None => &[],
        }
    }

    /// Summary ids of the elements with `label`.
    pub fn sids(&self, label: Label) -> &[u32] {
        match self.label_dir().get(label.index()) {
            Some(d) => {
                &self.cast::<u32>(SectionId::Sids)
                    [d.elem_start as usize..(d.elem_start + d.elem_len) as usize]
            }
            None => &[],
        }
    }

    /// Per-block max-`right` table for `label`.
    pub fn blocks(&self, label: Label) -> &[u32] {
        match self.label_dir().get(label.index()) {
            Some(d) => {
                &self.cast::<u32>(SectionId::Blocks)
                    [d.block_start as usize..(d.block_start + d.block_len) as usize]
            }
            None => &[],
        }
    }

    /// The name of `label` as stored in the file.
    pub fn label_name(&self, label: Label) -> Option<&str> {
        let d = self.label_dir().get(label.index())?;
        let names = self.section(SectionId::LabelNames);
        std::str::from_utf8(&names[d.name_start as usize..(d.name_start + d.name_len) as usize])
            .ok()
    }

    /// Borrowed view of the document's path summary — the same
    /// [`SummaryRef`] a heap [`ElementIndex`] produces, read straight from
    /// the mapping.
    pub fn summary(&self) -> SummaryRef<'_> {
        SummaryRef::from_raw_parts(
            self.cast(SectionId::SummaryNodes),
            self.cast(SectionId::SummaryChildren),
            self.cast(SectionId::SidOf),
        )
    }

    /// Number of labels the index covers.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Total size of the mapped file in bytes.
    pub fn file_bytes(&self) -> usize {
        self.map.len()
    }

    /// Bytes of the mapping currently resident in memory — the
    /// "bytes-resident" gauge of the mmap-vs-heap experiments.
    pub fn resident_bytes(&self) -> usize {
        self.map.resident_bytes()
    }
}

impl IndexView for MappedIndex {
    fn elements(&self, label: Label) -> &[IndexedElement] {
        MappedIndex::elements(self, label)
    }
    fn sids(&self, label: Label) -> &[u32] {
        MappedIndex::sids(self, label)
    }
    fn blocks(&self, label: Label) -> &[u32] {
        MappedIndex::blocks(self, label)
    }
    fn summary(&self) -> SummaryRef<'_> {
        MappedIndex::summary(self)
    }
    fn label_count(&self) -> usize {
        MappedIndex::label_count(self)
    }
}

/// Build and serialize the v3 mapped index of `doc` at `path`.
pub fn write_mapped_index(doc: &Document, path: &Path) -> io::Result<()> {
    let index = ElementIndex::build(doc);
    write_mapped_index_from(&index, doc.labels(), path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{ElemStream, SKIP_BLOCK};
    use std::mem::{align_of, size_of};
    use xmldom::{parse, NodeId, Region};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("t2s-v3-{}-{name}", std::process::id()))
    }

    /// Satellite: the layout guard. Every record type the v3 format casts
    /// from file bytes must have exactly the written size and a
    /// `u32`-compatible alignment — layout drift fails here, not in a
    /// misbehaving mapped query.
    #[test]
    fn record_layout_matches_written_format() {
        assert_eq!(size_of::<IndexedElement>(), 16);
        assert_eq!(align_of::<IndexedElement>(), 4);
        assert_eq!(size_of::<SummaryNode>(), 32);
        assert_eq!(align_of::<SummaryNode>(), 4);
        assert_eq!(size_of::<LabelDirEntry>(), 24);
        assert_eq!(align_of::<LabelDirEntry>(), 4);
        assert_eq!(size_of::<Region>(), 12);
        assert_eq!(size_of::<NodeId>(), 4);
        assert_eq!(size_of::<Label>(), 4);
        // Little-endian in-memory integers are a prerequisite for the
        // cast; the open-time probe enforces this at runtime too.
        assert_eq!(u32::from_le_bytes(1u32.to_ne_bytes()), 1, "little-endian platform");
    }

    #[test]
    fn mapped_equals_heap_on_every_label() {
        let doc =
            parse("<a><b><c/></b><b><c/><d/></b><c/><a><b/></a></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let path = tmp("roundtrip");
        write_mapped_index(&doc, &path).unwrap();
        let mapped = MappedIndex::open(&path).unwrap();
        assert_eq!(mapped.label_count(), index.label_count());
        for (label, name) in doc.labels().iter() {
            assert_eq!(mapped.elements(label), index.elements(label), "{name}");
            assert_eq!(mapped.sids(label), index.sids(label), "{name}");
            assert_eq!(mapped.blocks(label), index.blocks(label), "{name}");
            assert_eq!(mapped.label_name(label), Some(name));
        }
        let hv = index.summary();
        let mv = mapped.summary();
        assert_eq!(mv.len(), hv.len());
        assert_eq!(mv.sids(), hv.sids());
        for sid in 0..hv.len() as u32 {
            assert_eq!(mv.node(sid), hv.node(sid), "sid {sid}");
            assert_eq!(mv.children(sid), hv.children(sid), "sid {sid}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_streams_skip_like_heap_streams() {
        let mut xml = String::from("<a>");
        for _ in 0..(2 * SKIP_BLOCK) {
            xml.push_str("<b/>");
        }
        xml.push_str("</a>");
        let doc = parse(&xml).unwrap();
        let index = ElementIndex::build(&doc);
        let path = tmp("skip");
        write_mapped_index(&doc, &path).unwrap();
        let mapped = MappedIndex::open(&path).unwrap();
        let b = doc.labels().get("b").unwrap();
        let boundary = index.elements(b)[SKIP_BLOCK - 1];
        let mut heap = IndexView::pruned_stream(&index, b, None, None);
        let mut zc = IndexView::pruned_stream(&mapped, b, None, None);
        assert_eq!(
            heap.skip_to(boundary.region.right),
            zc.skip_to(boundary.region.right)
        );
        assert_eq!(heap.peek(), zc.peek());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_file_reports_version_mismatch() {
        let doc = parse("<a><b/></a>").unwrap();
        let path = tmp("v2");
        crate::disk::write_region_index(&doc, &path).unwrap();
        match MappedIndex::open(&path) {
            Err(MappedOpenError::VersionMismatch { found }) => {
                assert_eq!(&found, b"T2SRIDX2");
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_reports_bad_magic_and_short_reports_truncated() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index file").unwrap();
        assert!(matches!(MappedIndex::open(&path), Err(MappedOpenError::BadMagic)));
        std::fs::write(&path, b"T2S").unwrap();
        assert!(matches!(
            MappedIndex::open(&path),
            Err(MappedOpenError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
