//! Observed-schema extraction.
//!
//! Extended Dewey labeling (TJFast \[16\]) needs, for every element label `p`,
//! the ordered list `CL(p)` of labels that can occur as children of `p` —
//! in the original paper this comes from the DTD; here we extract it from
//! the document itself (an "observed schema"), which is equivalent for
//! matching purposes because the transducer only ever decodes paths that
//! actually occur.

use xmldom::{Document, Label};

/// Child-label lists per parent label.
#[derive(Debug, Clone)]
pub struct Schema {
    /// `child_labels[p]` — sorted, deduplicated labels observed as children
    /// of elements labelled `p`.
    child_labels: Vec<Vec<Label>>,
    /// The label of the document root.
    root_label: Label,
}

impl Schema {
    /// Extract the observed schema of `doc` in one pass.
    pub fn extract(doc: &Document) -> Self {
        let n = doc.labels().len();
        let mut child_labels: Vec<Vec<Label>> = vec![Vec::new(); n];
        for node in doc.iter() {
            let p = doc.label(node).index();
            for c in doc.children(node) {
                let cl = doc.label(c);
                if !child_labels[p].contains(&cl) {
                    child_labels[p].push(cl);
                }
            }
        }
        for list in &mut child_labels {
            list.sort_unstable();
        }
        Schema {
            child_labels,
            root_label: doc.label(doc.root()),
        }
    }

    /// The ordered child-label list `CL(p)`.
    pub fn child_labels(&self, parent: Label) -> &[Label] {
        self.child_labels
            .get(parent.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Index of `child` within `CL(parent)`, if observed.
    pub fn child_index(&self, parent: Label, child: Label) -> Option<usize> {
        self.child_labels(parent).iter().position(|&l| l == child)
    }

    /// Fan-out `k = |CL(parent)|` used as the Dewey modulus.
    pub fn fanout(&self, parent: Label) -> usize {
        self.child_labels(parent).len()
    }

    /// The document root's label (the transducer's start state).
    pub fn root_label(&self) -> Label {
        self.root_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    #[test]
    fn extracts_child_label_sets() {
        let doc = parse("<a><b><c/><d/></b><b><c/></b><d/></a>").unwrap();
        let s = Schema::extract(&doc);
        let a = doc.labels().get("a").unwrap();
        let b = doc.labels().get("b").unwrap();
        let c = doc.labels().get("c").unwrap();
        let d = doc.labels().get("d").unwrap();
        assert_eq!(s.child_labels(a), &[b, d]);
        assert_eq!(s.child_labels(b), &[c, d]);
        assert_eq!(s.child_labels(c), &[]);
        assert_eq!(s.fanout(a), 2);
        assert_eq!(s.child_index(a, d), Some(1));
        assert_eq!(s.child_index(b, b), None);
        assert_eq!(s.root_label(), a);
    }

    #[test]
    fn recursive_labels() {
        let doc = parse("<a><a><a/></a></a>").unwrap();
        let s = Schema::extract(&doc);
        let a = doc.labels().get("a").unwrap();
        assert_eq!(s.child_labels(a), &[a]);
        assert_eq!(s.fanout(a), 1);
    }
}
