//! Run reports — the JSON sidecar (`*.metrics.json`) schema.
//!
//! A [`RunReport`] names an aggregated [`Metrics`] snapshot and carries
//! free-form context pairs (dataset, profile, thread count, …). Its
//! [`RunReport::to_json`] output is the `*.metrics.json` sidecar every
//! experiment run emits; the schema is documented in EXPERIMENTS.md and
//! kept deliberately flat so any JSON consumer can read it without this
//! crate. The workspace vendors no serde, so serialization is a small
//! hand-rolled writer with full string escaping.

use crate::{Counter, Gauge, Metrics, Phase};

/// Identifies the sidecar layout; bumped only on breaking schema changes.
pub const SCHEMA: &str = "twig2stack.metrics/v1";

/// A named, JSON-serializable aggregate of one experiment run.
///
/// ```
/// use twigobs::{bump, Counter, RunReport};
/// bump(Counter::Chunks);
/// let report = RunReport::capture("figP").with_context("profile", "quick");
/// let json = report.to_json();
/// assert!(json.contains("\"name\": \"figP\""));
/// assert!(json.contains("\"chunks\""));
/// assert!(json.contains(twigobs::report::SCHEMA));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Experiment id (`fig16`, `table1`, …) — also the sidecar file stem.
    pub name: String,
    /// Free-form key/value context (profile, dataset, threads, …).
    pub context: Vec<(String, String)>,
    /// The aggregated per-thread metrics of the run.
    pub metrics: Metrics,
}

impl RunReport {
    /// Capture a report from this thread's accumulator (drains it, like
    /// [`crate::take`]). Call after folding worker threads in with
    /// [`crate::absorb`].
    pub fn capture(name: &str) -> Self {
        RunReport {
            name: name.to_string(),
            context: Vec::new(),
            metrics: crate::take(),
        }
    }

    /// A report over an already-drained [`Metrics`] value.
    pub fn from_metrics(name: &str, metrics: Metrics) -> Self {
        RunReport { name: name.to_string(), context: Vec::new(), metrics }
    }

    /// Attach one context pair (builder-style).
    #[must_use]
    pub fn with_context(mut self, key: &str, value: &str) -> Self {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// Serialize as pretty-printed JSON (the sidecar format):
    ///
    /// ```json
    /// {
    ///   "schema": "twig2stack.metrics/v1",
    ///   "name": "fig16",
    ///   "obs_enabled": true,
    ///   "context": { "profile": "quick" },
    ///   "counters": { "elements_scanned": 123, ... },
    ///   "gauges": { "bytes_resident": 4096, ... },
    ///   "spans": { "match": { "nanos": 456, "entries": 9 }, ... }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(SCHEMA)));
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"obs_enabled\": {},\n", crate::ENABLED));
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_string(v)));
        }
        if !self.context.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(c.name()),
                self.metrics.get(*c)
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(g.name()),
                self.metrics.gauge(*g)
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"spans\": {");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{ \"nanos\": {}, \"entries\": {} }}",
                json_string(p.name()),
                self.metrics.span_total(*p).as_nanos(),
                self.metrics.span_entries(*p)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Quote and escape `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal JSON well-formedness checker (objects, arrays, strings,
    /// numbers, booleans, null) — enough to guarantee the sidecar is
    /// parseable without vendoring a JSON crate.
    fn check_json(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        fn skip_ws(b: &[u8], pos: &mut usize) {
            while *pos < b.len() && b[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
        }
        fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b'{') => {
                    *pos += 1;
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b'}') {
                        *pos += 1;
                        return Ok(());
                    }
                    loop {
                        skip_ws(b, pos);
                        string(b, pos)?;
                        skip_ws(b, pos);
                        if b.get(*pos) != Some(&b':') {
                            return Err(format!("expected ':' at {pos}"));
                        }
                        *pos += 1;
                        value(b, pos)?;
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b'}') => {
                                *pos += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {pos}")),
                        }
                    }
                }
                Some(b'[') => {
                    *pos += 1;
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&b']') {
                        *pos += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, pos)?;
                        skip_ws(b, pos);
                        match b.get(*pos) {
                            Some(b',') => *pos += 1,
                            Some(b']') => {
                                *pos += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {pos}")),
                        }
                    }
                }
                Some(b'"') => string(b, pos),
                Some(b't') => literal(b, pos, "true"),
                Some(b'f') => literal(b, pos, "false"),
                Some(b'n') => literal(b, pos, "null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    while *pos < b.len()
                        && (b[*pos].is_ascii_digit()
                            || matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E'))
                    {
                        *pos += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?} at {pos}")),
            }
        }
        fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected string at {pos}"));
            }
            *pos += 1;
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => *pos += 1,
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
            if b[*pos..].starts_with(lit.as_bytes()) {
                *pos += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at {pos}"))
            }
        }
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing garbage at {pos}"))
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = RunReport::from_metrics("fig16", Metrics::default())
            .with_context("profile", "quick")
            .with_context("tricky \"key\"", "line\nbreak\tand \\slash");
        let json = report.to_json();
        check_json(&json).expect("sidecar must be parseable JSON");
        assert!(json.contains("\"schema\": \"twig2stack.metrics/v1\""));
        assert!(json.contains("\\\"key\\\""));
    }

    #[test]
    fn report_contains_every_counter_and_phase_key() {
        let json = RunReport::from_metrics("x", Metrics::default()).to_json();
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())), "{}", c.name());
        }
        for p in Phase::ALL {
            assert!(json.contains(&format!("\"{}\"", p.name())), "{}", p.name());
        }
        for g in Gauge::ALL {
            assert!(json.contains(&format!("\"{}\"", g.name())), "{}", g.name());
        }
    }

    #[test]
    fn empty_context_renders_empty_object() {
        let json = RunReport::from_metrics("x", Metrics::default()).to_json();
        check_json(&json).unwrap();
        assert!(json.contains("\"context\": {}"));
    }

    #[test]
    fn capture_drains_thread_local() {
        crate::bump(Counter::Fallbacks);
        let r = RunReport::capture("t");
        assert!(crate::take().is_zero());
        let expect = u64::from(crate::ENABLED);
        assert_eq!(r.metrics.get(Counter::Fallbacks), expect);
        check_json(&r.to_json()).unwrap();
    }

    #[test]
    fn control_characters_escape_to_unicode() {
        assert_eq!(super::json_string("a\u{1}b"), "\"a\\u0001b\"");
    }
}
