//! # twigobs — engine observability for the Twig²Stack reproduction
//!
//! The paper's evaluation (§5, Figures 14–19, Table 1) argues from
//! *internal* quantities — elements scanned, stack entries pushed, result
//! edges created, results enumerated — not just wall-clock time. This
//! crate is the substrate that lets every engine in the workspace report
//! those quantities:
//!
//! * [`Counter`] — the typed counter vocabulary (one id per paper
//!   quantity, see the DESIGN.md §7 semantics table);
//! * [`Phase`] — the span vocabulary (parse, index build, match,
//!   enumerate, splice) with monotonic [`span`] timing;
//! * [`Metrics`] — one thread's accumulated counters and span totals,
//!   drained with [`take`] and folded across threads with [`absorb`];
//! * [`report::RunReport`] — a named, JSON-serializable aggregate written
//!   as the `*.metrics.json` sidecar of every experiment run.
//!
//! ## Zero cost when disabled
//!
//! All recording goes through three hot-path hooks — [`add`], [`bump`],
//! and [`span`] — which are *empty inline functions* unless the crate is
//! built with the `enabled` cargo feature. Consumers call them
//! unconditionally; with the feature off, the optimizer removes every
//! call site (verified by the `obs_overhead` criterion bench in
//! `twigbench`). The [`ENABLED`] constant reports which variant was
//! compiled in.
//!
//! ## Per-thread accumulators
//!
//! Counters and span totals live in a thread-local cell: recording never
//! synchronizes, so instrumenting a hot loop costs one thread-local add.
//! Multi-threaded engines (the parallel partitioned evaluator) drain each
//! worker's accumulator with [`take`] when a task finishes and fold it
//! into the coordinating thread with [`absorb`], so one final [`take`] on
//! the coordinator observes the whole run.
//!
//! ```
//! use twigobs::{bump, span, take, Counter, Phase};
//!
//! let _guard = span(Phase::Match);       // records on drop
//! bump(Counter::StackPushes);
//! drop(_guard);
//! let m = take();                        // drain this thread
//! let expect = if twigobs::ENABLED { 1 } else { 0 };
//! assert_eq!(m.get(Counter::StackPushes), expect);
//! assert_eq!(m.span_entries(Phase::Match), expect);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::RunReport;

use std::time::Duration;

/// `true` iff this build compiled the recording layer in (cargo feature
/// `enabled`); `false` means every hook in this crate is a no-op.
///
/// ```
/// // The constant mirrors the cargo feature exactly.
/// assert_eq!(twigobs::ENABLED, cfg!(feature = "enabled"));
/// ```
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Typed counter ids — the engine quantities the paper's evaluation
/// argues from. See DESIGN.md §7 for the table mapping each counter to
/// the paper quantity it reproduces.
///
/// ```
/// use twigobs::Counter;
/// assert_eq!(Counter::ALL.len(), 38);
/// assert_eq!(Counter::EdgesCreated.name(), "edges_created");
/// assert_eq!(Counter::PlanCacheHits.name(), "plan_cache_hits");
/// assert_eq!(Counter::PlanMispredictions.name(), "plan_mispredictions");
/// assert_eq!(Counter::EditsApplied.name(), "edits_applied");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Elements delivered by a scan: SAX parse events, DOM event walks,
    /// and element-stream advances (the paper's "elements scanned").
    ElementsScanned,
    /// Elements pushed into hierarchical (or path) stacks.
    StackPushes,
    /// Stack-tree merge operations (paper Figure 6 folds).
    Merges,
    /// Result edges recorded between hierarchical stacks (§4.2).
    EdgesCreated,
    /// Result rows produced by enumeration (§4.3 `EnumTwig²Stack`).
    ResultsEnumerated,
    /// Document chunks processed by the parallel partitioned evaluator.
    Chunks,
    /// Serial fallbacks taken by the parallel evaluator.
    Fallbacks,
    /// (Document, query) pairs exercised by the conformance fuzzer.
    FuzzCases,
    /// Individual metamorphic invariant checks run by the fuzzer
    /// (several per case; skipped invariants are not counted).
    FuzzChecks,
    /// Invariant checks that FAILED — nonzero means a conformance bug.
    FuzzFailures,
    /// Path-summary (strong DataGuide) nodes constructed by index builds.
    SummaryNodes,
    /// Elements a pruned stream discarded or jumped over without
    /// delivering them to a matcher (summary-infeasible elements plus
    /// elements bypassed by `skip_to`).
    ElementsPruned,
    /// `skip_to` calls that bypassed at least one element.
    StreamSkips,
    /// Query-service plan-cache lookups served from the cache (the
    /// feasibility analysis was skipped).
    PlanCacheHits,
    /// Query-service plan-cache lookups that had to parse and analyze.
    PlanCacheMisses,
    /// Cached plans evicted by the plan cache's LRU policy.
    PlanCacheEvictions,
    /// Queries admitted past the service's concurrency gate.
    QueriesAdmitted,
    /// Queries shed by the overload policy (typed rejection, never run).
    QueriesRejected,
    /// Admitted queries aborted because their deadline expired mid-scan.
    DeadlineExceeded,
    /// Plans the service's planner pointed at the Twig²Stack engine
    /// (bumped once per planning event, i.e. per plan-cache miss).
    PlanChoicesTwig2Stack,
    /// Plans pointed at the TwigStack baseline engine.
    PlanChoicesTwigStack,
    /// Plans pointed at the PathStack baseline engine.
    PlanChoicesPathStack,
    /// Plans pointed at the TJFast baseline engine.
    PlanChoicesTJFast,
    /// Adaptive executions whose actual scan or output count landed
    /// outside the planner's tolerance window (DESIGN.md §14) — nonzero
    /// means the cost model mis-estimated, visibly.
    PlanMispredictions,
    /// Sum of the planner's *predicted* elements-to-scan over adaptive
    /// executions — compare with `elements_scanned` in the same sidecar.
    PlanPredictedScan,
    /// Sum of the planner's *predicted* result rows over adaptive
    /// executions — compare with `results_enumerated`.
    PlanPredictedResults,
    /// Document edit operations (insert/delete/replace subtree) applied
    /// successfully by `xmldom::edit::apply_op`.
    EditsApplied,
    /// Query-service snapshot rotations: each counts one batch of edits
    /// swapped in behind the readers' `Arc`.
    SnapshotRotations,
    /// Whole-document region renumberings forced by an exhausted gap
    /// budget between two adjacent tag positions (DESIGN.md §15).
    RenumberEvents,
    /// Elements rewritten into label partitions by incremental index
    /// maintenance — the work a full rebuild would spend on *every*
    /// element (the Fig E incremental-vs-rebuild cost axis).
    EditElementsReindexed,
    /// Cached plans dropped by snapshot rotation because their label set
    /// intersected the edit's changed labels (or the summary was
    /// rebuilt).
    PlanCacheInvalidations,
    /// Catalog documents a routed query actually visited (the Bloom +
    /// summary-feasibility router could not rule them out).
    CatalogDocsRouted,
    /// Catalog documents skipped by routing (a mandatory query label was
    /// absent from the document's Bloom filter, or the document's schema
    /// was proven unsatisfiable by summary feasibility). Zero false
    /// negatives: a skipped document never holds a match.
    CatalogDocsSkipped,
    /// Per-shard scatter jobs dispatched by the catalog (one per
    /// (query, shard-with-routed-documents) pair).
    ShardQueries,
    /// Cross-document shared scans formed by the catalog batch path (one
    /// merged stream scan serving several same-label-set queries on one
    /// document).
    CatalogBatches,
    /// Start/end tag events processed by the shared subscription
    /// automaton (DESIGN.md §17) — the denominator of the per-event
    /// amortization argument.
    SubEvents,
    /// `(subscription, element)` close deliveries the automaton let
    /// through to a per-subscription matcher; a solo-per-query sweep
    /// would pay `subscriptions x elements`.
    SubMatcherFeeds,
    /// Per-subscription change notifications emitted by the
    /// subscription service after an edit's snapshot rotation.
    SubNotifications,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 38] = [
        Counter::ElementsScanned,
        Counter::StackPushes,
        Counter::Merges,
        Counter::EdgesCreated,
        Counter::ResultsEnumerated,
        Counter::Chunks,
        Counter::Fallbacks,
        Counter::FuzzCases,
        Counter::FuzzChecks,
        Counter::FuzzFailures,
        Counter::SummaryNodes,
        Counter::ElementsPruned,
        Counter::StreamSkips,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::QueriesAdmitted,
        Counter::QueriesRejected,
        Counter::DeadlineExceeded,
        Counter::PlanChoicesTwig2Stack,
        Counter::PlanChoicesTwigStack,
        Counter::PlanChoicesPathStack,
        Counter::PlanChoicesTJFast,
        Counter::PlanMispredictions,
        Counter::PlanPredictedScan,
        Counter::PlanPredictedResults,
        Counter::EditsApplied,
        Counter::SnapshotRotations,
        Counter::RenumberEvents,
        Counter::EditElementsReindexed,
        Counter::PlanCacheInvalidations,
        Counter::CatalogDocsRouted,
        Counter::CatalogDocsSkipped,
        Counter::ShardQueries,
        Counter::CatalogBatches,
        Counter::SubEvents,
        Counter::SubMatcherFeeds,
        Counter::SubNotifications,
    ];

    /// The counter's snake_case report key (stable: it is the JSON
    /// sidecar schema).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ElementsScanned => "elements_scanned",
            Counter::StackPushes => "stack_pushes",
            Counter::Merges => "merges",
            Counter::EdgesCreated => "edges_created",
            Counter::ResultsEnumerated => "results_enumerated",
            Counter::Chunks => "chunks",
            Counter::Fallbacks => "fallbacks",
            Counter::FuzzCases => "fuzz_cases",
            Counter::FuzzChecks => "fuzz_checks",
            Counter::FuzzFailures => "fuzz_failures",
            Counter::SummaryNodes => "summary_nodes",
            Counter::ElementsPruned => "elements_pruned",
            Counter::StreamSkips => "skips",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
            Counter::QueriesAdmitted => "queries_admitted",
            Counter::QueriesRejected => "queries_rejected",
            Counter::DeadlineExceeded => "deadline_exceeded",
            Counter::PlanChoicesTwig2Stack => "plan_choices_twig2stack",
            Counter::PlanChoicesTwigStack => "plan_choices_twigstack",
            Counter::PlanChoicesPathStack => "plan_choices_pathstack",
            Counter::PlanChoicesTJFast => "plan_choices_tjfast",
            Counter::PlanMispredictions => "plan_mispredictions",
            Counter::PlanPredictedScan => "plan_predicted_scan",
            Counter::PlanPredictedResults => "plan_predicted_results",
            Counter::EditsApplied => "edits_applied",
            Counter::SnapshotRotations => "snapshot_rotations",
            Counter::RenumberEvents => "renumber_events",
            Counter::EditElementsReindexed => "edit_elements_reindexed",
            Counter::PlanCacheInvalidations => "plan_cache_invalidations",
            Counter::CatalogDocsRouted => "catalog_docs_routed",
            Counter::CatalogDocsSkipped => "catalog_docs_skipped",
            Counter::ShardQueries => "shard_queries",
            Counter::CatalogBatches => "catalog_batches",
            Counter::SubEvents => "sub_events",
            Counter::SubMatcherFeeds => "sub_matcher_feeds",
            Counter::SubNotifications => "sub_notifications",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Counter::ElementsScanned => 0,
            Counter::StackPushes => 1,
            Counter::Merges => 2,
            Counter::EdgesCreated => 3,
            Counter::ResultsEnumerated => 4,
            Counter::Chunks => 5,
            Counter::Fallbacks => 6,
            Counter::FuzzCases => 7,
            Counter::FuzzChecks => 8,
            Counter::FuzzFailures => 9,
            Counter::SummaryNodes => 10,
            Counter::ElementsPruned => 11,
            Counter::StreamSkips => 12,
            Counter::PlanCacheHits => 13,
            Counter::PlanCacheMisses => 14,
            Counter::PlanCacheEvictions => 15,
            Counter::QueriesAdmitted => 16,
            Counter::QueriesRejected => 17,
            Counter::DeadlineExceeded => 18,
            Counter::PlanChoicesTwig2Stack => 19,
            Counter::PlanChoicesTwigStack => 20,
            Counter::PlanChoicesPathStack => 21,
            Counter::PlanChoicesTJFast => 22,
            Counter::PlanMispredictions => 23,
            Counter::PlanPredictedScan => 24,
            Counter::PlanPredictedResults => 25,
            Counter::EditsApplied => 26,
            Counter::SnapshotRotations => 27,
            Counter::RenumberEvents => 28,
            Counter::EditElementsReindexed => 29,
            Counter::PlanCacheInvalidations => 30,
            Counter::CatalogDocsRouted => 31,
            Counter::CatalogDocsSkipped => 32,
            Counter::ShardQueries => 33,
            Counter::CatalogBatches => 34,
            Counter::SubEvents => 35,
            Counter::SubMatcherFeeds => 36,
            Counter::SubNotifications => 37,
        }
    }
}

/// Engine phases timed by [`span`] guards.
///
/// The hierarchy (documented, not enforced): a run is
/// `parse` → `index_build` → `match` → `enumerate`, with `splice` nested
/// *inside* `match` on the parallel path (so `match` totals include
/// splice time). On multi-threaded runs span totals aggregate across
/// threads — like CPU time, they can exceed wall-clock.
///
/// ```
/// use twigobs::Phase;
/// assert_eq!(Phase::ALL.len(), 7);
/// assert_eq!(Phase::IndexBuild.name(), "index_build");
/// assert_eq!(Phase::Serve.name(), "serve");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// XML text → events / DOM.
    Parse,
    /// Element / Dewey index construction.
    IndexBuild,
    /// The matching pass (bottom-up scan, path matching, …).
    Match,
    /// Result enumeration from the match encoding.
    Enumerate,
    /// Grafting a finished parallel chunk into the main encoding.
    Splice,
    /// Whole-request service time in the query service (admission wait,
    /// plan lookup, evaluation, enumeration); `match` nests inside it.
    Serve,
    /// Opening a mapped (v3) index: `mmap` plus checksum verification —
    /// the zero-copy counterpart of `index_build`.
    IndexOpen,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 7] = [
        Phase::Parse,
        Phase::IndexBuild,
        Phase::Match,
        Phase::Enumerate,
        Phase::Splice,
        Phase::Serve,
        Phase::IndexOpen,
    ];

    /// The phase's snake_case report key (stable: JSON sidecar schema).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::IndexBuild => "index_build",
            Phase::Match => "match",
            Phase::Enumerate => "enumerate",
            Phase::Splice => "splice",
            Phase::Serve => "serve",
            Phase::IndexOpen => "index_open",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::IndexBuild => 1,
            Phase::Match => 2,
            Phase::Enumerate => 3,
            Phase::Splice => 4,
            Phase::Serve => 5,
            Phase::IndexOpen => 6,
        }
    }
}

/// Typed gauge ids — point-in-time *levels* (not accumulating counts),
/// recorded with [`gauge`]: the most recent set wins within a thread, and
/// merging across threads takes the maximum.
///
/// ```
/// use twigobs::Gauge;
/// assert_eq!(Gauge::ALL.len(), 2);
/// assert_eq!(Gauge::BytesResident.name(), "bytes_resident");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Bytes of index payload resident in memory: heap array bytes for
    /// the built index, `mincore`-reported mapped bytes for the v3 index.
    BytesResident,
    /// Total bytes of the index backing store (heap arrays or file).
    IndexBytes,
}

impl Gauge {
    /// Every gauge, in report order.
    pub const ALL: [Gauge; 2] = [Gauge::BytesResident, Gauge::IndexBytes];

    /// The gauge's snake_case report key (stable: JSON sidecar schema).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::BytesResident => "bytes_resident",
            Gauge::IndexBytes => "index_bytes",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Gauge::BytesResident => 0,
            Gauge::IndexBytes => 1,
        }
    }
}

/// One thread's accumulated observations: a value per [`Counter`] and a
/// total duration + entry count per [`Phase`].
///
/// Obtained by draining a thread with [`take`]; folded across threads
/// with [`Metrics::merge`] (value-level) or [`absorb`] (into the current
/// thread's accumulator). Always a real struct — even in no-op builds —
/// so reports and channels carry it uniformly; in no-op builds it simply
/// never leaves its zeroed state.
///
/// ```
/// use twigobs::{Counter, Metrics, Phase};
/// let mut a = Metrics::default();
/// assert!(a.is_zero());
/// let b = Metrics::default();
/// a.merge(&b);
/// assert_eq!(a.get(Counter::Merges), 0);
/// assert_eq!(a.span_total(Phase::Match).as_nanos(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    span_nanos: [u64; Phase::ALL.len()],
    span_entries: [u64; Phase::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
}

// Hand-written because `Default` is not derivable for arrays longer than
// 32 elements and `Counter::ALL` has outgrown that.
impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counters: [0; Counter::ALL.len()],
            span_nanos: [0; Phase::ALL.len()],
            span_entries: [0; Phase::ALL.len()],
            gauges: [0; Gauge::ALL.len()],
        }
    }
}

impl Metrics {
    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Total time spent inside spans of phase `p`.
    pub fn span_total(&self, p: Phase) -> Duration {
        Duration::from_nanos(self.span_nanos[p.index()])
    }

    /// Number of spans of phase `p` that completed.
    pub fn span_entries(&self, p: Phase) -> u64 {
        self.span_entries[p.index()]
    }

    /// Current level of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// Fold `other` into `self` (counters and span totals add).
    pub fn merge(&mut self, other: &Metrics) {
        for i in 0..self.counters.len() {
            self.counters[i] += other.counters[i];
        }
        for i in 0..self.span_nanos.len() {
            self.span_nanos[i] += other.span_nanos[i];
            self.span_entries[i] += other.span_entries[i];
        }
        for i in 0..self.gauges.len() {
            // Gauges are levels: the merged level is the high-water mark.
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
    }

    /// True iff nothing was recorded (the state [`take`] leaves behind,
    /// and the permanent state of a no-op build).
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.span_nanos.iter().all(|&n| n == 0)
            && self.span_entries.iter().all(|&n| n == 0)
            && self.gauges.iter().all(|&g| g == 0)
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Counter, Gauge, Metrics, Phase};
    use std::cell::RefCell;
    use std::time::{Duration, Instant};

    thread_local! {
        static LOCAL: RefCell<Metrics> = RefCell::new(Metrics::default());
    }

    #[inline]
    pub fn add(c: Counter, n: u64) {
        LOCAL.with(|m| m.borrow_mut().counters[c.index()] += n);
    }

    #[inline]
    pub fn gauge(g: Gauge, level: u64) {
        LOCAL.with(|m| m.borrow_mut().gauges[g.index()] = level);
    }

    pub fn record_span(p: Phase, elapsed: Duration) {
        LOCAL.with(|m| {
            let mut m = m.borrow_mut();
            m.span_nanos[p.index()] += elapsed.as_nanos() as u64;
            m.span_entries[p.index()] += 1;
        });
    }

    pub fn take() -> Metrics {
        LOCAL.with(|m| std::mem::take(&mut *m.borrow_mut()))
    }

    pub fn absorb(other: &Metrics) {
        LOCAL.with(|m| m.borrow_mut().merge(other));
    }

    /// Live timing guard: clocks the phase from construction to drop.
    #[derive(Debug)]
    pub struct SpanGuard {
        phase: Phase,
        start: Instant,
    }

    pub fn span(p: Phase) -> SpanGuard {
        SpanGuard {
            phase: p,
            start: Instant::now(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            record_span(self.phase, self.start.elapsed());
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Counter, Gauge, Metrics, Phase};
    use std::time::Duration;

    #[inline(always)]
    pub fn add(_c: Counter, _n: u64) {}

    #[inline(always)]
    pub fn gauge(_g: Gauge, _level: u64) {}

    #[inline(always)]
    pub fn record_span(_p: Phase, _elapsed: Duration) {}

    #[inline(always)]
    pub fn take() -> Metrics {
        Metrics::default()
    }

    #[inline(always)]
    pub fn absorb(_other: &Metrics) {}

    /// No-op guard: a zero-sized type with no `Drop` logic.
    #[derive(Debug)]
    pub struct SpanGuard;

    #[inline(always)]
    pub fn span(_p: Phase) -> SpanGuard {
        SpanGuard
    }
}

/// A live span: timing starts when [`span`] returns it and is recorded
/// into the thread's accumulator when it drops. In no-op builds this is a
/// zero-sized type and nothing is clocked.
///
/// ```
/// use twigobs::{span, take, Phase};
/// {
///     let _parse = span(Phase::Parse); // dropped at end of scope
/// }
/// let m = take();
/// let expect = if twigobs::ENABLED { 1 } else { 0 };
/// assert_eq!(m.span_entries(Phase::Parse), expect);
/// ```
pub use imp::SpanGuard;

/// Add `n` to counter `c` in this thread's accumulator.
///
/// ```
/// use twigobs::{add, take, Counter};
/// add(Counter::ElementsScanned, 10);
/// let expect = if twigobs::ENABLED { 10 } else { 0 };
/// assert_eq!(take().get(Counter::ElementsScanned), expect);
/// ```
#[inline]
pub fn add(c: Counter, n: u64) {
    imp::add(c, n);
}

/// Add 1 to counter `c` in this thread's accumulator.
#[inline]
pub fn bump(c: Counter) {
    imp::add(c, 1);
}

/// Set gauge `g` to `level` in this thread's accumulator (a level, not an
/// increment: the latest set wins).
///
/// ```
/// use twigobs::{gauge, take, Gauge};
/// gauge(Gauge::BytesResident, 4096);
/// let expect = if twigobs::ENABLED { 4096 } else { 0 };
/// assert_eq!(take().gauge(Gauge::BytesResident), expect);
/// ```
#[inline]
pub fn gauge(g: Gauge, level: u64) {
    imp::gauge(g, level);
}

/// Record a pre-measured duration for phase `p` (for callers that cannot
/// hold a [`SpanGuard`] across the timed region).
#[inline]
pub fn record_span(p: Phase, elapsed: Duration) {
    imp::record_span(p, elapsed);
}

/// Start timing phase `p`; the elapsed time is recorded when the returned
/// guard drops.
#[inline]
#[must_use = "the span records its elapsed time when dropped"]
pub fn span(p: Phase) -> SpanGuard {
    imp::span(p)
}

/// Drain this thread's accumulator, returning everything recorded since
/// the last `take` (zeroed [`Metrics`] in no-op builds).
#[inline]
pub fn take() -> Metrics {
    imp::take()
}

/// Fold `other` into this thread's accumulator — how the parallel
/// evaluator folds each finished chunk's per-thread metrics into the
/// coordinating thread, so the coordinator's final [`take`] reports the
/// whole run.
///
/// ```
/// use twigobs::{absorb, bump, take, Counter};
/// bump(Counter::Chunks);
/// let worker = take(); // pretend this came from a worker thread
/// absorb(&worker);
/// assert_eq!(take().get(Counter::Chunks), worker.get(Counter::Chunks));
/// ```
#[inline]
pub fn absorb(other: &Metrics) {
    imp::absorb(other);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        // Lowercase, digits (twig2stack), and underscores only: the
        // names are the JSON sidecar schema.
        assert!(names.iter().all(|n| n
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')));
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = Metrics::default();
        a.counters[Counter::Merges.index()] = 2;
        a.span_nanos[Phase::Match.index()] = 100;
        a.span_entries[Phase::Match.index()] = 1;
        let mut b = Metrics::default();
        b.counters[Counter::Merges.index()] = 3;
        b.span_nanos[Phase::Match.index()] = 50;
        b.span_entries[Phase::Match.index()] = 2;
        a.merge(&b);
        assert_eq!(a.get(Counter::Merges), 5);
        assert_eq!(a.span_total(Phase::Match), Duration::from_nanos(150));
        assert_eq!(a.span_entries(Phase::Match), 3);
        assert!(!a.is_zero());
    }

    #[test]
    fn take_drains_and_absorb_refills() {
        // Works in both build variants: everything is zero when disabled.
        add(Counter::EdgesCreated, 4);
        let m = take();
        assert!(take().is_zero(), "take must drain");
        absorb(&m);
        assert_eq!(
            take().get(Counter::EdgesCreated),
            m.get(Counter::EdgesCreated)
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_guard_records_positive_time() {
        {
            let _g = span(Phase::Enumerate);
            std::hint::black_box(());
        }
        let m = take();
        assert_eq!(m.span_entries(Phase::Enumerate), 1);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_records_nothing() {
        let _g = span(Phase::Enumerate);
        add(Counter::Merges, 99);
        drop(_g);
        assert!(take().is_zero());
        assert!(!ENABLED);
    }
}
