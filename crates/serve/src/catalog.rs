//! Sharded multi-document catalog: Bloom-routed, scatter-gather serving
//! over N immutable [`Snapshot`]s (DESIGN.md §16).
//!
//! A [`CatalogService`] owns a fixed set of documents partitioned
//! round-robin into shards (doc id modulo shard count), each shard with
//! its own admission `Gate` and a persistent worker thread pool behind
//! an `mpsc` job queue. A query goes through three stages:
//!
//! 1. **Routing** — every document carries a 256-bit [`LabelBloom`] over
//!    its label *names* (names, not interned ids: each document has its
//!    own [`LabelTable`](xmldom::LabelTable), so numeric labels do not
//!    transfer across documents). A query visits only documents whose
//!    Bloom filter may contain **all** of the query's required labels
//!    ([`Gtp::required_label_names`]): labels on the all-mandatory path
//!    from the query root — no optional edge, no OR-group choice point
//!    above them. A document that lacks a required label cannot produce
//!    a match, and a Bloom filter has no false negatives, so routing
//!    never drops a matching document (**zero-false-negative
//!    guarantee**, pinned by `tests/catalog_routing.rs` and the
//!    `catalog_vs_serial` fuzz invariant). False positives only waste a
//!    scan that returns no rows.
//!
//! 2. **Execution** — one job per shard holding routed documents is
//!    submitted to the pool; each job admits itself through the shard's
//!    gate (the PR 5 admission policy, per shard), evaluates its routed
//!    documents in ascending doc-id order, and sends its hits back over
//!    a channel. The gather side merges in `(doc id, document order)` —
//!    byte-equal to serial iteration over all documents
//!    ([`CatalogService::execute_serial`] is the oracle).
//!
//! 3. **Batching** — documents sharing a *schema* (equal
//!    [`SummaryRef::fingerprint`](xmlindex::SummaryRef::fingerprint),
//!    i.e. identical path-summary structure under the same sid
//!    numbering) share one planner run: the cost-based [`PlanDecision`]
//!    and the satisfiability verdict are computed against the first
//!    document of the schema the query meets and reused for every
//!    sibling — the planner runs once per schema, not once per document.
//!    (Feasibility depends only on summary structure and label names, so
//!    the *satisfiability* verdict transfers exactly; per-sid counts and
//!    hulls vary within a schema, so the engine/policy choice is a
//!    shape-representative approximation — a performance knob, never a
//!    correctness one.) [`CatalogService::execute_batch`] additionally
//!    extends the PR 5 same-label-set shared scans across the batch: on
//!    every document, queries whose plans read the same label set share
//!    one merged stream scan.
//!
//! Per-document stream plans ([`IndexedPlan`]) are still computed per
//! document — their root covers and filters are built from that
//! document's region hulls, and reusing them across documents would be
//! unsound. The catalog's throughput win over serial iteration is the
//! routing skip-rate plus the once-per-schema planning, measured by
//! EXPERIMENTS.md Fig U.

use crate::planner::{self, PlanDecision, PlannerMode};
use crate::{Gate, ServeError, ServeIndex, Snapshot};
use gtpquery::{parse_twig, serialize, CancelToken, Gtp, ResultSet};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use twig2stack::{
    enumerate, try_match_indexed, try_match_indexed_group, IndexedPlan, MatchOptions,
};
use xmldom::{Document, Label};
use xmlindex::{ElementIndex, IndexView, MappedIndex, MappedOpenError, PruningPolicy};

/// A 256-bit Bloom filter over label *names*, k = 4 probes by double
/// hashing from one FNV-1a pass. Sized for real-world XML vocabularies
/// (tens of distinct labels per document): at 64 labels the
/// false-positive rate is ≈ (1 − e^(−4·64/256))⁴ ≈ 13% per probed name,
/// and `tests/catalog_routing.rs` pins a ceiling on the measured rate.
/// False negatives are impossible by construction — the routing
/// guarantee rests on exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelBloom {
    bits: [u64; 4],
}

impl LabelBloom {
    fn hash(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn probes(name: &str) -> [u32; 4] {
        let h = Self::hash(name);
        let h1 = h;
        // Odd second hash so the probe stride cycles the whole table.
        let h2 = (h >> 32) | 1;
        std::array::from_fn(|k| (h1.wrapping_add((k as u64).wrapping_mul(h2)) % 256) as u32)
    }

    /// Add a label name to the set.
    pub fn insert(&mut self, name: &str) {
        for bit in Self::probes(name) {
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// True if `name` *may* have been inserted (false positives
    /// possible); false only if it definitely was not (never wrong).
    pub fn maybe_contains(&self, name: &str) -> bool {
        Self::probes(name)
            .iter()
            .all(|bit| self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }
}

/// One document for [`CatalogService::build`]: served from a heap-built
/// index or from a mapped v3 index file (same results, byte for byte).
pub enum CatalogDoc {
    /// Build an [`ElementIndex`] for the document at catalog build time.
    Heap(Document),
    /// Serve the document from the mapped v3 index at the path (written
    /// by [`xmlindex::write_mapped_index`] from the same parse).
    Mapped(Document, PathBuf),
}

/// Tuning knobs for a [`CatalogService`].
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Shards the documents are partitioned into (doc id modulo shards;
    /// ≥ 1). One worker thread per shard unless `workers` overrides it.
    pub shards: usize,
    /// Worker threads in the scatter-gather pool; 0 means one per shard.
    pub workers: usize,
    /// Shard jobs allowed to evaluate concurrently per shard (the PR 5
    /// admission gate, applied per shard).
    pub per_shard_concurrency: usize,
    /// Shard jobs allowed to queue per shard before the overload policy
    /// sheds the whole query with [`ServeError::Overloaded`].
    pub per_shard_waiting: usize,
    /// Cached catalog plans (routing label sets + per-schema decisions);
    /// the cache is cleared wholesale when it reaches capacity.
    pub plan_cache_capacity: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            shards: 4,
            workers: 0,
            per_shard_concurrency: 2,
            per_shard_waiting: 16,
            plan_cache_capacity: 64,
        }
    }
}

/// One non-empty per-document result: the document's catalog id and its
/// result rows in document order. [`CatalogService::execute`] returns
/// hits sorted by `doc` — the serial iteration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocHit {
    /// Catalog document id (position in the `build` input).
    pub doc: u32,
    /// The document's result rows, in document order.
    pub rows: ResultSet,
}

/// Point-in-time catalog counters (plain atomics, mirrored into the
/// matching [`twigobs`] counters; assertions use these because worker
/// threads record `twigobs` metrics into their own thread-local sinks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Queries accepted (parse succeeded; routing ran).
    pub queries: u64,
    /// (query, document) pairs the router sent to a shard.
    pub docs_routed: u64,
    /// (query, document) pairs the router skipped on the Bloom probe.
    pub docs_skipped: u64,
    /// Shard jobs dispatched (one per shard holding routed documents).
    pub shard_queries: u64,
    /// Shared-scan groups formed by [`CatalogService::execute_batch`].
    pub batches: u64,
    /// Per-schema planner runs (one per distinct fingerprint a query
    /// met — the quantity once-per-schema planning amortizes).
    pub schema_plans: u64,
}

#[derive(Debug, Default)]
struct CatalogStatsCell {
    queries: AtomicU64,
    routed: AtomicU64,
    skipped: AtomicU64,
    shard_queries: AtomicU64,
    batches: AtomicU64,
    schema_plans: AtomicU64,
}

/// The planner's per-schema verdict for one catalog plan.
#[derive(Debug, Clone, Copy)]
struct SchemaPlan {
    decision: PlanDecision,
    unsatisfiable: bool,
}

/// A cached catalog query: the parsed GTP (document-independent — label
/// names resolve per document at dispatch), its required routing labels,
/// and the per-schema planner verdicts accumulated so far.
struct CatalogPlan {
    gtp: Gtp,
    required: Vec<String>,
    schemas: Mutex<HashMap<u64, SchemaPlan>>,
}

struct DocEntry {
    id: u32,
    snap: Arc<Snapshot>,
    bloom: LabelBloom,
    fingerprint: u64,
}

struct Shard {
    docs: Vec<DocEntry>,
    gate: Gate,
}

struct CatalogInner {
    shards: Vec<Shard>,
    doc_count: usize,
    plans: Mutex<HashMap<String, Arc<CatalogPlan>>>,
    plan_capacity: usize,
    stats: CatalogStatsCell,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Persistent worker threads draining a shared job queue. Dropping the
/// pool closes the queue and joins every worker.
struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(size: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("catalog-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue,
                        // never across a job.
                        let job = rx.lock().expect("job queue poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn catalog worker")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        self.tx
            .lock()
            .expect("job queue poisoned")
            .as_ref()
            .expect("pool is alive while the service exists")
            .send(job)
            .expect("catalog workers outlive the service");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        *self.tx.lock().expect("job queue poisoned") = None;
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

/// A multi-document query service: Bloom routing, per-shard admission,
/// scatter-gather execution, once-per-schema planning. See the module
/// docs for the architecture and guarantees.
pub struct CatalogService {
    inner: Arc<CatalogInner>,
    pool: WorkerPool,
}

impl CatalogService {
    /// Build a catalog over `docs` (heap or mapped members). Document
    /// ids are the input positions; shard assignment is `id % shards`.
    pub fn build(docs: Vec<CatalogDoc>, config: CatalogConfig) -> Result<Self, MappedOpenError> {
        let shard_count = config.shards.max(1);
        let mut shards: Vec<Vec<DocEntry>> = (0..shard_count).map(|_| Vec::new()).collect();
        let doc_count = docs.len();
        for (i, member) in docs.into_iter().enumerate() {
            let (doc, index) = match member {
                CatalogDoc::Heap(doc) => {
                    let ix = ElementIndex::build(&doc);
                    (doc, ServeIndex::Heap(ix))
                }
                CatalogDoc::Mapped(doc, path) => {
                    (doc, ServeIndex::Mapped(MappedIndex::open(&path)?))
                }
            };
            let mut bloom = LabelBloom::default();
            for (_, name) in doc.labels().iter() {
                bloom.insert(name);
            }
            let fingerprint = index.summary().fingerprint(doc.labels());
            let snap = Arc::new(Snapshot {
                doc,
                index,
                version: 0,
                dewey: OnceLock::new(),
            });
            shards[i % shard_count].push(DocEntry {
                id: i as u32,
                snap,
                bloom,
                fingerprint,
            });
        }
        let workers = if config.workers == 0 {
            shard_count
        } else {
            config.workers
        };
        let inner = Arc::new(CatalogInner {
            shards: shards
                .into_iter()
                .map(|docs| Shard {
                    docs,
                    gate: Gate::new(config.per_shard_concurrency, config.per_shard_waiting),
                })
                .collect(),
            doc_count,
            plans: Mutex::new(HashMap::new()),
            plan_capacity: config.plan_cache_capacity,
            stats: CatalogStatsCell::default(),
        });
        Ok(CatalogService {
            inner,
            pool: WorkerPool::new(workers),
        })
    }

    /// Build a catalog of heap-indexed documents (the common case).
    pub fn build_heap(docs: Vec<Document>, config: CatalogConfig) -> Self {
        CatalogService::build(docs.into_iter().map(CatalogDoc::Heap).collect(), config)
            .expect("heap members cannot fail to open")
    }

    /// Documents in the catalog.
    pub fn doc_count(&self) -> usize {
        self.inner.doc_count
    }

    /// Shards the catalog is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Snapshot the catalog counters.
    pub fn stats(&self) -> CatalogStats {
        let s = &self.inner.stats;
        CatalogStats {
            queries: s.queries.load(Ordering::Relaxed),
            docs_routed: s.routed.load(Ordering::Relaxed),
            docs_skipped: s.skipped.load(Ordering::Relaxed),
            shard_queries: s.shard_queries.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            schema_plans: s.schema_plans.load(Ordering::Relaxed),
        }
    }

    /// The doc ids `query` routes to (Bloom pass), without executing —
    /// the introspection hook the routing tests probe.
    pub fn routed_docs(&self, query: &str) -> Result<Vec<u32>, ServeError> {
        let plan = self.inner.plan_for(query)?;
        let mut ids: Vec<u32> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| s.docs.iter())
            .filter(|e| plan.routes_to(e))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Evaluate `query` against every routed document; hits are merged
    /// in ascending doc-id order, rows within a hit in document order.
    pub fn execute(&self, query: &str) -> Result<Vec<DocHit>, ServeError> {
        self.execute_with(query, CancelToken::never())
    }

    /// [`execute`](CatalogService::execute) under an explicit
    /// cancellation token, shared by every shard job: a deadline cuts
    /// the whole scatter at stream-advance granularity.
    pub fn execute_with(
        &self,
        query: &str,
        cancel: CancelToken,
    ) -> Result<Vec<DocHit>, ServeError> {
        let _span = twigobs::span(twigobs::Phase::Serve);
        let plan = self.inner.plan_for(query)?;
        self.inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        let work = self.inner.route(&plan);
        let gathered = self.scatter(work, move |inner, si, positions| {
            inner.run_shard(si, &positions, &plan, &cancel)
        })?;
        let mut hits = Vec::new();
        for shard_hits in gathered {
            hits.extend(shard_hits?);
        }
        // Shards interleave doc ids (id % shards); restore serial order.
        hits.sort_by_key(|h| h.doc);
        Ok(hits)
    }

    /// Evaluate a batch against the catalog, sharing one merged stream
    /// scan per document among queries whose plans read the same label
    /// set (the PR 5 shared scan, extended across the catalog). Returns
    /// one result per input query, in input order; each query fails
    /// independently.
    pub fn execute_batch(&self, queries: &[&str]) -> Vec<Result<Vec<DocHit>, ServeError>> {
        let _span = twigobs::span(twigobs::Phase::Serve);
        let mut out: Vec<Option<Result<Vec<DocHit>, ServeError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut members: Vec<(usize, Arc<CatalogPlan>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match self.inner.plan_for(q) {
                Ok(p) => {
                    self.inner.stats.queries.fetch_add(1, Ordering::Relaxed);
                    members.push((i, p));
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        // Scatter once: each shard job evaluates every member over its
        // routed documents, sharing scans where label sets coincide.
        let mut work: Vec<(usize, Vec<u32>)> = Vec::new();
        for si in 0..self.inner.shards.len() {
            let positions: Vec<u32> = (0..self.inner.shards[si].docs.len() as u32)
                .filter(|&p| {
                    let e = &self.inner.shards[si].docs[p as usize];
                    members.iter().any(|(_, plan)| plan.routes_to(e))
                })
                .collect();
            if !positions.is_empty() {
                work.push((si, positions));
            }
        }
        // Per-member routing counters (the scatter above unions them).
        for (_, plan) in &members {
            let _ = self.inner.route(plan);
        }
        let members = Arc::new(members);
        let gathered = {
            let members = Arc::clone(&members);
            self.scatter(work, move |inner, si, positions| {
                Ok(inner.run_shard_batch(si, &positions, &members))
            })
        };
        let mut per_query: Vec<Result<Vec<DocHit>, ServeError>> =
            members.iter().map(|_| Ok(Vec::new())).collect();
        match gathered {
            Ok(shard_outputs) => {
                for shard_out in shard_outputs {
                    for (m, result) in shard_out
                        .expect("batch shard jobs return Ok")
                        .into_iter()
                        .enumerate()
                    {
                        match (result, &mut per_query[m]) {
                            (Ok(hits), Ok(acc)) => acc.extend(hits),
                            (Err(e), slot @ Ok(_)) => *slot = Err(e),
                            (_, Err(_)) => {}
                        }
                    }
                }
            }
            Err(e) => {
                // The scatter itself failed (a worker died): every
                // member shares the failure.
                let msg = e.to_string();
                for slot in &mut per_query {
                    *slot = Err(ServeError::Panicked(msg.clone()));
                }
            }
        }
        for ((i, _), result) in members.iter().zip(per_query) {
            out[*i] = Some(result.map(|mut hits| {
                hits.sort_by_key(|h| h.doc);
                hits
            }));
        }
        out.into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// The serial oracle and throughput baseline: iterate every document
    /// in doc-id order with a fresh per-document analysis — no routing,
    /// no schema reuse, no shard pool. [`execute`](CatalogService::execute)
    /// must return exactly this (Fig U asserts it catalog-wide).
    pub fn execute_serial(&self, query: &str) -> Result<Vec<DocHit>, ServeError> {
        let gtp = parse_twig(query)?;
        let shard_count = self.inner.shards.len();
        let mut hits = Vec::new();
        for id in 0..self.inner.doc_count {
            let entry = &self.inner.shards[id % shard_count].docs[id / shard_count];
            let snap = &entry.snap;
            let labels = snap.doc.labels();
            // The full per-document pipeline, every time: plan decision,
            // feasibility analysis, stream scan.
            let decision = planner::decide(
                &gtp,
                snap.index(),
                labels,
                PlannerMode::Adaptive,
                PruningPolicy::Enabled,
            );
            let plan = IndexedPlan::compute(&gtp, snap.index(), labels, decision.policy);
            let rows = eval_entry(snap, &gtp, &plan)?;
            if !rows.is_empty() {
                hits.push(DocHit {
                    doc: entry.id,
                    rows,
                });
            }
        }
        Ok(hits)
    }

    /// Submit one job per `(shard, routed positions)` pair and gather
    /// the per-shard outputs, in shard order. A job that dies without
    /// reporting (a panicking worker) surfaces as
    /// [`ServeError::Panicked`] instead of a silent truncation.
    fn scatter<T, F>(
        &self,
        work: Vec<(usize, Vec<u32>)>,
        run: F,
    ) -> Result<Vec<Result<T, ServeError>>, ServeError>
    where
        T: Send + 'static,
        F: Fn(&CatalogInner, usize, Vec<u32>) -> Result<T, ServeError>
            + Send
            + Sync
            + Clone
            + 'static,
    {
        let jobs = work.len();
        let (tx, rx) = mpsc::channel();
        for (si, positions) in work {
            self.inner
                .stats
                .shard_queries
                .fetch_add(1, Ordering::Relaxed);
            twigobs::bump(twigobs::Counter::ShardQueries);
            let inner = Arc::clone(&self.inner);
            let run = run.clone();
            let tx = tx.clone();
            self.pool.submit(Box::new(move || {
                let outcome = run(&inner, si, positions);
                let _ = tx.send((si, outcome));
            }));
        }
        drop(tx);
        let mut gathered: Vec<(usize, Result<T, ServeError>)> = rx.iter().collect();
        if gathered.len() != jobs {
            return Err(ServeError::Panicked("a catalog shard job died".into()));
        }
        gathered.sort_by_key(|&(si, _)| si);
        Ok(gathered.into_iter().map(|(_, r)| r).collect())
    }
}

impl CatalogInner {
    /// Look up (or build) the catalog plan for `query`. The cache key is
    /// the canonical serialization, so every spelling of one GTP shares
    /// a plan; at capacity the cache is cleared wholesale (catalog plans
    /// are cheap to rebuild — parse + required-label extraction).
    fn plan_for(&self, query: &str) -> Result<Arc<CatalogPlan>, ServeError> {
        let gtp = parse_twig(query)?;
        let key = serialize(&gtp);
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(p) = plans.get(&key) {
            return Ok(Arc::clone(p));
        }
        let required = gtp
            .required_label_names()
            .into_iter()
            .map(String::from)
            .collect();
        let plan = Arc::new(CatalogPlan {
            gtp,
            required,
            schemas: Mutex::new(HashMap::new()),
        });
        if plans.len() >= self.plan_capacity.max(1) {
            plans.clear();
        }
        plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Bloom-route `plan` over every shard: returns the shards holding
    /// routed documents with the routed *positions* within each shard
    /// (ascending — doc-id order within the shard), and counts the
    /// routed/skipped split.
    fn route(&self, plan: &CatalogPlan) -> Vec<(usize, Vec<u32>)> {
        let mut work = Vec::new();
        let mut routed = 0u64;
        let mut skipped = 0u64;
        for (si, shard) in self.shards.iter().enumerate() {
            let positions: Vec<u32> = (0..shard.docs.len() as u32)
                .filter(|&p| plan.routes_to(&shard.docs[p as usize]))
                .collect();
            routed += positions.len() as u64;
            skipped += shard.docs.len() as u64 - positions.len() as u64;
            if !positions.is_empty() {
                work.push((si, positions));
            }
        }
        self.stats.routed.fetch_add(routed, Ordering::Relaxed);
        self.stats.skipped.fetch_add(skipped, Ordering::Relaxed);
        twigobs::add(twigobs::Counter::CatalogDocsRouted, routed);
        twigobs::add(twigobs::Counter::CatalogDocsSkipped, skipped);
        work
    }

    /// The per-schema planner verdict for (`plan`, `entry`), computed on
    /// first contact with the schema and reused for every sibling.
    /// Returns the verdict plus, on a schema miss, the probe
    /// [`IndexedPlan`] already computed against `entry`'s index (the
    /// caller reuses it instead of analyzing twice).
    fn schema_for(
        &self,
        plan: &CatalogPlan,
        entry: &DocEntry,
    ) -> (SchemaPlan, Option<IndexedPlan>) {
        let mut schemas = plan.schemas.lock().expect("schema map poisoned");
        if let Some(s) = schemas.get(&entry.fingerprint) {
            return (*s, None);
        }
        let snap = &entry.snap;
        let decision = planner::decide(
            &plan.gtp,
            snap.index(),
            snap.doc.labels(),
            PlannerMode::Adaptive,
            PruningPolicy::Enabled,
        );
        let probe =
            IndexedPlan::compute(&plan.gtp, snap.index(), snap.doc.labels(), decision.policy);
        let verdict = SchemaPlan {
            decision,
            unsatisfiable: probe.is_unsatisfiable(),
        };
        schemas.insert(entry.fingerprint, verdict);
        self.stats.schema_plans.fetch_add(1, Ordering::Relaxed);
        (verdict, Some(probe))
    }

    /// Evaluate one shard's routed documents for one query, in ascending
    /// doc-id order, under the shard's admission gate.
    fn run_shard(
        &self,
        si: usize,
        positions: &[u32],
        plan: &CatalogPlan,
        cancel: &CancelToken,
    ) -> Result<Vec<DocHit>, ServeError> {
        let shard = &self.shards[si];
        let _permit = shard.gate.admit()?;
        let mut out = Vec::new();
        for &p in positions {
            let entry = &shard.docs[p as usize];
            let (schema, probe) = self.schema_for(plan, entry);
            if schema.unsatisfiable {
                // The verdict transfers across the schema: no stream is
                // touched for any sibling document.
                continue;
            }
            let iplan = probe.unwrap_or_else(|| {
                IndexedPlan::compute(
                    &plan.gtp,
                    entry.snap.index(),
                    entry.snap.doc.labels(),
                    schema.decision.policy,
                )
            });
            let rows = eval_entry_cancellable(&entry.snap, &plan.gtp, &iplan, cancel)?;
            if !rows.is_empty() {
                out.push(DocHit {
                    doc: entry.id,
                    rows,
                });
            }
        }
        Ok(out)
    }

    /// Evaluate every batch member over one shard's routed documents.
    /// Per document, members whose stream plans read the same label set
    /// share one merged scan ([`try_match_indexed_group`]); the rest
    /// evaluate alone. Returns one result per member, in member order.
    fn run_shard_batch(
        &self,
        si: usize,
        positions: &[u32],
        members: &[(usize, Arc<CatalogPlan>)],
    ) -> Vec<Result<Vec<DocHit>, ServeError>> {
        let shard = &self.shards[si];
        let _permit = match shard.gate.admit() {
            Ok(p) => p,
            Err(e) => {
                let msg = e.to_string();
                return members
                    .iter()
                    .map(|_| Err(ServeError::Panicked(msg.clone())))
                    .collect();
            }
        };
        let mut out: Vec<Result<Vec<DocHit>, ServeError>> =
            members.iter().map(|_| Ok(Vec::new())).collect();
        for &p in positions {
            let entry = &shard.docs[p as usize];
            // Members routed to this document, with their per-document
            // stream plans (schema verdicts shared as in run_shard).
            let mut ready: Vec<(usize, IndexedPlan)> = Vec::new();
            for (m, (_, plan)) in members.iter().enumerate() {
                if out[m].is_err() || !plan.routes_to(entry) {
                    continue;
                }
                let (schema, probe) = self.schema_for(plan, entry);
                if schema.unsatisfiable {
                    continue;
                }
                let iplan = probe.unwrap_or_else(|| {
                    IndexedPlan::compute(
                        &plan.gtp,
                        entry.snap.index(),
                        entry.snap.doc.labels(),
                        schema.decision.policy,
                    )
                });
                ready.push((m, iplan));
            }
            // Group by scanned label set: equal sets share one scan.
            let mut groups: Vec<(Vec<Label>, Vec<usize>)> = Vec::new();
            for (ri, (_, iplan)) in ready.iter().enumerate() {
                let mut labels: Vec<Label> = iplan.labels().to_vec();
                labels.sort_unstable();
                match groups.iter_mut().find(|(l, _)| *l == labels) {
                    Some((_, g)) => g.push(ri),
                    None => groups.push((labels, vec![ri])),
                }
            }
            for (_, group) in groups {
                if group.len() > 1 {
                    self.stats.batches.fetch_add(1, Ordering::Relaxed);
                    twigobs::bump(twigobs::Counter::CatalogBatches);
                    let refs: Vec<(&Gtp, &IndexedPlan)> = group
                        .iter()
                        .map(|&ri| (&members[ready[ri].0].1.gtp, &ready[ri].1))
                        .collect();
                    let shared = catch_unwind(AssertUnwindSafe(|| {
                        try_match_indexed_group(
                            &entry.snap.doc,
                            entry.snap.index(),
                            &refs,
                            MatchOptions::default(),
                            &CancelToken::never(),
                        )
                        .map(|v| {
                            v.into_iter()
                                .map(|(tm, _)| enumerate(&tm))
                                .collect::<Vec<_>>()
                        })
                    }));
                    if let Ok(Ok(results)) = shared {
                        for (&ri, rows) in group.iter().zip(results) {
                            let m = ready[ri].0;
                            if !rows.is_empty() {
                                if let Ok(acc) = &mut out[m] {
                                    acc.push(DocHit {
                                        doc: entry.id,
                                        rows,
                                    });
                                }
                            }
                        }
                        continue;
                    }
                    // Shared scan failed: fall through to per-member
                    // evaluation for accurate per-query errors.
                }
                for &ri in &group {
                    let (m, iplan) = (&ready[ri].0, &ready[ri].1);
                    let rows = eval_entry(&entry.snap, &members[*m].1.gtp, iplan);
                    match (rows, &mut out[*m]) {
                        (Ok(rows), Ok(acc)) => {
                            if !rows.is_empty() {
                                acc.push(DocHit {
                                    doc: entry.id,
                                    rows,
                                });
                            }
                        }
                        (Err(e), slot @ Ok(_)) => *slot = Err(e),
                        (_, Err(_)) => {}
                    }
                }
            }
        }
        out
    }
}

impl CatalogPlan {
    /// The routing predicate: every required label may be present.
    ///
    /// A label-free plan (all wildcards / every named step optional or
    /// OR-grouped — `required_label_names()` came back empty) carries
    /// no routing evidence, so it must route to **every** document,
    /// never zero. The explicit early return pins that contract even if
    /// the loop below ever changes quantifier shape; the wildcard-root
    /// test in `tests/catalog_routing.rs` pins it end to end.
    fn routes_to(&self, entry: &DocEntry) -> bool {
        if self.required.is_empty() {
            return true;
        }
        self.required
            .iter()
            .all(|name| entry.bloom.maybe_contains(name))
    }
}

fn eval_entry(snap: &Snapshot, gtp: &Gtp, plan: &IndexedPlan) -> Result<ResultSet, ServeError> {
    eval_entry_cancellable(snap, gtp, plan, &CancelToken::never())
}

/// One document's indexed Twig²Stack evaluation, panic-contained so an
/// engine bug in one document cannot take down a shard worker.
fn eval_entry_cancellable(
    snap: &Snapshot,
    gtp: &Gtp,
    plan: &IndexedPlan,
    cancel: &CancelToken,
) -> Result<ResultSet, ServeError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        try_match_indexed(
            &snap.doc,
            snap.index(),
            gtp,
            MatchOptions::default(),
            plan,
            None,
            cancel,
        )
        .map(|(tm, _stats)| enumerate(&tm))
    }));
    match outcome {
        Ok(Ok(rows)) => Ok(rows),
        Ok(Err(e)) => Err(ServeError::Query(e)),
        Err(payload) => Err(ServeError::Panicked(crate::panic_message(payload))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Document> {
        [
            "<a><b><c/></b><b/></a>",
            "<x><y/><y><z/></y></x>",
            "<a><d/><b><c/><c/></b></a>",
            "<x><y/></x>",
            "<a><b/></a>",
        ]
        .iter()
        .map(|x| xmldom::parse(x).unwrap())
        .collect()
    }

    fn catalog(shards: usize) -> CatalogService {
        CatalogService::build_heap(
            docs(),
            CatalogConfig {
                shards,
                ..CatalogConfig::default()
            },
        )
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bloom = LabelBloom::default();
        let names: Vec<String> = (0..64).map(|i| format!("label{i}")).collect();
        for n in &names {
            bloom.insert(n);
        }
        for n in &names {
            assert!(bloom.maybe_contains(n), "{n} was inserted");
        }
    }

    #[test]
    fn execute_equals_serial_iteration() {
        for shards in [1, 2, 4, 7] {
            let cat = catalog(shards);
            for q in ["//a/b[c]", "//y", "//a//c", "//b", "//x/y/z", "//q"] {
                assert_eq!(
                    cat.execute(q).unwrap(),
                    cat.execute_serial(q).unwrap(),
                    "shards={shards} {q}"
                );
            }
        }
    }

    #[test]
    fn routing_skips_label_disjoint_documents() {
        let cat = catalog(2);
        assert_eq!(cat.routed_docs("//x/y").unwrap(), vec![1, 3]);
        cat.execute("//x/y").unwrap();
        let s = cat.stats();
        assert_eq!(s.docs_routed, 2);
        assert_eq!(s.docs_skipped, 3, "the three a-family docs never scan");
        assert!(s.shard_queries <= 2, "only shards holding routed docs run");
    }

    #[test]
    fn routing_never_drops_a_matching_document() {
        let cat = catalog(3);
        for q in ["//a/b", "//c", "//y[z]", "//x//z", "//d"] {
            let routed = cat.routed_docs(q).unwrap();
            for hit in cat.execute_serial(q).unwrap() {
                assert!(
                    routed.contains(&hit.doc),
                    "{q}: doc {} matches but was not routed",
                    hit.doc
                );
            }
        }
    }

    #[test]
    fn schema_plans_run_once_per_fingerprint() {
        // Docs 0, 2, 4 share the a-family vocabulary but have three
        // distinct summary shapes; doc 1 and 3 differ too. Repeat docs
        // so sharing is observable.
        let mut many = docs();
        many.extend(docs());
        let cat = CatalogService::build_heap(many, CatalogConfig::default());
        cat.execute("//a/b").unwrap();
        let s = cat.stats();
        assert_eq!(s.docs_routed, 6, "both copies of each a-family doc route");
        assert_eq!(
            s.schema_plans, 3,
            "three distinct a-family schemas; the copies reuse the verdict"
        );
        cat.execute("//a/b").unwrap();
        assert_eq!(
            cat.stats().schema_plans,
            3,
            "verdicts persist across queries"
        );
    }

    #[test]
    fn unsatisfiable_schemas_short_circuit() {
        let cat = catalog(2);
        // Every label in `//a[b][d]/b/c` exists somewhere in the
        // a-family vocabulary, so Bloom routing admits those docs — but
        // no single document has a `d` sibling next to a `b/c` path
        // except doc 2, and doc 4's summary cannot embed the twig at
        // all: its schema verdict is unsatisfiable and transfers.
        let q = "//a[b][d]/b/c";
        assert_eq!(cat.execute(q).unwrap(), cat.execute_serial(q).unwrap());
    }

    #[test]
    fn batch_matches_per_query_execution() {
        let cat = catalog(2);
        let queries = ["//a/b", "//y", "bogus[", "//a//c", "//b[c]"];
        let batch = cat.execute_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, r) in queries.iter().zip(&batch) {
            match *q {
                "bogus[" => assert!(matches!(r, Err(ServeError::Parse(_)))),
                q => assert_eq!(*r.as_ref().unwrap(), cat.execute(q).unwrap(), "{q}"),
            }
        }
        // //a/b and //b[c] both scan {a, b, c}? No — //a/b scans {a, b}.
        // //a//c and //b[c] scan different sets too; sharing may or may
        // not form here, but the batch path must agree regardless.
    }

    #[test]
    fn batch_shares_scans_for_same_label_sets() {
        let cat = catalog(1);
        // Two spellings with the same scanned label set {a, b, c} on the
        // a-family docs: they must share one scan per document.
        let queries = ["//a/b[c]", "//a[b/c]"];
        let batch = cat.execute_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            assert_eq!(*r.as_ref().unwrap(), cat.execute(q).unwrap(), "{q}");
        }
        assert!(
            cat.stats().batches >= 1,
            "at least one shared-scan group formed"
        );
    }

    #[test]
    fn mapped_members_agree_with_heap_members() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("catalog-mapped-{}.t2s", std::process::id()));
        let xml = "<a><b><c/></b><b/></a>";
        xmlindex::write_mapped_index(&xmldom::parse(xml).unwrap(), &path).unwrap();
        let mixed = CatalogService::build(
            vec![
                CatalogDoc::Mapped(xmldom::parse(xml).unwrap(), path.clone()),
                CatalogDoc::Heap(xmldom::parse("<a><b/></a>").unwrap()),
            ],
            CatalogConfig::default(),
        )
        .unwrap();
        let heap = CatalogService::build_heap(
            vec![
                xmldom::parse(xml).unwrap(),
                xmldom::parse("<a><b/></a>").unwrap(),
            ],
            CatalogConfig::default(),
        );
        for q in ["//a/b", "//b[c]", "//c"] {
            assert_eq!(mixed.execute(q).unwrap(), heap.execute(q).unwrap(), "{q}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deadlines_cut_the_scatter() {
        let cat = catalog(2);
        let err = cat
            .execute_with(
                "//a/b",
                CancelToken::with_deadline(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Query(gtpquery::QueryError::DeadlineExceeded)
        ));
    }

    #[test]
    fn empty_catalog_answers_with_no_hits() {
        let cat = CatalogService::build_heap(Vec::new(), CatalogConfig::default());
        assert_eq!(cat.execute("//a").unwrap(), Vec::new());
        assert_eq!(cat.doc_count(), 0);
    }

    #[test]
    fn hits_arrive_in_ascending_doc_order() {
        // Enough same-vocabulary docs that every shard contributes.
        let many: Vec<Document> = (0..17)
            .map(|_| xmldom::parse("<a><b/></a>").unwrap())
            .collect();
        let cat = CatalogService::build_heap(
            many,
            CatalogConfig {
                shards: 4,
                ..CatalogConfig::default()
            },
        );
        let hits = cat.execute("//a/b").unwrap();
        let ids: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(ids, (0..17).collect::<Vec<u32>>());
    }
}
