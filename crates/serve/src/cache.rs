//! Sharded LRU plan cache keyed by the canonical query text.
//!
//! The cache stores [`CachedPlan`]s — a parsed [`Gtp`] plus its
//! [`IndexedPlan`] (the summary-feasibility analysis output) — behind
//! [`gtpquery::serialize()`]'s canonical bracket-only form, so every
//! spelling of a query that parses to the same GTP shares one entry
//! (`//a/b[c]`, `//a[b/c]/b[c]`-style rewrites do not: the key is the
//! *structure*, not the text the client sent).
//!
//! Sharding bounds contention: a key hashes to one shard, each shard is
//! an independently locked map with its own LRU capacity, and recency is
//! a global atomic stamp (no per-shard clocks to reconcile). Eviction is
//! exact LRU *within a shard* — good enough for a plan cache, where the
//! win measured by Fig T is hit-vs-miss analysis cost, not eviction
//! precision.

use crate::planner::PlanDecision;
use gtpquery::Gtp;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use twig2stack::IndexedPlan;

/// A cached, immutable evaluation plan: the parsed query and its
/// index-specific stream plan. Shared by `Arc` so a hit never copies and
/// an eviction never invalidates an in-flight evaluation.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed query (node ids align with `plan`).
    pub gtp: Gtp,
    /// The summary-feasibility stream plan for the service's index,
    /// computed with the decision's [`PruningPolicy`].
    ///
    /// [`PruningPolicy`]: xmlindex::PruningPolicy
    pub plan: IndexedPlan,
    /// The planner's verdict: engine, pruning policy, enumeration
    /// strategy, and (in adaptive mode) the predictions behind them.
    pub decision: PlanDecision,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    stamp: u64,
}

/// Sharded LRU map from canonical query text to [`CachedPlan`].
///
/// A total capacity of 0 disables the cache entirely (every lookup
/// misses, nothing is stored) — the Fig T "cache off" arm.
#[derive(Debug)]
pub(crate) struct PlanCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look `key` up, refreshing its recency stamp on a hit.
    pub(crate) fn get(&self, key: &str) -> Option<Arc<CachedPlan>> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("plan cache poisoned");
        let entry = shard.get_mut(key)?;
        entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.plan))
    }

    /// Insert (or refresh) `key`, evicting least-recently-used entries in
    /// the key's shard while it is over capacity. Returns how many
    /// entries were evicted (0 or 1 in steady state).
    pub(crate) fn insert(&self, key: String, plan: Arc<CachedPlan>) -> u64 {
        if self.per_shard_capacity == 0 {
            return 0;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("plan cache poisoned");
        shard.insert(key, Entry { plan, stamp });
        let mut evicted = 0;
        while shard.len() > self.per_shard_capacity {
            let oldest = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("over-capacity shard is non-empty");
            shard.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Number of cached plans across all shards (test/diagnostic aid).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use twig2stack::IndexedPlan;
    use xmldom::parse;
    use xmlindex::{ElementIndex, PruningPolicy};

    fn plan_for(q: &str) -> Arc<CachedPlan> {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig(q).unwrap();
        let plan = IndexedPlan::compute(&gtp, &index, doc.labels(), PruningPolicy::Enabled);
        Arc::new(CachedPlan { gtp, plan, decision: PlanDecision::default() })
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = PlanCache::new(8, 2);
        assert!(cache.get("//a").is_none());
        cache.insert("//a".into(), plan_for("//a"));
        assert!(cache.get("//a").is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = PlanCache::new(0, 4);
        assert_eq!(cache.insert("//a".into(), plan_for("//a")), 0);
        assert!(cache.get("//a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry_per_shard() {
        // One shard so recency order is total and the test deterministic.
        let cache = PlanCache::new(2, 1);
        cache.insert("//a".into(), plan_for("//a"));
        cache.insert("//b".into(), plan_for("//b"));
        // Touch //a so //b becomes the LRU victim.
        assert!(cache.get("//a").is_some());
        let evicted = cache.insert("//c".into(), plan_for("//c"));
        assert_eq!(evicted, 1);
        assert!(cache.get("//a").is_some(), "recently used entry survives");
        assert!(cache.get("//b").is_none(), "LRU entry was evicted");
        assert!(cache.get("//c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn an_evicted_plan_stays_usable_while_referenced() {
        let cache = PlanCache::new(1, 1);
        cache.insert("//a".into(), plan_for("//a"));
        let held = cache.get("//a").unwrap();
        cache.insert("//b".into(), plan_for("//b"));
        assert!(cache.get("//a").is_none());
        // The Arc keeps the evicted plan alive for the in-flight request.
        assert!(!held.plan.is_unsatisfiable());
    }
}
