//! Sharded LRU plan cache keyed by the canonical query text.
//!
//! The cache stores [`CachedPlan`]s — a parsed [`Gtp`] plus its
//! [`IndexedPlan`] (the summary-feasibility analysis output) — behind
//! [`gtpquery::serialize()`]'s canonical bracket-only form, so every
//! spelling of a query that parses to the same GTP shares one entry
//! (`//a/b[c]`, `//a[b/c]/b[c]`-style rewrites do not: the key is the
//! *structure*, not the text the client sent).
//!
//! Sharding bounds contention: a key hashes to one shard, each shard is
//! an independently locked map with its own LRU capacity, and recency is
//! a global atomic stamp (no per-shard clocks to reconcile). Eviction is
//! exact LRU *within a shard* — good enough for a plan cache, where the
//! win measured by Fig T is hit-vs-miss analysis cost, not eviction
//! precision.

//! Snapshot rotation (document edits) adds a second dimension: every
//! entry carries the snapshot version it was computed against, and only
//! entries whose version matches the caller's current snapshot count as
//! hits. `PlanCache::rotate` (crate-private) moves the cache from one
//! version to the
//! next: entries whose scanned label set intersects the edit's changed
//! labels are dropped (their filters, covers, and sid hulls may be
//! stale), the rest are re-stamped to the new version — the analysis
//! amortization survives edits that don't touch a plan's labels.

use crate::planner::PlanDecision;
use gtpquery::Gtp;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use twig2stack::IndexedPlan;
use xmldom::Label;

/// A cached, immutable evaluation plan: the parsed query and its
/// index-specific stream plan. Shared by `Arc` so a hit never copies and
/// an eviction never invalidates an in-flight evaluation.
///
/// The only mutable state is the misprediction strike counter feeding the
/// planner feedback loop (DESIGN.md §14): the plan itself never changes —
/// a re-plan publishes a *new* `CachedPlan` under the same cache key.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed query (node ids align with `plan`).
    pub gtp: Gtp,
    /// The summary-feasibility stream plan for the service's index,
    /// computed with the decision's [`PruningPolicy`].
    ///
    /// [`PruningPolicy`]: xmlindex::PruningPolicy
    pub plan: IndexedPlan,
    /// The planner's verdict: engine, pruning policy, enumeration
    /// strategy, and (in adaptive mode) the predictions behind them.
    pub decision: PlanDecision,
    /// Mispredicted executions observed on this plan (adaptive only).
    mispredictions: AtomicU32,
}

impl CachedPlan {
    /// Wrap a computed plan with a zeroed feedback state.
    pub fn new(gtp: Gtp, plan: IndexedPlan, decision: PlanDecision) -> Self {
        CachedPlan { gtp, plan, decision, mispredictions: AtomicU32::new(0) }
    }

    /// Record one mispredicted execution; returns the total so far
    /// (including this one). The service re-plans when the total reaches
    /// its strike threshold — exactly once per plan object, because the
    /// replacement plan starts from zero.
    pub(crate) fn note_misprediction(&self) -> u32 {
        self.mispredictions.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    stamp: u64,
    /// Snapshot version the plan was computed against; valid only while
    /// it equals the service's current snapshot version.
    version: u64,
}

/// Sharded LRU map from canonical query text to [`CachedPlan`].
///
/// A total capacity of 0 disables the cache entirely (every lookup
/// misses, nothing is stored) — the Fig T "cache off" arm.
#[derive(Debug)]
pub(crate) struct PlanCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look `key` up against snapshot `version`, refreshing its recency
    /// stamp on a hit. An entry computed against a different snapshot
    /// (it raced a rotation) is dropped and reported as a miss.
    pub(crate) fn get(&self, key: &str, version: u64) -> Option<Arc<CachedPlan>> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("plan cache poisoned");
        let entry = shard.get_mut(key)?;
        if entry.version != version {
            shard.remove(key);
            return None;
        }
        entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.plan))
    }

    /// Insert (or refresh) `key` for snapshot `version`, evicting
    /// least-recently-used entries in the key's shard while it is over
    /// capacity. Returns how many entries were evicted (0 or 1 in steady
    /// state).
    pub(crate) fn insert(&self, key: String, plan: Arc<CachedPlan>, version: u64) -> u64 {
        if self.per_shard_capacity == 0 {
            return 0;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("plan cache poisoned");
        shard.insert(key, Entry { plan, stamp, version });
        let mut evicted = 0;
        while shard.len() > self.per_shard_capacity {
            let oldest = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("over-capacity shard is non-empty");
            shard.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Move the cache from the snapshot preceding `new_version` to
    /// `new_version` after an edit. Entries survive (re-stamped to the
    /// new version) only if they were valid for the previous snapshot
    /// and, when `changed` is `Some`, their scanned label set is disjoint
    /// from the edit's changed labels; `changed = None` means the index
    /// was rebuilt (sid numbering may have moved) and every entry is
    /// stale. Returns how many entries were invalidated.
    pub(crate) fn rotate(&self, changed: Option<&[Label]>, new_version: u64) -> u64 {
        let mut invalidated = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache poisoned");
            shard.retain(|_, e| {
                let keep = e.version + 1 == new_version
                    && changed.is_some_and(|c| {
                        e.plan.plan.labels().iter().all(|l| !c.contains(l))
                    });
                if keep {
                    e.version = new_version;
                } else {
                    invalidated += 1;
                }
                keep
            });
        }
        invalidated
    }

    /// Number of cached plans across all shards (test/diagnostic aid).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtpquery::parse_twig;
    use twig2stack::IndexedPlan;
    use xmldom::parse;
    use xmlindex::{ElementIndex, PruningPolicy};

    fn plan_for(q: &str) -> Arc<CachedPlan> {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let index = ElementIndex::build(&doc);
        let gtp = parse_twig(q).unwrap();
        let plan = IndexedPlan::compute(&gtp, &index, doc.labels(), PruningPolicy::Enabled);
        Arc::new(CachedPlan::new(gtp, plan, PlanDecision::default()))
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = PlanCache::new(8, 2);
        assert!(cache.get("//a", 0).is_none());
        cache.insert("//a".into(), plan_for("//a"), 0);
        assert!(cache.get("//a", 0).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = PlanCache::new(0, 4);
        assert_eq!(cache.insert("//a".into(), plan_for("//a"), 0), 0);
        assert!(cache.get("//a", 0).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_evicts_the_stalest_entry_per_shard() {
        // One shard so recency order is total and the test deterministic.
        let cache = PlanCache::new(2, 1);
        cache.insert("//a".into(), plan_for("//a"), 0);
        cache.insert("//b".into(), plan_for("//b"), 0);
        // Touch //a so //b becomes the LRU victim.
        assert!(cache.get("//a", 0).is_some());
        let evicted = cache.insert("//c".into(), plan_for("//c"), 0);
        assert_eq!(evicted, 1);
        assert!(cache.get("//a", 0).is_some(), "recently used entry survives");
        assert!(cache.get("//b", 0).is_none(), "LRU entry was evicted");
        assert!(cache.get("//c", 0).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn an_evicted_plan_stays_usable_while_referenced() {
        let cache = PlanCache::new(1, 1);
        cache.insert("//a".into(), plan_for("//a"), 0);
        let held = cache.get("//a", 0).unwrap();
        cache.insert("//b".into(), plan_for("//b"), 0);
        assert!(cache.get("//a", 0).is_none());
        // The Arc keeps the evicted plan alive for the in-flight request.
        assert!(!held.plan.is_unsatisfiable());
    }

    #[test]
    fn version_mismatch_is_a_dropping_miss() {
        let cache = PlanCache::new(8, 1);
        cache.insert("//a".into(), plan_for("//a"), 0);
        assert!(cache.get("//a", 1).is_none(), "stale-version entry is not served");
        assert_eq!(cache.len(), 0, "and it is dropped on the way out");
    }

    #[test]
    fn rotate_keeps_disjoint_plans_and_drops_touched_ones() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let b = doc.labels().get("b").unwrap();
        let cache = PlanCache::new(8, 2);
        cache.insert("//a/b".into(), plan_for("//a/b"), 0);
        cache.insert("//c".into(), plan_for("//c"), 0);
        let invalidated = cache.rotate(Some(&[b]), 1);
        assert_eq!(invalidated, 1, "only the plan scanning b is stale");
        assert!(cache.get("//a/b", 1).is_none());
        assert!(cache.get("//c", 1).is_some(), "disjoint plan re-stamped to the new version");
    }

    #[test]
    fn rotate_after_a_rebuild_clears_everything() {
        let cache = PlanCache::new(8, 2);
        cache.insert("//a/b".into(), plan_for("//a/b"), 0);
        cache.insert("//c".into(), plan_for("//c"), 0);
        assert_eq!(cache.rotate(None, 1), 2);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn rotate_drops_entries_that_skipped_a_version() {
        let cache = PlanCache::new(8, 1);
        // Raced insert: computed against snapshot 0, lands while the
        // service is already rotating 1 -> 2. Its validity for version 2
        // is unknown even with disjoint labels, so it must go.
        cache.insert("//c".into(), plan_for("//c"), 0);
        assert_eq!(cache.rotate(Some(&[]), 2), 1);
        assert_eq!(cache.len(), 0);
    }
}
